//! Collection strategies: `vec` and `btree_set`.

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Inclusive size bounds for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        Self {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        let (min, max) = r.into_inner();
        assert!(min <= max, "empty collection size range");
        Self { min, max }
    }
}

/// A `Vec` of values from `element`, sized within `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng, depth: u32) -> Vec<S::Value> {
        let n = rng.gen_range(self.size.min..=self.size.max);
        (0..n).map(|_| self.element.generate(rng, depth)).collect()
    }
}

/// A `BTreeSet` of values from `element`, sized within `size` when the
/// element domain permits (duplicates are retried a bounded number of
/// times, then the smaller set is returned — matching proptest's
/// best-effort semantics for small domains).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng, depth: u32) -> BTreeSet<S::Value> {
        let target = rng.gen_range(self.size.min..=self.size.max);
        let mut out = BTreeSet::new();
        let mut attempts = 0usize;
        let max_attempts = target.saturating_mul(10) + 16;
        while out.len() < target && attempts < max_attempts {
            out.insert(self.element.generate(rng, depth));
            attempts += 1;
        }
        out
    }
}
