//! Minimal stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this shim provides
//! the API subset the workspace's property tests use: the `proptest!`
//! macro, `prop_assert*`, `prop_oneof!`, `Strategy` with `prop_map` /
//! `prop_recursive` / `boxed`, `Just`, `any`, integer-range and
//! regex-literal strategies, `collection::{vec, btree_set}`,
//! `char::range`, `ProptestConfig`, and `TestCaseError`.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its seed and case number
//!   instead of a minimised input. Failures stay reproducible because
//!   generation is fully deterministic per (test name, case index).
//! * **Regex strategies** support the subset the workspace uses:
//!   concatenations of `.`/literal/`[class]` atoms with `{m}`, `{m,n}`,
//!   `?`, `*`, `+` quantifiers. Unsupported syntax panics loudly.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod char {
    //! Character strategies.
    use crate::strategy::CharRange;

    /// Strategy for a char in `[lo, hi]` (both inclusive).
    pub fn range(lo: ::core::primitive::char, hi: ::core::primitive::char) -> CharRange {
        assert!(lo <= hi, "char::range: empty range {lo:?}..={hi:?}");
        CharRange { lo, hi }
    }
}

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude`.
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests. Supported form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn name(x in strategy, y in strategy) { body }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                $crate::test_runner::run(&config, stringify!($name), |__xvi_rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(
                        &($strat), __xvi_rng, $crate::strategy::DEFAULT_DEPTH);)+
                    (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })()
                });
            }
        )*
    };
    ($($(#[$meta:meta])*
       fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     )*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::with_cases(256))]
            $($(#[$meta])* fn $name($($arg in $strat),+) $body)*
        }
    };
}

/// Asserts a condition, failing the current case (not the process).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality with `Debug` output on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}: {}", l, r,
                             format!($($fmt)*));
    }};
}

/// Asserts inequality with `Debug` output on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}: {}", l, r,
                             format!($($fmt)*));
    }};
}

/// Weighted or unweighted choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}
