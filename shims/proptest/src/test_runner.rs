//! Deterministic case runner: N seeded cases per test, no shrinking.

use std::fmt;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The generator handed to strategies. A newtype so strategy code
/// doesn't depend on which PRNG backs it.
pub struct TestRng(pub(crate) StdRng);

impl TestRng {
    pub(crate) fn from_seed(seed: u64) -> Self {
        Self(StdRng::seed_from_u64(seed))
    }
}

impl rand::RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Runner configuration (subset of proptest's `Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A failed (or, in real proptest, rejected) test case.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail<M: fmt::Display>(msg: M) -> Self {
        Self(msg.to_string())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<String> for TestCaseError {
    fn from(s: String) -> Self {
        Self(s)
    }
}

impl From<&str> for TestCaseError {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

/// FNV-1a over the test name: a stable per-test base seed.
fn base_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Runs `body` for `config.cases` deterministic cases. Panics (failing
/// the enclosing `#[test]`) on the first `Err`, reporting the case
/// index and seed so the failure can be replayed by rerunning the
/// test — generation is a pure function of (test name, case index).
pub fn run<F>(config: &ProptestConfig, name: &str, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = base_seed(name);
    for case in 0..config.cases {
        let seed = base ^ u64::from(case).wrapping_mul(0x9E3779B97F4A7C15);
        let mut rng = TestRng::from_seed(seed);
        if let Err(e) = body(&mut rng) {
            panic!(
                "proptest: test {name} failed at case {case}/{} (seed {seed:#018x}):\n{e}",
                config.cases
            );
        }
    }
}
