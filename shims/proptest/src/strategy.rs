//! Value-generation strategies (no shrinking).

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use rand::Rng;

use crate::test_runner::TestRng;

/// Recursion budget handed to top-level `generate` calls; only
/// `prop_recursive` strategies consume it.
pub const DEFAULT_DEPTH: u32 = 8;

/// A generator of values of type `Value`.
///
/// Unlike real proptest there is no `ValueTree`/shrinking layer:
/// `generate` directly produces a value from the seeded RNG.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng, depth: u32) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erased, reference-counted handle (usable as a `prop_oneof!`
    /// arm or cloned into recursive positions).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng, depth| self.generate(rng, depth)))
    }

    /// Recursive strategies: `self` generates leaves; `recurse` builds
    /// a branch strategy from a handle to the whole. `levels` bounds
    /// the recursion depth; `_desired_size` / `_expected_branch_size`
    /// are accepted for API compatibility but sizing here is governed
    /// by the branch strategy's own collection bounds.
    fn prop_recursive<F, S>(
        self,
        levels: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        type Gen<T> = Rc<dyn Fn(&mut TestRng, u32) -> T>;
        type Slot<T> = Rc<std::cell::RefCell<Option<Gen<T>>>>;
        // Tie the knot: `inner` recurses through a slot that is filled
        // with the finished strategy after `recurse` has been applied.
        let slot: Slot<Self::Value> = Rc::new(std::cell::RefCell::new(None));
        let leaf: Gen<Self::Value> = Rc::new(move |rng, depth| self.generate(rng, depth));

        let inner_slot = slot.clone();
        let inner_leaf = leaf.clone();
        let inner = BoxedStrategy(Rc::new(move |rng: &mut TestRng, depth: u32| {
            if depth == 0 {
                inner_leaf(rng, 0)
            } else {
                let full = inner_slot.borrow().clone().expect("recursive slot filled");
                full(rng, depth - 1)
            }
        }));

        let branch = recurse(inner);
        let full_leaf = leaf;
        let full: Gen<Self::Value> = Rc::new(move |rng, depth| {
            // Bias toward branching while budget remains so generated
            // structures actually nest; always leaf at depth 0.
            if depth == 0 || rng.gen_range(0u32..4) == 0 {
                full_leaf(rng, depth)
            } else {
                branch.generate(rng, depth)
            }
        });
        *slot.borrow_mut() = Some(full.clone());

        BoxedStrategy(Rc::new(move |rng, _depth| full(rng, levels)))
    }
}

type GenFn<T> = dyn Fn(&mut TestRng, u32) -> T;

/// Type-erased strategy handle. Cheap to clone.
pub struct BoxedStrategy<T>(Rc<GenFn<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng, depth: u32) -> T {
        (self.0)(rng, depth)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng, _depth: u32) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng, depth: u32) -> O {
        (self.f)(self.inner.generate(rng, depth))
    }
}

/// Weighted union over same-typed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Self {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<T> Union<T> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Self { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng, depth: u32) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (w, arm) in &self.arms {
            if pick < *w {
                return arm.generate(rng, depth);
            }
            pick -= w;
        }
        unreachable!("weights sum to total")
    }
}

/// `any::<T>()`: the full domain of a primitive type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

#[derive(Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(std::marker::PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng, _depth: u32) -> T {
        T::arbitrary(rng)
    }
}

/// Primitive types with a canonical full-domain generator.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rand::RngCore::next_u64(rng) & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Uniform over [0,1): full-bit-pattern doubles (NaNs, infs)
        // would poison ordering-based tests.
        rng.gen_range(0.0..1.0)
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        random_char(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng, _depth: u32) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng, _depth: u32) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// Inclusive char range (see [`crate::char::range`]).
#[derive(Debug, Clone, Copy)]
pub struct CharRange {
    pub(crate) lo: char,
    pub(crate) hi: char,
}

impl Strategy for CharRange {
    type Value = char;

    fn generate(&self, rng: &mut TestRng, _depth: u32) -> char {
        loop {
            let v = rng.gen_range(self.lo as u32..=self.hi as u32);
            if let Some(c) = char::from_u32(v) {
                return c;
            }
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng, depth: u32) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng, depth),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
    (A, B, C, D, E, F, G);
    (A, B, C, D, E, F, G, H);
    (A, B, C, D, E, F, G, H, I);
    (A, B, C, D, E, F, G, H, I, J);
    (A, B, C, D, E, F, G, H, I, J, K);
    (A, B, C, D, E, F, G, H, I, J, K, L);
}

// ---------------------------------------------------------------------
// Regex-literal strategies: `"[a-z][a-z0-9_.-]{0,6}"` etc.
// ---------------------------------------------------------------------

/// One pattern atom with its repetition bounds.
#[derive(Debug, Clone)]
struct RegexAtom {
    set: CharSet,
    min: usize,
    max: usize,
}

#[derive(Debug, Clone)]
enum CharSet {
    /// `.` — any char (biased toward printable ASCII).
    Dot,
    /// `[...]` or a literal char: inclusive ranges.
    Ranges(Vec<(char, char)>),
}

/// Cap for the open-ended `*` / `+` quantifiers.
const UNBOUNDED_CAP: usize = 16;

fn parse_regex(pattern: &str) -> Vec<RegexAtom> {
    let mut chars = pattern.chars().peekable();
    let mut atoms = Vec::new();
    while let Some(c) = chars.next() {
        let set = match c {
            '.' => CharSet::Dot,
            '[' => {
                let mut ranges = Vec::new();
                let mut items: Vec<char> = Vec::new();
                loop {
                    match chars.next() {
                        None => panic!("regex shim: unterminated class in {pattern:?}"),
                        Some(']') => break,
                        Some('\\') => items.push(chars.next().unwrap_or_else(|| {
                            panic!("regex shim: trailing escape in {pattern:?}")
                        })),
                        Some(ch) => items.push(ch),
                    }
                }
                // Resolve `a-z` spans; `-` first or last is literal.
                let mut i = 0;
                while i < items.len() {
                    if i + 2 < items.len() && items[i + 1] == '-' {
                        assert!(
                            items[i] <= items[i + 2],
                            "regex shim: inverted range in {pattern:?}"
                        );
                        ranges.push((items[i], items[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((items[i], items[i]));
                        i += 1;
                    }
                }
                assert!(!ranges.is_empty(), "regex shim: empty class in {pattern:?}");
                CharSet::Ranges(ranges)
            }
            '\\' => {
                let esc = chars
                    .next()
                    .unwrap_or_else(|| panic!("regex shim: trailing escape in {pattern:?}"));
                match esc {
                    'd' => CharSet::Ranges(vec![('0', '9')]),
                    'w' => CharSet::Ranges(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
                    's' => CharSet::Ranges(vec![(' ', ' '), ('\t', '\t'), ('\n', '\n')]),
                    lit => CharSet::Ranges(vec![(lit, lit)]),
                }
            }
            '(' | ')' | '|' | '^' | '$' => {
                panic!("regex shim: unsupported syntax {c:?} in {pattern:?}")
            }
            lit => CharSet::Ranges(vec![(lit, lit)]),
        };
        // Optional quantifier.
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for ch in chars.by_ref() {
                    if ch == '}' {
                        break;
                    }
                    spec.push(ch);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => {
                        let lo = lo.trim().parse().unwrap_or_else(|_| {
                            panic!("regex shim: bad quantifier {{{spec}}} in {pattern:?}")
                        });
                        let hi = if hi.trim().is_empty() {
                            lo + UNBOUNDED_CAP
                        } else {
                            hi.trim().parse().unwrap_or_else(|_| {
                                panic!("regex shim: bad quantifier {{{spec}}} in {pattern:?}")
                            })
                        };
                        (lo, hi)
                    }
                    None => {
                        let n = spec.trim().parse().unwrap_or_else(|_| {
                            panic!("regex shim: bad quantifier {{{spec}}} in {pattern:?}")
                        });
                        (n, n)
                    }
                }
            }
            Some('*') => {
                chars.next();
                (0, UNBOUNDED_CAP)
            }
            Some('+') => {
                chars.next();
                (1, UNBOUNDED_CAP)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            _ => (1, 1),
        };
        assert!(
            min <= max,
            "regex shim: empty quantifier range in {pattern:?}"
        );
        atoms.push(RegexAtom { set, min, max });
    }
    atoms
}

/// Any char, biased toward printable ASCII so parsers see realistic
/// text but still meet the occasional astral-plane scalar.
fn random_char(rng: &mut TestRng) -> char {
    match rng.gen_range(0u32..10) {
        0..=7 => rng.gen_range(0x20u32..0x7F).try_into().expect("ASCII"),
        8 => loop {
            if let Some(c) = char::from_u32(rng.gen_range(0u32..0xD800)) {
                break c;
            }
        },
        _ => loop {
            if let Some(c) = char::from_u32(rng.gen_range(0u32..=0x10FFFF)) {
                break c;
            }
        },
    }
}

fn sample_set(set: &CharSet, rng: &mut TestRng) -> char {
    match set {
        CharSet::Dot => random_char(rng),
        CharSet::Ranges(ranges) => {
            let total: u32 = ranges
                .iter()
                .map(|&(lo, hi)| hi as u32 - lo as u32 + 1)
                .sum();
            let mut pick = rng.gen_range(0..total);
            for &(lo, hi) in ranges {
                let span = hi as u32 - lo as u32 + 1;
                if pick < span {
                    // Ranges over chars may straddle the surrogate gap
                    // only when constructed from `.`-like escapes; the
                    // workspace's classes never do, but stay safe.
                    if let Some(c) = char::from_u32(lo as u32 + pick) {
                        return c;
                    }
                    return lo;
                }
                pick -= span;
            }
            unreachable!("pick < total")
        }
    }
}

thread_local! {
    // Patterns are compiled once per thread; `generate` runs thousands
    // of times per property test over the same literal.
    static REGEX_CACHE: std::cell::RefCell<std::collections::HashMap<&'static str, Rc<Vec<RegexAtom>>>> =
        std::cell::RefCell::new(std::collections::HashMap::new());
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng, _depth: u32) -> String {
        let atoms = REGEX_CACHE.with(|cache| {
            cache
                .borrow_mut()
                .entry(self)
                .or_insert_with(|| Rc::new(parse_regex(self)))
                .clone()
        });
        let mut out = String::new();
        for atom in atoms.iter() {
            let n = rng.gen_range(atom.min..=atom.max);
            for _ in 0..n {
                out.push(sample_set(&atom.set, rng));
            }
        }
        out
    }
}
