//! Minimal stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this shim provides
//! the API subset the workspace's benches use: `Criterion`,
//! `benchmark_group` / `bench_function` / `bench_with_input`,
//! `Bencher::iter`, `black_box`, `BenchmarkId`, `Throughput`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: per benchmark, a short warm-up estimates the
//! iteration cost, then `sample_size` samples are timed and the
//! mean/min reported on stdout. `cargo bench -- --test` runs each
//! benchmark body exactly once and reports nothing, matching real
//! criterion's smoke-test mode (this is what CI uses).

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier; defers to `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Benchmark identifier, e.g. `BenchmarkId::from_parameter(1024)`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            repr: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            repr: parameter.to_string(),
        }
    }
}

/// Conversion accepted by `bench_function` for its id argument.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            repr: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { repr: self }
    }
}

/// Throughput annotation (recorded, echoed in the report line).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Passed to benchmark closures; `iter` runs and times the payload.
pub struct Bencher<'a> {
    mode: Mode,
    sample_size: usize,
    result: &'a mut Option<Sample>,
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// `--test`: run the payload once, no timing.
    Test,
    Measure,
}

struct Sample {
    mean: Duration,
    min: Duration,
}

impl Bencher<'_> {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut payload: F) {
        if self.mode == Mode::Test {
            black_box(payload());
            return;
        }
        // Warm-up: estimate cost to pick an iteration count that makes
        // one sample last ~2ms (bounds timer noise without letting slow
        // benches (index creation at full scale) run for minutes).
        let start = Instant::now();
        black_box(payload());
        let one = start.elapsed().max(Duration::from_nanos(1));
        let iters =
            (Duration::from_millis(2).as_nanos() / one.as_nanos()).clamp(1, 1_000_000) as u32;

        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(payload());
            }
            let t = start.elapsed() / iters;
            total += t;
            min = min.min(t);
        }
        *self.result = Some(Sample {
            mean: total / self.sample_size as u32,
            min,
        });
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    mode: Mode,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            mode: Mode::Measure,
            filter: None,
        }
    }
}

impl Criterion {
    /// Parses the bench binary's CLI args (`--test`, optional filter).
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--test" | "-t" => self.mode = Mode::Test,
                "--bench" | "--noplot" | "--quiet" | "--verbose" | "-v" => {}
                "--sample-size" | "--warm-up-time" | "--measurement-time" | "--save-baseline"
                | "--baseline" | "--profile-time" => {
                    args.next();
                }
                other if !other.starts_with('-') && self.filter.is_none() => {
                    self.filter = Some(other.to_string());
                }
                _ => {}
            }
        }
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let id = id.into_benchmark_id();
        run_one(self.mode, &self.filter, None, &id.repr, 10, None, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let id = id.into_benchmark_id();
        run_one(
            self.criterion.mode,
            &self.criterion.filter,
            Some(&self.name),
            &id.repr,
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    mode: Mode,
    filter: &Option<String>,
    group: Option<&str>,
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let full = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    if let Some(pat) = filter {
        if !full.contains(pat.as_str()) {
            return;
        }
    }
    let mut result = None;
    let mut bencher = Bencher {
        mode,
        sample_size,
        result: &mut result,
    };
    f(&mut bencher);
    if mode == Mode::Test {
        return;
    }
    match result {
        Some(Sample { mean, min }) => {
            let tp = match throughput {
                Some(Throughput::Bytes(b)) => {
                    let gib = b as f64 / mean.as_secs_f64() / (1u64 << 30) as f64;
                    format!("  thrpt: {gib:.3} GiB/s")
                }
                Some(Throughput::Elements(n)) => {
                    let me = n as f64 / mean.as_secs_f64() / 1e6;
                    format!("  thrpt: {me:.3} Melem/s")
                }
                None => String::new(),
            };
            println!("{full:<48} time: [mean {mean:>12.3?}  min {min:>12.3?}]{tp}");
        }
        None => println!("{full:<48} (no measurement: bencher never called iter)"),
    }
}

/// Declares a group function running each benchmark in sequence.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` invoking the given group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
