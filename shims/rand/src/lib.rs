//! Minimal stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no registry access, so this shim provides
//! the surface the workspace uses: `Rng` (`gen`, `gen_range`,
//! `gen_bool`), `SeedableRng::seed_from_u64`, `rngs::StdRng`, and
//! `seq::SliceRandom` (`shuffle`, `choose`). The core generator is
//! xoshiro256** seeded through SplitMix64 — deterministic per seed,
//! which is all the datagen / bench code relies on. It is NOT the same
//! stream as the real `StdRng`, but no test pins exact stream values.

use std::ops::{Range, RangeInclusive};

/// Core 64-bit generator trait (subset of `rand_core::RngCore`).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seeding trait (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be produced by `Rng::gen` (stand-in for sampling the
/// `Standard` distribution).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with `Rng::gen_range` (stand-in for
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Integer sampling in `[0, bound)`. A 128-bit draw reduced mod a
/// bound that fits in 64 bits keeps modulo bias below 2^-64.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u128) -> u128 {
    debug_assert!(bound > 0);
    let draw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
    draw % bound
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// The user-facing generator trait (subset of `rand::Rng`).
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Stand-in for `rand::rngs::StdRng`: xoshiro256** seeded via
    /// SplitMix64 (same construction the xoshiro authors recommend).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Subset of `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            // Fisher-Yates.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(1u32..=12);
            assert!((1..=12).contains(&w));
            let f = rng.gen_range(-125.0..-66.0);
            assert!((-125.0..-66.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "seeded shuffle should move something");
    }
}
