//! Minimal stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! The build environment has no registry access, so this shim provides
//! just the surface the workspace uses: `RwLock` / `Mutex` with
//! non-poisoning `read()` / `write()` / `lock()` accessors. Poisoned
//! std locks are recovered via `into_inner` on the error, matching
//! parking_lot's no-poisoning semantics.

use std::sync;

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}
