//! Registry snapshot monotonicity: counters never decrease across
//! concurrent snapshots, no matter how writer increments interleave
//! with the reads.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use xvi_obs::{MetricsRegistry, SampleValue, Unit};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn counters_never_decrease_across_concurrent_snapshots(
        writers in 1usize..4,
        increments in 1u64..400,
        snapshots in 2usize..24,
    ) {
        let registry = Arc::new(MetricsRegistry::new());
        let stop = Arc::new(AtomicBool::new(false));
        let handles: Vec<_> = (0..writers)
            .map(|w| {
                let registry = Arc::clone(&registry);
                let stop = Arc::clone(&stop);
                let shard = w.to_string();
                std::thread::spawn(move || {
                    let c = registry.counter(
                        "xvi_prop_total",
                        "prop",
                        &[("shard", shard.as_str())],
                    );
                    let shared = registry.counter("xvi_prop_shared_total", "prop", &[]);
                    let h = registry.histogram(
                        "xvi_prop_seconds",
                        "prop",
                        &[],
                        Unit::Seconds,
                    );
                    let mut done = 0u64;
                    // Keep writing until every planned increment has
                    // landed AND the reader has taken its snapshots,
                    // so snapshots genuinely race with writes.
                    while done < increments || !stop.load(Ordering::Relaxed) {
                        if done < increments {
                            c.inc();
                            shared.add(2);
                            h.record(Duration::from_nanos(done + 1));
                            done += 1;
                        } else {
                            std::hint::spin_loop();
                        }
                    }
                })
            })
            .collect();

        let mut prev: Option<xvi_obs::RegistrySnapshot> = None;
        for _ in 0..snapshots {
            let snap = registry.snapshot();
            if let Some(prev) = &prev {
                for s in &prev.samples {
                    match &s.value {
                        SampleValue::Counter(old) => {
                            let labels: Vec<(&str, &str)> = s
                                .labels
                                .iter()
                                .map(|(k, v)| (k.as_str(), v.as_str()))
                                .collect();
                            let new = snap.counter(&s.name, &labels);
                            prop_assert!(
                                new.is_some_and(|n| n >= *old),
                                "{} went {old} -> {new:?}",
                                s.name
                            );
                        }
                        SampleValue::Summary(old, _) => {
                            let new = snap
                                .samples
                                .iter()
                                .find(|n| n.name == s.name && n.labels == s.labels);
                            let Some(SampleValue::Summary(new, _)) =
                                new.map(|n| &n.value)
                            else {
                                prop_assert!(false, "summary series vanished");
                                unreachable!()
                            };
                            prop_assert!(new.count() >= old.count());
                            prop_assert!(new.max() >= old.max());
                        }
                        SampleValue::Gauge(_) => {}
                    }
                }
            }
            prev = Some(snap);
        }
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
        // Final totals are exact once writers are quiesced.
        let fin = registry.snapshot();
        prop_assert_eq!(
            fin.counter("xvi_prop_shared_total", &[]),
            Some(2 * increments * writers as u64)
        );
        for w in 0..writers {
            let shard = w.to_string();
            prop_assert_eq!(
                fin.counter("xvi_prop_total", &[("shard", shard.as_str())]),
                Some(increments)
            );
        }
    }
}
