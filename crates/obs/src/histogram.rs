//! A log-bucketed latency histogram.
//!
//! Latencies (nanoseconds) are hashed into buckets whose width grows
//! geometrically: exact below 16 ns, then 8 sub-buckets per octave.
//! That bounds the relative quantisation error of any reported
//! percentile at ~12.5% while keeping the whole structure a flat array
//! of atomics — recording is a single `fetch_add`, safe to call from
//! any number of threads with no locking, which is what a serving
//! fast-path needs.
//!
//! Percentiles are read from an immutable [`HistogramSnapshot`] so a
//! reporter never sees a torn view shift under it mid-walk.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// 16 exact buckets + 8 sub-buckets for each octave from 2^4 up to
/// 2^63.
const BUCKETS: usize = 16 + (64 - 4) * 8;

fn bucket_of(ns: u64) -> usize {
    if ns < 16 {
        ns as usize
    } else {
        let e = 63 - ns.leading_zeros() as usize; // 4..=63
        16 + (e - 4) * 8 + ((ns >> (e - 3)) & 7) as usize
    }
}

/// Inclusive upper bound of a bucket: the largest latency that maps to
/// it. Percentiles report this bound, so they never under-state.
fn bucket_upper(idx: usize) -> u64 {
    if idx < 16 {
        idx as u64
    } else {
        let e = 4 + (idx - 16) / 8;
        let sub = ((idx - 16) % 8) as u64;
        // Buckets in octave e span [2^e + sub*2^(e-3), …): the upper
        // bound is one below the next bucket's start. In u128 because
        // the top octave's last bound is exactly 2^64 - 1.
        let hi = (1u128 << e) + (sub as u128 + 1) * (1u128 << (e - 3)) - 1;
        u64::try_from(hi).unwrap_or(u64::MAX)
    }
}

/// A concurrent, lock-free latency histogram. See the module docs.
///
/// # Saturation
///
/// The bucket ladder covers the full `u64` nanosecond range — the top
/// bucket's inclusive upper bound is exactly `u64::MAX` — so the only
/// saturation point is the `Duration` → `u64` conversion in
/// [`LatencyHistogram::record`]: any observation longer than
/// `u64::MAX` ns (~584 years) is recorded as `u64::MAX` and lands in
/// the top bucket. `max()` then reports `u64::MAX` ns exactly, and
/// because [`HistogramSnapshot::percentile`] caps every answer at the
/// *exact* recorded maximum (not the bucket bound), high quantiles in
/// the presence of saturated samples report `max` rather than a
/// silently clamped smaller bound. Pinned by the
/// `saturated_observations_report_max` test below.
pub struct LatencyHistogram {
    counts: Box<[AtomicU64; BUCKETS]>,
    total: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.total.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            counts: Box::new([const { AtomicU64::new(0) }; BUCKETS]),
            total: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Records one latency observation.
    pub fn record(&self, latency: Duration) {
        self.record_value(u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Records one raw observation. The bucket ladder is unit-agnostic
    /// — durations record nanoseconds through [`record`](Self::record),
    /// but dimensionless distributions (batch sizes, queue depths) can
    /// record plain values here and read percentiles back as integers.
    pub fn record_value(&self, v: u64) {
        self.counts[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(v, Ordering::Relaxed);
        self.max_ns.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// An immutable copy for percentile reads. Concurrent `record`s
    /// may or may not be included; the snapshot itself is consistent
    /// enough for reporting (counts are monotone).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let total = counts.iter().sum();
        HistogramSnapshot {
            counts,
            total,
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`LatencyHistogram`].
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    total: u64,
    sum_ns: u64,
    max_ns: u64,
}

impl HistogramSnapshot {
    /// Number of observations in the snapshot.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean latency, or zero if empty.
    pub fn mean(&self) -> Duration {
        if self.total == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.sum_ns / self.total)
    }

    /// Largest recorded latency (exact, not bucket-quantised).
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_ns)
    }

    /// Sum of all recorded latencies (wrapping at `u64::MAX` ns).
    pub fn sum(&self) -> Duration {
        Duration::from_nanos(self.sum_ns)
    }

    /// The latency at quantile `q` in `[0, 1]`: an upper bound on the
    /// value below which a `q` fraction of observations fall, accurate
    /// to the bucket width (≤ 12.5% relative error). Zero if empty.
    pub fn percentile(&self, q: f64) -> Duration {
        if self.total == 0 {
            return Duration::ZERO;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based.
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // The max is exact and always ≥ any bucket member.
                return Duration::from_nanos(bucket_upper(idx).min(self.max_ns));
            }
        }
        Duration::from_nanos(self.max_ns)
    }

    /// Merges another snapshot into this one (bucket-wise sum).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Renders `p50/p90/p99/p999` as a compact human-readable line.
    pub fn summary(&self) -> String {
        format!(
            "n={} p50={:?} p90={:?} p99={:?} p999={:?} max={:?}",
            self.total,
            self.percentile(0.50),
            self.percentile(0.90),
            self.percentile(0.99),
            self.percentile(0.999),
            self.max(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_cover_u64() {
        let mut prev_upper = 0;
        for idx in 0..BUCKETS {
            let hi = bucket_upper(idx);
            if idx > 0 {
                assert!(hi > prev_upper, "bucket {idx} upper not increasing");
                // No gaps: the value just above the previous upper
                // bound lands in this bucket.
                assert_eq!(bucket_of(prev_upper + 1), idx);
            }
            assert_eq!(bucket_of(hi), idx, "upper bound maps back to its bucket");
            prev_upper = hi;
        }
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn percentiles_bound_relative_error() {
        let h = LatencyHistogram::new();
        // 1..=10_000 µs, uniform.
        for us in 1..=10_000u64 {
            h.record(Duration::from_micros(us));
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 10_000);
        for (q, want_us) in [(0.50, 5_000.0), (0.90, 9_000.0), (0.99, 9_900.0)] {
            let got = s.percentile(q).as_nanos() as f64 / 1_000.0;
            assert!(
                got >= want_us && got <= want_us * 1.13,
                "q={q}: got {got}µs want ~{want_us}µs"
            );
        }
        assert_eq!(s.percentile(1.0), Duration::from_micros(10_000));
        assert_eq!(s.max(), Duration::from_micros(10_000));
    }

    #[test]
    fn empty_and_single_value() {
        let h = LatencyHistogram::new();
        let s = h.snapshot();
        assert_eq!(s.percentile(0.5), Duration::ZERO);
        assert_eq!(s.mean(), Duration::ZERO);
        h.record(Duration::from_nanos(7));
        let s = h.snapshot();
        // < 16 ns buckets are exact.
        assert_eq!(s.percentile(0.0), Duration::from_nanos(7));
        assert_eq!(s.percentile(0.5), Duration::from_nanos(7));
        assert_eq!(s.percentile(1.0), Duration::from_nanos(7));
    }

    #[test]
    fn saturated_observations_report_max() {
        let h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(Duration::from_millis(1));
        }
        // Longer than u64::MAX nanoseconds: saturates to u64::MAX and
        // must land in the top bucket, not wrap or vanish.
        h.record(Duration::MAX);
        let s = h.snapshot();
        assert_eq!(s.count(), 100);
        assert_eq!(s.max(), Duration::from_nanos(u64::MAX));
        // The saturated sample is the rank-100 observation: the top
        // quantiles must report the exact max, not a clamped bound.
        assert_eq!(s.percentile(1.0), Duration::from_nanos(u64::MAX));
        // Lower quantiles are unaffected by the outlier.
        let p50 = s.percentile(0.5);
        assert!(
            p50 >= Duration::from_millis(1) && p50 <= Duration::from_micros(1125),
            "p50 {p50:?} should stay near 1ms"
        );
        // A value in the top octave (> 2^63 ns) still has a real
        // bucket of its own — saturation only happens past u64::MAX.
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_upper(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn merge_sums_counts() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        for _ in 0..100 {
            a.record(Duration::from_micros(10));
            b.record(Duration::from_micros(1000));
        }
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.count(), 200);
        assert!(s.percentile(0.25) <= Duration::from_micros(12));
        assert!(s.percentile(0.75) >= Duration::from_micros(900));
    }
}
