//! Sampled request tracing and the slow-request flight recorder.
//!
//! A [`Tracer`] hands out [`Trace`]s for a deterministic 1-in-N sample
//! of requests (counter-based — no RNG, so replays trace the same
//! requests). A `Trace` is a cheap `Arc` that layers thread through
//! the pipeline (serve → service → shard leader → planner), each
//! recording [`Stage`] timings against the tracer's injectable
//! [`Clock`]. When a trace is [`Tracer::finish`]ed, it competes for a
//! slot in the [`FlightRecorder`]: a fixed-size buffer retaining the N
//! *slowest* finished requests with their stage breakdown and
//! `--explain`-style annotation, dumpable on demand.
//!
//! The disabled path is near-free: [`Tracer::maybe_start`] is one
//! relaxed atomic load and a branch, and every `Trace` method takes
//! `Option<&Trace>`-shaped call sites that skip clock reads entirely
//! when no trace is attached. The differential test in
//! `crates/index/tests/obs_differential.rs` pins that enabling
//! tracing at sample rate 1.0 changes no query or commit result.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::clock::{Clock, MonotonicClock};

/// A pipeline stage a trace can attribute time to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Waiting in a serve-frontend tenant queue for dispatch.
    AdmissionWait,
    /// Waiting in a shard commit queue for a group-commit leader.
    QueueWait,
    /// Serialising + appending the commit batch to the WAL.
    WalAppend,
    /// The group-commit fsync.
    Fsync,
    /// Applying values and publishing the new version (in-place or
    /// COW).
    Publish,
    /// XPath parse + cost-based plan selection.
    Plan,
    /// Index probes (B+tree descent) for the chosen plan.
    Probe,
    /// Structural verification walk (anchor verification + forward
    /// walk, or the fallback scan).
    VerifyWalk,
    /// Executor time not attributed to a finer stage.
    Execute,
}

impl Stage {
    /// Stable lowercase name used in dumps and metrics labels.
    pub fn name(self) -> &'static str {
        match self {
            Stage::AdmissionWait => "admission_wait",
            Stage::QueueWait => "queue_wait",
            Stage::WalAppend => "wal_append",
            Stage::Fsync => "fsync",
            Stage::Publish => "publish",
            Stage::Plan => "plan",
            Stage::Probe => "probe",
            Stage::VerifyWalk => "verify_walk",
            Stage::Execute => "execute",
        }
    }
}

/// One recorded stage interval.
#[derive(Debug, Clone)]
pub struct StageSample {
    /// Which stage.
    pub stage: Stage,
    /// Start, in tracer-clock nanoseconds.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

struct TraceInner {
    clock: Arc<dyn Clock>,
    kind: &'static str,
    detail: String,
    start_ns: u64,
    stages: Mutex<Vec<StageSample>>,
    note: Mutex<String>,
}

/// A live trace for one sampled request. Cloning shares the record;
/// stage recording is `&self` so the trace can be threaded by
/// reference through the pipeline.
#[derive(Clone)]
pub struct Trace {
    inner: Arc<TraceInner>,
}

impl std::fmt::Debug for Trace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Trace")
            .field("kind", &self.inner.kind)
            .field("detail", &self.inner.detail)
            .finish()
    }
}

impl Trace {
    /// Current tracer-clock reading, for manual stage bracketing.
    pub fn now_ns(&self) -> u64 {
        self.inner.clock.now_ns()
    }

    /// Records a stage that started at `start_ns` (a prior
    /// [`Trace::now_ns`] reading) and ends now.
    pub fn record_stage(&self, stage: Stage, start_ns: u64) {
        let dur_ns = self.inner.clock.now_ns().saturating_sub(start_ns);
        self.record_stage_dur(stage, start_ns, dur_ns);
    }

    /// Records a stage with an explicit duration (used by the group
    /// commit leader to attribute one shared batch timing to every
    /// trace in the round).
    pub fn record_stage_dur(&self, stage: Stage, start_ns: u64, dur_ns: u64) {
        self.inner.stages.lock().unwrap().push(StageSample {
            stage,
            start_ns,
            dur_ns,
        });
    }

    /// Attaches (appends) a free-form annotation — the `--explain`
    /// plan rendering for queries.
    pub fn annotate(&self, note: &str) {
        let mut n = self.inner.note.lock().unwrap();
        if !n.is_empty() {
            n.push('\n');
        }
        n.push_str(note);
    }
}

/// A finished trace as retained by the [`FlightRecorder`].
#[derive(Debug, Clone)]
pub struct FinishedTrace {
    /// Request kind (`"query"`, `"commit"`, …).
    pub kind: &'static str,
    /// Request description captured at start.
    pub detail: String,
    /// Accumulated annotations (plan rendering, …).
    pub note: String,
    /// Start, in tracer-clock nanoseconds.
    pub start_ns: u64,
    /// End-to-end latency in nanoseconds.
    pub total_ns: u64,
    /// Recorded stages in completion order.
    pub stages: Vec<StageSample>,
}

impl FinishedTrace {
    /// Sum of all recorded stage durations. The acceptance contract is
    /// that for a traced query this tiles the end-to-end latency to
    /// within 10%.
    pub fn stage_sum_ns(&self) -> u64 {
        self.stages.iter().map(|s| s.dur_ns).sum()
    }

    /// Multi-line human-readable report: header, per-stage breakdown
    /// with percentages, then the annotation indented.
    pub fn render(&self) -> String {
        let mut out = format!(
            "[{}] {:?} total — {}\n",
            self.kind,
            Duration::from_nanos(self.total_ns),
            self.detail
        );
        for s in &self.stages {
            let pct = if self.total_ns > 0 {
                s.dur_ns as f64 * 100.0 / self.total_ns as f64
            } else {
                0.0
            };
            out.push_str(&format!(
                "  {:<14} {:>12?}  {:5.1}%\n",
                s.stage.name(),
                Duration::from_nanos(s.dur_ns),
                pct
            ));
        }
        let sum = self.stage_sum_ns();
        out.push_str(&format!(
            "  {:<14} {:>12?}  ({:.1}% of total)\n",
            "stage-sum",
            Duration::from_nanos(sum),
            if self.total_ns > 0 {
                sum as f64 * 100.0 / self.total_ns as f64
            } else {
                0.0
            }
        ));
        if !self.note.is_empty() {
            for line in self.note.lines() {
                out.push_str(&format!("  | {line}\n"));
            }
        }
        out
    }
}

/// Fixed-size retention of the N slowest finished traces.
pub struct FlightRecorder {
    capacity: usize,
    slots: Mutex<Vec<FinishedTrace>>,
    /// Smallest total among retained traces once full — a lock-free
    /// fast reject for the common "this request is not slow" case.
    min_ns: AtomicU64,
    finished: AtomicU64,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity)
            .field("finished", &self.finished.load(Ordering::Relaxed))
            .finish()
    }
}

impl FlightRecorder {
    /// A recorder retaining the `capacity` slowest traces.
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            capacity: capacity.max(1),
            slots: Mutex::new(Vec::new()),
            min_ns: AtomicU64::new(0),
            finished: AtomicU64::new(0),
        }
    }

    /// Number of traces ever offered (not just retained).
    pub fn finished_count(&self) -> u64 {
        self.finished.load(Ordering::Relaxed)
    }

    fn offer(&self, t: FinishedTrace) {
        self.finished.fetch_add(1, Ordering::Relaxed);
        let mut slots = self.slots.lock().unwrap();
        if slots.len() == self.capacity && t.total_ns <= self.min_ns.load(Ordering::Relaxed) {
            return;
        }
        if slots.len() == self.capacity {
            // Evict the fastest retained trace.
            if let Some((i, _)) = slots.iter().enumerate().min_by_key(|(_, s)| s.total_ns) {
                slots.swap_remove(i);
            }
        }
        slots.push(t);
        let min = slots.iter().map(|s| s.total_ns).min().unwrap_or(0);
        self.min_ns.store(
            if slots.len() == self.capacity { min } else { 0 },
            Ordering::Relaxed,
        );
    }

    /// The retained traces, slowest first.
    pub fn slowest(&self) -> Vec<FinishedTrace> {
        let mut v = self.slots.lock().unwrap().clone();
        v.sort_by_key(|t| std::cmp::Reverse(t.total_ns));
        v
    }

    /// Drops all retained traces.
    pub fn clear(&self) {
        self.slots.lock().unwrap().clear();
        self.min_ns.store(0, Ordering::Relaxed);
    }

    /// Renders every retained trace ([`FinishedTrace::render`]),
    /// slowest first.
    pub fn render(&self) -> String {
        let traces = self.slowest();
        if traces.is_empty() {
            return "flight recorder: no traced requests retained\n".to_string();
        }
        let mut out = format!(
            "flight recorder: {} retained of {} traced\n",
            traces.len(),
            self.finished_count()
        );
        for t in traces {
            out.push_str(&t.render());
        }
        out
    }
}

/// Hands out sampled [`Trace`]s and owns the [`FlightRecorder`].
pub struct Tracer {
    clock: Arc<dyn Clock>,
    /// 0 = disabled; N = trace every Nth request.
    sample_every: AtomicU64,
    ticket: AtomicU64,
    recorder: FlightRecorder,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("sample_every", &self.sample_every.load(Ordering::Relaxed))
            .field("recorder", &self.recorder)
            .finish()
    }
}

/// Default flight-recorder capacity.
pub const DEFAULT_RECORDER_CAPACITY: usize = 16;

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new(Arc::new(MonotonicClock::new()))
    }
}

impl Tracer {
    /// A disabled tracer (sample rate 0) over `clock` with the default
    /// recorder capacity.
    pub fn new(clock: Arc<dyn Clock>) -> Tracer {
        Tracer::with_capacity(clock, DEFAULT_RECORDER_CAPACITY)
    }

    /// A disabled tracer with an explicit recorder capacity.
    pub fn with_capacity(clock: Arc<dyn Clock>, capacity: usize) -> Tracer {
        Tracer {
            clock,
            sample_every: AtomicU64::new(0),
            ticket: AtomicU64::new(0),
            recorder: FlightRecorder::new(capacity),
        }
    }

    /// The tracer's clock (shared with stage timers).
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Sets the sample rate in `[0, 1]`: 0 disables, 1 traces every
    /// request, otherwise every `round(1/rate)`-th request is traced
    /// (counter-based, deterministic).
    pub fn set_sample_rate(&self, rate: f64) {
        let every = if rate <= 0.0 {
            0
        } else if rate >= 1.0 {
            1
        } else {
            (1.0 / rate).round().max(1.0) as u64
        };
        self.sample_every.store(every, Ordering::Relaxed);
    }

    /// Whether any requests are currently sampled.
    pub fn enabled(&self) -> bool {
        self.sample_every.load(Ordering::Relaxed) != 0
    }

    /// Starts a trace if this request falls in the sample. The
    /// `detail` closure only runs for sampled requests, so the
    /// disabled path never formats strings — it is one relaxed load
    /// and a branch.
    pub fn maybe_start(
        &self,
        kind: &'static str,
        detail: impl FnOnce() -> String,
    ) -> Option<Trace> {
        let every = self.sample_every.load(Ordering::Relaxed);
        if every == 0 {
            return None;
        }
        let n = self.ticket.fetch_add(1, Ordering::Relaxed);
        if !n.is_multiple_of(every) {
            return None;
        }
        Some(self.start(kind, detail()))
    }

    /// Starts a trace unconditionally (REPL / tests).
    pub fn start(&self, kind: &'static str, detail: String) -> Trace {
        Trace {
            inner: Arc::new(TraceInner {
                clock: Arc::clone(&self.clock),
                kind,
                detail,
                start_ns: self.clock.now_ns(),
                stages: Mutex::new(Vec::new()),
                note: Mutex::new(String::new()),
            }),
        }
    }

    /// Finishes a trace: stamps its end-to-end latency and offers it
    /// to the flight recorder.
    pub fn finish(&self, trace: Trace) {
        let total_ns = self.clock.now_ns().saturating_sub(trace.inner.start_ns);
        let finished = FinishedTrace {
            kind: trace.inner.kind,
            detail: trace.inner.detail.clone(),
            note: trace.inner.note.lock().unwrap().clone(),
            start_ns: trace.inner.start_ns,
            total_ns,
            stages: trace.inner.stages.lock().unwrap().clone(),
        };
        self.recorder.offer(finished);
    }

    /// The flight recorder.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    fn manual() -> (Arc<ManualClock>, Tracer) {
        let clock = Arc::new(ManualClock::new());
        let tracer = Tracer::with_capacity(clock.clone() as Arc<dyn Clock>, 3);
        (clock, tracer)
    }

    #[test]
    fn disabled_tracer_samples_nothing() {
        let (_c, t) = manual();
        assert!(!t.enabled());
        assert!(t
            .maybe_start("query", || panic!("detail must not be built"))
            .is_none());
    }

    #[test]
    fn sample_every_n_is_deterministic() {
        let (_c, t) = manual();
        t.set_sample_rate(0.25);
        let sampled: Vec<bool> = (0..8)
            .map(|_| t.maybe_start("q", String::new).is_some())
            .collect();
        assert_eq!(
            sampled,
            [true, false, false, false, true, false, false, false]
        );
    }

    #[test]
    fn stages_and_total_use_injected_clock() {
        let (c, t) = manual();
        t.set_sample_rate(1.0);
        let tr = t.maybe_start("query", || "doc=d1".into()).unwrap();
        let s = tr.now_ns();
        c.advance(Duration::from_micros(40));
        tr.record_stage(Stage::Plan, s);
        let s = tr.now_ns();
        c.advance(Duration::from_micros(60));
        tr.record_stage(Stage::Probe, s);
        tr.annotate("plan: Index(equi)");
        t.finish(tr);
        let got = t.recorder().slowest();
        assert_eq!(got.len(), 1);
        let ft = &got[0];
        assert_eq!(ft.total_ns, 100_000);
        assert_eq!(ft.stage_sum_ns(), 100_000);
        assert_eq!(ft.stages.len(), 2);
        assert_eq!(ft.stages[0].stage, Stage::Plan);
        assert_eq!(ft.stages[0].dur_ns, 40_000);
        assert!(ft.render().contains("plan: Index(equi)"));
        assert!(ft.render().contains("probe"));
    }

    #[test]
    fn recorder_keeps_slowest() {
        let (c, t) = manual();
        t.set_sample_rate(1.0);
        // Durations 1..=6 µs; capacity 3 keeps {6, 5, 4}.
        for us in 1..=6u64 {
            let tr = t.maybe_start("q", || format!("r{us}")).unwrap();
            c.advance(Duration::from_micros(us));
            t.finish(tr);
        }
        let kept: Vec<u64> = t.recorder().slowest().iter().map(|f| f.total_ns).collect();
        assert_eq!(kept, [6_000, 5_000, 4_000]);
        assert_eq!(t.recorder().finished_count(), 6);
        t.recorder().clear();
        assert!(t.recorder().slowest().is_empty());
    }
}
