//! A lock-free metrics registry with Prometheus / JSON export.
//!
//! Registration is rare and takes a mutex; the handles it returns
//! ([`Counter`], [`Gauge`], [`std::sync::Arc<LatencyHistogram>`]) are
//! plain `Arc`'d atomics, so hot-path updates are single relaxed
//! atomic operations with no lock and no allocation. Metrics are keyed
//! by `(name, sorted label pairs)` — registering the same key twice
//! returns the same underlying cell, which makes wiring idempotent
//! across layers that may race to register.
//!
//! Values that are cheap to *read* but expensive (or impossible) to
//! mirror into an atomic — tree statistics, queue depths — are instead
//! contributed at snapshot time by registered **collectors**: closures
//! that push samples into the snapshot. The hot path never pays for
//! them.
//!
//! [`RegistrySnapshot`] renders as Prometheus text exposition format
//! ([`RegistrySnapshot::to_prometheus`]) or JSON
//! ([`RegistrySnapshot::to_json`]). Histograms are exposed as
//! Prometheus `summary` series (quantiles + `_sum` + `_count`) rather
//! than the 496-bucket raw ladder.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::histogram::{HistogramSnapshot, LatencyHistogram};

/// A monotonically-increasing counter handle. Cloning shares the cell.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not attached to any registry (for tests / defaults).
    pub fn detached() -> Counter {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle: a value that can move both ways. Cloning shares the
/// cell.
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A gauge not attached to any registry (for tests / defaults).
    pub fn detached() -> Gauge {
        Gauge(Arc::new(AtomicU64::new(0)))
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n` (saturating at zero under races is NOT guaranteed;
    /// callers pair `add`/`sub` so the net stays non-negative).
    #[inline]
    pub fn sub(&self, n: u64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// How a histogram's raw `u64` observations should be exposed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Unit {
    /// Observations are nanoseconds; exposition divides by 1e9 so the
    /// exported quantiles / sums are seconds (Prometheus convention).
    Seconds,
    /// Observations are unitless (batch sizes, drift permille, …);
    /// exported raw.
    None,
}

/// Sorted, owned label pairs — the canonical form used as part of the
/// metric key.
pub type Labels = Vec<(String, String)>;

fn canon_labels(labels: &[(&str, &str)]) -> Labels {
    let mut v: Labels = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    v.sort();
    v
}

enum Slot {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<LatencyHistogram>, Unit),
}

struct Entry {
    help: String,
    slot: Slot,
}

type Collector = Box<dyn Fn(&mut CollectorSink) + Send + Sync>;

#[derive(Default)]
struct Inner {
    metrics: BTreeMap<(String, Labels), Entry>,
    collectors: Vec<Collector>,
}

/// The registry. See the module docs.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().unwrap();
        f.debug_struct("MetricsRegistry")
            .field("metrics", &inner.metrics.len())
            .field("collectors", &inner.collectors.len())
            .finish()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Registers (or re-fetches) a counter under `(name, labels)`.
    ///
    /// # Panics
    /// If the key is already registered as a different metric type.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        let key = (name.to_string(), canon_labels(labels));
        let mut inner = self.inner.lock().unwrap();
        let entry = inner.metrics.entry(key).or_insert_with(|| Entry {
            help: help.to_string(),
            slot: Slot::Counter(Arc::new(AtomicU64::new(0))),
        });
        match &entry.slot {
            Slot::Counter(c) => Counter(Arc::clone(c)),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Registers (or re-fetches) a gauge under `(name, labels)`.
    ///
    /// # Panics
    /// If the key is already registered as a different metric type.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = (name.to_string(), canon_labels(labels));
        let mut inner = self.inner.lock().unwrap();
        let entry = inner.metrics.entry(key).or_insert_with(|| Entry {
            help: help.to_string(),
            slot: Slot::Gauge(Arc::new(AtomicU64::new(0))),
        });
        match &entry.slot {
            Slot::Gauge(g) => Gauge(Arc::clone(g)),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Registers (or re-fetches) a histogram under `(name, labels)`.
    ///
    /// # Panics
    /// If the key is already registered as a different metric type.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        unit: Unit,
    ) -> Arc<LatencyHistogram> {
        let key = (name.to_string(), canon_labels(labels));
        let mut inner = self.inner.lock().unwrap();
        let entry = inner.metrics.entry(key).or_insert_with(|| Entry {
            help: help.to_string(),
            slot: Slot::Histogram(Arc::new(LatencyHistogram::new()), unit),
        });
        match &entry.slot {
            Slot::Histogram(h, _) => Arc::clone(h),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Registers a snapshot-time collector. The closure runs on every
    /// [`MetricsRegistry::snapshot`] call and contributes read-only
    /// samples (tree stats, queue depths) without any hot-path cost.
    /// Hold only [`std::sync::Weak`] references inside the closure when
    /// the observed object itself owns this registry, or the cycle
    /// leaks.
    pub fn register_collector(&self, f: Collector) {
        self.inner.lock().unwrap().collectors.push(f);
    }

    /// A point-in-time view of every registered metric plus everything
    /// the collectors contribute.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let inner = self.inner.lock().unwrap();
        let mut samples: Vec<Sample> = inner
            .metrics
            .iter()
            .map(|((name, labels), entry)| Sample {
                name: name.clone(),
                labels: labels.clone(),
                help: entry.help.clone(),
                value: match &entry.slot {
                    Slot::Counter(c) => SampleValue::Counter(c.load(Ordering::Relaxed)),
                    Slot::Gauge(g) => SampleValue::Gauge(g.load(Ordering::Relaxed)),
                    Slot::Histogram(h, unit) => SampleValue::Summary(h.snapshot(), *unit),
                },
            })
            .collect();
        let mut sink = CollectorSink {
            samples: Vec::new(),
        };
        for c in &inner.collectors {
            c(&mut sink);
        }
        drop(inner);
        samples.extend(sink.samples);
        samples.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        RegistrySnapshot { samples }
    }
}

/// The sink collectors push samples into at snapshot time.
pub struct CollectorSink {
    samples: Vec<Sample>,
}

impl CollectorSink {
    /// Contributes a counter-typed sample.
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        self.samples.push(Sample {
            name: name.to_string(),
            labels: canon_labels(labels),
            help: help.to_string(),
            value: SampleValue::Counter(value),
        });
    }

    /// Contributes a gauge-typed sample.
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        self.samples.push(Sample {
            name: name.to_string(),
            labels: canon_labels(labels),
            help: help.to_string(),
            value: SampleValue::Gauge(value),
        });
    }
}

/// One exported series with its current value.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Metric name (`xvi_…`).
    pub name: String,
    /// Sorted label pairs.
    pub labels: Labels,
    /// Help text (one line).
    pub help: String,
    /// The value.
    pub value: SampleValue,
}

/// A sample's value, tagged with its metric type.
#[derive(Debug, Clone)]
pub enum SampleValue {
    /// Monotone counter.
    Counter(u64),
    /// Point-in-time gauge.
    Gauge(u64),
    /// Histogram exported as a summary, with its unit.
    Summary(HistogramSnapshot, Unit),
}

/// A point-in-time export of the registry. See
/// [`MetricsRegistry::snapshot`].
#[derive(Debug, Clone)]
pub struct RegistrySnapshot {
    /// All samples, sorted by `(name, labels)`.
    pub samples: Vec<Sample>,
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn fmt_labels(labels: &Labels, extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn scale(ns: u64, unit: Unit) -> f64 {
    match unit {
        Unit::Seconds => ns as f64 / 1e9,
        Unit::None => ns as f64,
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

const QUANTILES: [(f64, &str); 4] = [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99"), (0.999, "0.999")];

impl RegistrySnapshot {
    /// The value of a counter series, if present (registered counters
    /// and collector-contributed counter samples alike).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let labels = canon_labels(labels);
        self.samples
            .iter()
            .find(|s| s.name == name && s.labels == labels)
            .and_then(|s| match &s.value {
                SampleValue::Counter(v) => Some(*v),
                _ => None,
            })
    }

    /// The value of a gauge series, if present.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let labels = canon_labels(labels);
        self.samples
            .iter()
            .find(|s| s.name == name && s.labels == labels)
            .and_then(|s| match &s.value {
                SampleValue::Gauge(v) => Some(*v),
                _ => None,
            })
    }

    /// Distinct metric names in the snapshot.
    pub fn series_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.samples.iter().map(|s| s.name.as_str()).collect();
        names.dedup();
        names
    }

    /// Renders the snapshot in Prometheus text exposition format
    /// (version 0.0.4): `# HELP` / `# TYPE` headers per metric name,
    /// histograms as `summary` series with `quantile` labels plus
    /// `_sum` / `_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for s in &self.samples {
            let (type_str, _) = match &s.value {
                SampleValue::Counter(_) => ("counter", ()),
                SampleValue::Gauge(_) => ("gauge", ()),
                SampleValue::Summary(..) => ("summary", ()),
            };
            if last_name != Some(s.name.as_str()) {
                out.push_str(&format!(
                    "# HELP {} {}\n# TYPE {} {}\n",
                    s.name, s.help, s.name, type_str
                ));
                last_name = Some(s.name.as_str());
            }
            match &s.value {
                SampleValue::Counter(v) | SampleValue::Gauge(v) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        s.name,
                        fmt_labels(&s.labels, None),
                        v
                    ));
                }
                SampleValue::Summary(h, unit) => {
                    for (q, qs) in QUANTILES {
                        let v = scale(h.percentile(q).as_nanos() as u64, *unit);
                        out.push_str(&format!(
                            "{}{} {}\n",
                            s.name,
                            fmt_labels(&s.labels, Some(("quantile", qs))),
                            v
                        ));
                    }
                    let sum = scale(h.sum().as_nanos() as u64, *unit);
                    out.push_str(&format!(
                        "{}_sum{} {}\n",
                        s.name,
                        fmt_labels(&s.labels, None),
                        sum
                    ));
                    out.push_str(&format!(
                        "{}_count{} {}\n",
                        s.name,
                        fmt_labels(&s.labels, None),
                        h.count()
                    ));
                }
            }
        }
        out
    }

    /// Renders the snapshot as a JSON array of series objects.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, s) in self.samples.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let labels = s
                .labels
                .iter()
                .map(|(k, v)| format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)))
                .collect::<Vec<_>>()
                .join(",");
            match &s.value {
                SampleValue::Counter(v) => out.push_str(&format!(
                    "{{\"name\":\"{}\",\"type\":\"counter\",\"labels\":{{{labels}}},\"value\":{v}}}",
                    json_escape(&s.name)
                )),
                SampleValue::Gauge(v) => out.push_str(&format!(
                    "{{\"name\":\"{}\",\"type\":\"gauge\",\"labels\":{{{labels}}},\"value\":{v}}}",
                    json_escape(&s.name)
                )),
                SampleValue::Summary(h, unit) => {
                    let qs = QUANTILES
                        .iter()
                        .map(|(q, qs)| {
                            format!(
                                "\"{qs}\":{}",
                                scale(h.percentile(*q).as_nanos() as u64, *unit)
                            )
                        })
                        .collect::<Vec<_>>()
                        .join(",");
                    out.push_str(&format!(
                        "{{\"name\":\"{}\",\"type\":\"summary\",\"labels\":{{{labels}}},\
                         \"count\":{},\"max\":{},\"quantiles\":{{{qs}}}}}",
                        json_escape(&s.name),
                        h.count(),
                        scale(h.max().as_nanos() as u64, *unit),
                    ))
                }
            }
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn idempotent_registration_shares_cells() {
        let r = MetricsRegistry::new();
        let a = r.counter("xvi_test_total", "h", &[("shard", "0")]);
        let b = r.counter("xvi_test_total", "h", &[("shard", "0")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(
            r.snapshot().counter("xvi_test_total", &[("shard", "0")]),
            Some(3)
        );
        // Different labels are a different series.
        let c = r.counter("xvi_test_total", "h", &[("shard", "1")]);
        c.inc();
        let snap = r.snapshot();
        assert_eq!(snap.counter("xvi_test_total", &[("shard", "1")]), Some(1));
        assert_eq!(snap.counter("xvi_test_total", &[("shard", "0")]), Some(3));
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_mismatch_panics() {
        let r = MetricsRegistry::new();
        r.counter("xvi_x", "h", &[]);
        r.gauge("xvi_x", "h", &[]);
    }

    #[test]
    fn prometheus_format_is_well_formed() {
        let r = MetricsRegistry::new();
        r.counter("xvi_a_total", "counts a", &[("k", "v\"q\\n")])
            .add(7);
        r.gauge("xvi_b", "gauges b", &[]).set(3);
        r.histogram("xvi_c_seconds", "times c", &[], Unit::Seconds)
            .record(Duration::from_millis(5));
        r.register_collector(Box::new(|sink| {
            sink.gauge("xvi_d", "collected d", &[("x", "1")], 11);
        }));
        let text = r.snapshot().to_prometheus();
        // Every non-comment line is `name{labels} value` with a
        // parseable float value.
        let mut series = 0;
        for line in text.lines() {
            if line.starts_with('#') {
                assert!(line.starts_with("# HELP ") || line.starts_with("# TYPE "));
                continue;
            }
            series += 1;
            let (head, value) = line.rsplit_once(' ').expect("space-separated value");
            assert!(value.parse::<f64>().is_ok(), "bad value in {line:?}");
            let name_end = head.find('{').unwrap_or(head.len());
            let name = &head[..name_end];
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "bad metric name {name:?}"
            );
        }
        // counter + gauge + (4 quantiles + sum + count) + collector.
        assert_eq!(series, 1 + 1 + 6 + 1);
        assert!(text.contains("# TYPE xvi_c_seconds summary"));
        assert!(text.contains("quantile=\"0.99\""));
        assert!(text.contains("xvi_d{x=\"1\"} 11"));
        // Label escaping survives.
        assert!(text.contains("k=\"v\\\"q\\\\n\""));
    }

    #[test]
    fn json_is_escaped_and_listy() {
        let r = MetricsRegistry::new();
        r.counter("xvi_a_total", "a", &[("k", "v\"")]).inc();
        r.histogram("xvi_h", "h", &[], Unit::None)
            .record(Duration::from_nanos(42));
        let json = r.snapshot().to_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"k\":\"v\\\"\""));
        assert!(json.contains("\"type\":\"summary\""));
        assert!(json.contains("\"count\":1"));
    }

    #[test]
    fn summary_unit_scaling() {
        let r = MetricsRegistry::new();
        let h = r.histogram("xvi_lat_seconds", "h", &[], Unit::Seconds);
        h.record(Duration::from_secs(2));
        let text = r.snapshot().to_prometheus();
        // 2s recorded: the 0.5-quantile line must be ~2 (seconds), not
        // 2e9 (raw nanoseconds).
        let q50 = text
            .lines()
            .find(|l| l.contains("quantile=\"0.5\""))
            .unwrap();
        let v: f64 = q50.rsplit_once(' ').unwrap().1.parse().unwrap();
        assert!((1.9..=2.3).contains(&v), "expected seconds, got {v}");
    }
}
