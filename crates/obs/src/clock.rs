//! Injectable time sources.
//!
//! Everything in this crate that reads or schedules time goes through
//! the [`Clock`] trait, so tests (and deterministic benchmarks) can
//! substitute a [`ManualClock`] they advance by hand while production
//! code uses the [`MonotonicClock`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A monotonic time source reporting nanoseconds since its own epoch.
pub trait Clock: Send + Sync {
    /// Nanoseconds elapsed since the clock's epoch. Must never go
    /// backwards.
    fn now_ns(&self) -> u64;

    /// [`Clock::now_ns`] as a [`Duration`] since the epoch.
    fn now(&self) -> Duration {
        Duration::from_nanos(self.now_ns())
    }
}

/// The production clock: [`Instant`]-backed, epoch = construction.
#[derive(Debug)]
pub struct MonotonicClock {
    epoch: Instant,
}

impl MonotonicClock {
    /// A clock whose epoch is now.
    pub fn new() -> MonotonicClock {
        MonotonicClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        // ~584 years of range; saturate rather than wrap if exceeded.
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A hand-advanced clock for deterministic tests: time moves only when
/// [`ManualClock::advance`] (or [`ManualClock::set_ns`]) is called.
#[derive(Debug, Default)]
pub struct ManualClock {
    ns: AtomicU64,
}

impl ManualClock {
    /// A clock frozen at its epoch (t = 0).
    pub fn new() -> ManualClock {
        ManualClock::default()
    }

    /// Moves time forward by `by`.
    pub fn advance(&self, by: Duration) {
        let ns = u64::try_from(by.as_nanos()).unwrap_or(u64::MAX);
        self.ns.fetch_add(ns, Ordering::SeqCst);
    }

    /// Jumps to an absolute time (must not move backwards; a smaller
    /// value than the current reading is ignored).
    pub fn set_ns(&self, ns: u64) {
        self.ns.fetch_max(ns, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.ns.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_moves_only_when_advanced() {
        let c = ManualClock::new();
        assert_eq!(c.now_ns(), 0);
        c.advance(Duration::from_micros(5));
        assert_eq!(c.now_ns(), 5_000);
        c.set_ns(2_000); // backwards jumps are ignored
        assert_eq!(c.now_ns(), 5_000);
        c.set_ns(9_000);
        assert_eq!(c.now_ns(), 9_000);
    }

    #[test]
    fn monotonic_clock_is_monotonic() {
        let c = MonotonicClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }
}
