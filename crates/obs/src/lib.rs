//! # xvi-obs — unified observability: metrics, tracing, flight recorder
//!
//! Telemetry for the whole stack lives behind one dependency-free
//! crate (hand-rolled, like the `xvi-serve` runtime):
//!
//! * **Metrics registry** ([`MetricsRegistry`]) — lock-free counters,
//!   gauges, and log-bucketed latency histograms (the
//!   [`LatencyHistogram`] promoted from `xvi-serve`) behind labeled
//!   handles; hot-path updates are single relaxed atomics, and
//!   snapshot-time *collectors* pull in values that are cheap to read
//!   but pointless to mirror (tree stats, queue depths). Snapshots
//!   export as Prometheus text exposition format or JSON.
//! * **Request tracing** ([`Tracer`], [`Trace`], [`Stage`]) —
//!   counter-based deterministic sampling, per-stage timings over an
//!   injectable [`Clock`], and a near-free disabled path (one relaxed
//!   load).
//! * **Flight recorder** ([`FlightRecorder`]) — a fixed-size buffer
//!   retaining the N slowest traced requests with their stage
//!   breakdown and `--explain`-style plan annotation, dumpable on
//!   demand.
//!
//! The [`Obs`] hub bundles one registry + one tracer so every layer of
//! a service (B+tree collectors, index service, serve frontend) lands
//! its series in the same place.
//!
//! ```
//! use std::sync::Arc;
//! use std::time::Duration;
//! use xvi_obs::{Obs, Stage, Unit};
//!
//! let obs = Obs::new();
//! let hits = obs.registry.counter("xvi_demo_hits_total", "demo", &[("shard", "0")]);
//! hits.add(3);
//! let lat = obs
//!     .registry
//!     .histogram("xvi_demo_seconds", "demo latency", &[], Unit::Seconds);
//! lat.record(Duration::from_micros(250));
//!
//! obs.tracer.set_sample_rate(1.0);
//! let trace = obs.tracer.maybe_start("query", || "demo".into()).unwrap();
//! let t0 = trace.now_ns();
//! trace.record_stage(Stage::Probe, t0);
//! obs.tracer.finish(trace);
//!
//! let snap = obs.registry.snapshot();
//! assert_eq!(snap.counter("xvi_demo_hits_total", &[("shard", "0")]), Some(3));
//! assert!(snap.to_prometheus().contains("# TYPE xvi_demo_seconds summary"));
//! assert_eq!(obs.tracer.recorder().slowest().len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod histogram;
pub mod registry;
pub mod trace;

pub use clock::{Clock, ManualClock, MonotonicClock};
pub use histogram::{HistogramSnapshot, LatencyHistogram};
pub use registry::{
    CollectorSink, Counter, Gauge, MetricsRegistry, RegistrySnapshot, Sample, SampleValue, Unit,
};
pub use trace::{FinishedTrace, FlightRecorder, Stage, StageSample, Trace, Tracer};

use std::sync::Arc;

/// One observability hub: a shared registry + tracer pair. Every layer
/// that instruments itself takes `Arc<Obs>` so all series and traces
/// land in one place.
#[derive(Debug)]
pub struct Obs {
    /// The metrics registry.
    pub registry: MetricsRegistry,
    /// The request tracer (disabled until
    /// [`Tracer::set_sample_rate`] is called) and its flight recorder.
    pub tracer: Tracer,
}

impl Obs {
    /// A hub over the production [`MonotonicClock`].
    pub fn new() -> Arc<Obs> {
        Obs::with_clock(Arc::new(MonotonicClock::new()))
    }

    /// A hub over an injected clock (deterministic tests).
    pub fn with_clock(clock: Arc<dyn Clock>) -> Arc<Obs> {
        Arc::new(Obs {
            registry: MetricsRegistry::new(),
            tracer: Tracer::new(clock),
        })
    }
}
