//! Concurrent workload generation for the multi-document index
//! service: mixed reader/writer operation streams with zipf-skewed
//! document choice, deterministic in the seed.
//!
//! Real multi-tenant traffic is skewed — a few hot documents absorb
//! most operations while a long tail idles. The generator samples the
//! target document from a Zipf(θ) distribution so the service's
//! group-commit pipeline actually sees contention on the hot shards,
//! and fills the rest of the stream with the reader/writer mix the
//! caller asks for.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::probes::Zipf;
use xvi_xml::{Document, NodeId, NodeKind};

/// One operation of a concurrent workload.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadOp {
    /// Commit a write batch against document `doc`: `(node, value)`
    /// pairs, all distinct nodes of that document.
    Write {
        /// Index of the target document.
        doc: usize,
        /// The value writes of the transaction.
        writes: Vec<(NodeId, String)>,
    },
    /// Equality lookup of `value` against document `doc`.
    ReadEqui {
        /// Index of the target document.
        doc: usize,
        /// The string value to look up.
        value: String,
    },
    /// Double range lookup `[lo, hi]` against document `doc`.
    ReadRange {
        /// Index of the target document.
        doc: usize,
        /// Inclusive lower bound.
        lo: f64,
        /// Inclusive upper bound.
        hi: f64,
    },
}

impl WorkloadOp {
    /// The index of the document this operation targets.
    pub fn doc(&self) -> usize {
        match self {
            WorkloadOp::Write { doc, .. }
            | WorkloadOp::ReadEqui { doc, .. }
            | WorkloadOp::ReadRange { doc, .. } => *doc,
        }
    }

    /// Whether this operation commits writes.
    pub fn is_write(&self) -> bool {
        matches!(self, WorkloadOp::Write { .. })
    }
}

/// Tuning knobs for [`ConcurrentWorkload::generate`].
#[derive(Debug, Clone)]
pub struct ConcurrentConfig {
    /// Total number of operations to generate.
    pub ops: usize,
    /// Share of write operations in permille (e.g. 200 = 20% writes).
    pub write_permille: u32,
    /// Writes per transaction (each targeting distinct nodes).
    pub writes_per_txn: usize,
    /// Zipf skew exponent for document choice. `0.0` is uniform;
    /// `~1.0` is the classic heavy skew.
    pub zipf_theta: f64,
}

impl Default for ConcurrentConfig {
    fn default() -> Self {
        ConcurrentConfig {
            ops: 1_000,
            write_permille: 200,
            writes_per_txn: 4,
            zipf_theta: 0.99,
        }
    }
}

/// A reproducible stream of mixed read/write operations over a set of
/// documents.
#[derive(Debug, Clone)]
pub struct ConcurrentWorkload {
    /// The generated operations, in stream order.
    pub ops: Vec<WorkloadOp>,
}

impl ConcurrentWorkload {
    /// Generates a workload over `docs` (indexed by position).
    ///
    /// Write targets are text nodes of the chosen document; values mix
    /// numbers and words so both index families see churn. Read
    /// queries probe values that exist in the initial documents, so
    /// lookups are not vacuous.
    ///
    /// # Panics
    /// Panics if `docs` is empty or any document has no text node.
    pub fn generate(docs: &[Document], config: &ConcurrentConfig, seed: u64) -> ConcurrentWorkload {
        assert!(!docs.is_empty(), "need at least one document");
        let mut rng = StdRng::seed_from_u64(seed);
        let zipf = Zipf::new(docs.len(), config.zipf_theta);

        // Per-document text-node pools (write targets) and a sample of
        // existing values (read probes).
        let pools: Vec<Vec<NodeId>> = docs
            .iter()
            .map(|doc| {
                let pool: Vec<NodeId> = doc
                    .descendants(doc.document_node())
                    .filter(|&n| matches!(doc.kind(n), NodeKind::Text(_)))
                    .collect();
                assert!(!pool.is_empty(), "document without text nodes");
                pool
            })
            .collect();
        let probes: Vec<Vec<String>> = docs
            .iter()
            .zip(&pools)
            .map(|(doc, pool)| {
                pool.iter()
                    .step_by((pool.len() / 32).max(1))
                    .map(|&n| doc.string_value(n))
                    .collect()
            })
            .collect();

        let mut ops = Vec::with_capacity(config.ops);
        for _ in 0..config.ops {
            let doc = zipf.sample(&mut rng);
            if rng.gen_range(0..1000u32) < config.write_permille {
                let pool = &pools[doc];
                let n = config.writes_per_txn.max(1).min(pool.len());
                // Distinct nodes via a partial Fisher-Yates over
                // sampled indices.
                let mut picked: Vec<usize> = Vec::with_capacity(n);
                while picked.len() < n {
                    let i = rng.gen_range(0..pool.len());
                    if !picked.contains(&i) {
                        picked.push(i);
                    }
                }
                let writes = picked
                    .into_iter()
                    .map(|i| (pool[i], fresh_value(&mut rng)))
                    .collect();
                ops.push(WorkloadOp::Write { doc, writes });
            } else if rng.gen_range(0..2u32) == 0 {
                let probe = &probes[doc];
                let value = probe[rng.gen_range(0..probe.len())].clone();
                ops.push(WorkloadOp::ReadEqui { doc, value });
            } else {
                let lo = rng.gen_range(0.0..100_000.0f64);
                let hi = lo + rng.gen_range(1.0..10_000.0f64);
                ops.push(WorkloadOp::ReadRange { doc, lo, hi });
            }
        }
        ConcurrentWorkload { ops }
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of write transactions in the stream.
    pub fn write_count(&self) -> usize {
        self.ops.iter().filter(|op| op.is_write()).count()
    }

    /// Splits the stream round-robin into `n` per-thread slices,
    /// preserving relative order within each slice.
    pub fn into_shards(self, n: usize) -> Vec<Vec<WorkloadOp>> {
        let n = n.max(1);
        let mut shards: Vec<Vec<WorkloadOp>> = (0..n).map(|_| Vec::new()).collect();
        for (i, op) in self.ops.into_iter().enumerate() {
            shards[i % n].push(op);
        }
        shards
    }
}

fn fresh_value(rng: &mut StdRng) -> String {
    match rng.gen_range(0..4u8) {
        0 => format!("{}", rng.gen_range(0..100_000)),
        1 => format!("{}.{:02}", rng.gen_range(0..10_000), rng.gen_range(0..100)),
        2 => format!("hot value {}", rng.gen_range(0..1_000_000)),
        _ => format!("w{:x}", rng.gen::<u64>()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs() -> Vec<Document> {
        (0..8)
            .map(|i| {
                Document::parse(&format!(
                    "<r><a>alpha{i}</a><b>{i}1</b><c>gamma</c><d>{i}.5</d></r>"
                ))
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn deterministic_in_seed() {
        let d = docs();
        let c = ConcurrentConfig::default();
        let a = ConcurrentWorkload::generate(&d, &c, 7).ops;
        let b = ConcurrentWorkload::generate(&d, &c, 7).ops;
        assert_eq!(a, b);
        let other = ConcurrentWorkload::generate(&d, &c, 8).ops;
        assert_ne!(a, other);
    }

    #[test]
    fn respects_write_share() {
        let d = docs();
        let c = ConcurrentConfig {
            ops: 2_000,
            write_permille: 250,
            ..ConcurrentConfig::default()
        };
        let w = ConcurrentWorkload::generate(&d, &c, 1);
        assert_eq!(w.len(), 2_000);
        let share = w.write_count() as f64 / w.len() as f64;
        assert!((0.18..0.32).contains(&share), "write share {share:.2}");
    }

    #[test]
    fn zipf_skews_towards_first_docs() {
        let d = docs();
        let c = ConcurrentConfig {
            ops: 4_000,
            zipf_theta: 1.2,
            ..ConcurrentConfig::default()
        };
        let w = ConcurrentWorkload::generate(&d, &c, 3);
        let mut counts = vec![0usize; d.len()];
        for op in &w.ops {
            counts[op.doc()] += 1;
        }
        // The hottest document must absorb clearly more traffic than
        // the coldest one.
        assert!(counts[0] > counts[7] * 3, "counts {counts:?}");
        // Uniform (theta 0) spreads roughly evenly.
        let u = ConcurrentWorkload::generate(
            &d,
            &ConcurrentConfig {
                ops: 4_000,
                zipf_theta: 0.0,
                ..ConcurrentConfig::default()
            },
            3,
        );
        let mut ucounts = vec![0usize; d.len()];
        for op in &u.ops {
            ucounts[op.doc()] += 1;
        }
        assert!(ucounts.iter().all(|&c| c > 4_000 / 8 / 2), "{ucounts:?}");
    }

    #[test]
    fn write_targets_are_distinct_text_nodes() {
        let d = docs();
        let c = ConcurrentConfig {
            ops: 500,
            write_permille: 1000,
            writes_per_txn: 3,
            ..ConcurrentConfig::default()
        };
        let w = ConcurrentWorkload::generate(&d, &c, 11);
        for op in &w.ops {
            if let WorkloadOp::Write { doc, writes } = op {
                let mut nodes: Vec<NodeId> = writes.iter().map(|(n, _)| *n).collect();
                let before = nodes.len();
                nodes.sort();
                nodes.dedup();
                assert_eq!(nodes.len(), before, "duplicate write target");
                for &n in &nodes {
                    assert!(matches!(d[*doc].kind(n), NodeKind::Text(_)));
                }
            }
        }
    }

    #[test]
    fn round_robin_sharding_preserves_everything() {
        let d = docs();
        let w = ConcurrentWorkload::generate(&d, &ConcurrentConfig::default(), 5);
        let total = w.len();
        let shards = w.into_shards(3);
        assert_eq!(shards.len(), 3);
        assert_eq!(shards.iter().map(Vec::len).sum::<usize>(), total);
        // Balanced to within one op.
        let (min, max) = (
            shards.iter().map(Vec::len).min().unwrap(),
            shards.iter().map(Vec::len).max().unwrap(),
        );
        assert!(max - min <= 1);
    }
}
