//! # xvi-datagen — synthetic XML workloads
//!
//! The paper evaluates on eight documents: four XMark-generated
//! auction sites (scale factors 1–8) and four "real life" datasets
//! (EPAGeo geospatial data, DBLP publications, PSD protein sequences,
//! Wikipedia abstracts). Neither the XMark binary nor the dataset
//! downloads are available offline, so this crate generates
//! *shape-equivalent* substitutes: documents whose node-kind mix,
//! value-type mix, string-length profile and structural depth match
//! the paper's Table 1 statistics, scaled to laptop size (about 1/16
//! of the paper's sizes by default). The indices only ever observe
//! those shape statistics — not auction semantics — so every
//! experiment's relative behaviour is preserved (see DESIGN.md §3).
//!
//! All generators are deterministic in their seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod concurrent;
pub mod probes;
pub mod reallife;
pub mod updates;
mod vocab;
pub mod xmark;

pub use concurrent::{ConcurrentConfig, ConcurrentWorkload, WorkloadOp};
pub use updates::UpdateWorkload;

/// The paper's eight evaluation datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dataset {
    /// XMark-shaped auction site at the given scale factor (1, 2, 4, 8
    /// in the paper).
    XMark(u32),
    /// Geospatial facility data (coordinate-heavy; ~7% doubles).
    EpaGeo,
    /// Publication records; contains a few non-leaf double nodes.
    Dblp,
    /// Protein sequence data: long strings, some non-leaf doubles.
    Psd,
    /// Abstracts + URLs; almost no doubles, URL hash-collision
    /// pathology for the Figure 11 tail.
    Wiki,
}

impl Dataset {
    /// The eight datasets in the paper's Table 1 order.
    pub fn paper_suite() -> Vec<Dataset> {
        vec![
            Dataset::XMark(1),
            Dataset::XMark(2),
            Dataset::XMark(4),
            Dataset::XMark(8),
            Dataset::EpaGeo,
            Dataset::Dblp,
            Dataset::Psd,
            Dataset::Wiki,
        ]
    }

    /// Display name matching the paper's tables.
    pub fn name(self) -> String {
        match self {
            Dataset::XMark(sf) => format!("XMark{sf}"),
            Dataset::EpaGeo => "EPAGeo".into(),
            Dataset::Dblp => "DBLP".into(),
            Dataset::Psd => "PSD".into(),
            Dataset::Wiki => "Wiki".into(),
        }
    }

    /// Generates the dataset as XML text with the default per-dataset
    /// size (paper size ÷ 16) at `scale_permille` = 1000.
    ///
    /// `scale_permille` scales the document size further, e.g. 100 for
    /// quick tests; sizes scale linearly.
    pub fn generate(self, scale_permille: u32) -> String {
        let seed = 0x5EED ^ (scale_permille as u64);
        match self {
            Dataset::XMark(sf) => xmark::generate(sf * scale_permille, seed),
            Dataset::EpaGeo => reallife::epageo(scale_permille, seed),
            Dataset::Dblp => reallife::dblp(scale_permille, seed),
            Dataset::Psd => reallife::psd(scale_permille, seed),
            Dataset::Wiki => reallife::wiki(scale_permille, seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xvi_xml::Document;

    #[test]
    fn suite_order_matches_table1() {
        let names: Vec<String> = Dataset::paper_suite().iter().map(|d| d.name()).collect();
        assert_eq!(
            names,
            vec!["XMark1", "XMark2", "XMark4", "XMark8", "EPAGeo", "DBLP", "PSD", "Wiki"]
        );
    }

    #[test]
    fn all_datasets_parse_at_tiny_scale() {
        for ds in Dataset::paper_suite() {
            let xml = ds.generate(10);
            let doc = Document::parse(&xml)
                .unwrap_or_else(|e| panic!("{} does not parse: {e}", ds.name()));
            let stats = doc.stats();
            assert!(stats.total_nodes > 50, "{} too small: {stats:?}", ds.name());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::XMark(1).generate(10);
        let b = Dataset::XMark(1).generate(10);
        assert_eq!(a, b);
    }

    #[test]
    fn scale_is_roughly_linear() {
        let small = Dataset::Dblp.generate(10).len();
        let large = Dataset::Dblp.generate(40).len();
        let ratio = large as f64 / small as f64;
        assert!(
            (2.5..6.0).contains(&ratio),
            "4x scale gave {ratio:.2}x bytes"
        );
    }

    #[test]
    fn text_node_share_matches_paper_shape() {
        // Table 1: text nodes are 56-66% of all nodes in every dataset.
        for ds in Dataset::paper_suite() {
            let xml = ds.generate(20);
            let doc = Document::parse(&xml).unwrap();
            let s = doc.stats();
            let share = s.text_nodes as f64 / s.total_nodes as f64;
            assert!(
                (0.38..0.75).contains(&share),
                "{}: text share {share:.2} out of shape",
                ds.name()
            );
        }
    }
}
