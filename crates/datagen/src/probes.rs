//! Point-probe key streams over an index space `0..n` — uniform,
//! sorted (sequential sweep), and zipf-skewed — deterministic in the
//! seed.
//!
//! These are the probe patterns the lookup bench sweeps the B+tree
//! descent fast paths with: sorted sweeps advance through one leaf at
//! a time, zipf streams model a query workload over zipf-popular
//! documents — short bursts of adjacent probes into a hot document's
//! posting block (see [`zipf_probes`] — the skewed document choice of
//! [`crate::concurrent`], split across two hot shards), and uniform
//! streams are the adversarial no-locality baseline.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Zipf sampler over `0..n` via the precomputed cumulative
/// distribution — exact, and fast enough for workload generation.
/// Rank `k` (0-based) is drawn with probability proportional to
/// `1 / (k + 1)^theta`; `theta = 0` degenerates to uniform.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for ranks `0..n` with skew `theta`.
    pub fn new(n: usize, theta: f64) -> Zipf {
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 1..=n {
            total += 1.0 / (k as f64).powf(theta);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Draws one rank.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// `count` independent uniform draws from `0..n`.
///
/// # Panics
/// Panics if `n == 0`.
pub fn uniform_probes(n: usize, count: usize, seed: u64) -> Vec<usize> {
    assert!(n > 0, "probe space must be non-empty");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|_| rng.gen_range(0..n)).collect()
}

/// A sequential wrap-around sweep of `count` probes through `0..n`,
/// starting at a seed-derived offset — the fully local pattern where
/// consecutive probes land in the same or the adjacent leaf.
///
/// # Panics
/// Panics if `n == 0`.
pub fn sorted_probes(n: usize, count: usize, seed: u64) -> Vec<usize> {
    assert!(n > 0, "probe space must be non-empty");
    let start = StdRng::seed_from_u64(seed).gen_range(0..n);
    (0..count).map(|i| (start + i) % n).collect()
}

/// Keys per document region in [`zipf_probes`] — the posting block a
/// single hot document owns in the key space.
pub const ZIPF_REGION: usize = 512;
/// Probes per query burst in [`zipf_probes`].
pub const ZIPF_BURST: usize = 32;

/// `count` probes modeling a zipf-skewed *query* workload: the key
/// space is split into document regions of [`ZIPF_REGION`] keys, each
/// query picks a region zipf-by-popularity (skew `theta`) and then
/// probes [`ZIPF_BURST`] adjacent keys from a uniform start inside it
/// — the way evaluating a query probes one document's posting block
/// with a run of adjacent lookups before moving on. Region ranks are
/// interleaved across the two halves of the key space (rank `2j` maps
/// to region `j`, rank `2j + 1` to the region at `n/2 + j·REGION`), so
/// the two hottest documents live on different shards and consecutive
/// bursts alternate between them unpredictably.
///
/// Unlike an independent-draw stream, the per-key *marginal* inside a
/// hot region is near-uniform; what is zipf here is document
/// popularity, which is where the skew sits in real XML corpora —
/// probes revisit a handful of hot posting blocks over and over while
/// the tail of cold documents is touched in rare scattered bursts.
///
/// # Panics
/// Panics if `n == 0`.
pub fn zipf_probes(n: usize, count: usize, theta: f64, seed: u64) -> Vec<usize> {
    assert!(n > 0, "probe space must be non-empty");
    let regions = n.div_ceil(ZIPF_REGION);
    let zipf = Zipf::new(regions, theta);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        let r = zipf.sample(&mut rng);
        // Interleave ranks across the two halves of the region list;
        // with an odd region count one pair of ranks shares a region,
        // which only nudges the popularity of that region.
        let region = (r & 1) * (regions / 2) + (r >> 1);
        let base = region * ZIPF_REGION;
        let span = ZIPF_REGION.min(n - base);
        let off = rng.gen_range(0..span);
        for i in 0..ZIPF_BURST.min(count - out.len()) {
            out.push(base + (off + i) % span);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        for n in [1usize, 7, 1000] {
            for gen in [uniform_probes, sorted_probes] {
                let a = gen(n, 500, 42);
                assert_eq!(a, gen(n, 500, 42));
                assert!(a.iter().all(|&k| k < n));
            }
            let z = zipf_probes(n, 500, 1.1, 42);
            assert_eq!(z, zipf_probes(n, 500, 1.1, 42));
            assert!(z.iter().all(|&k| k < n));
        }
    }

    #[test]
    fn sorted_probes_are_sequential() {
        let s = sorted_probes(1000, 100, 9);
        for w in s.windows(2) {
            assert_eq!(w[1], (w[0] + 1) % 1000);
        }
    }

    #[test]
    fn zipf_concentrates_on_two_hot_documents() {
        let n = 100_000;
        let z = zipf_probes(n, 10_000, 1.5, 3);
        // Rank 0 is the region at the start of the key space, rank 1
        // the one at the start of the second half.
        let regions = n.div_ceil(ZIPF_REGION);
        let second_base = (regions / 2) * ZIPF_REGION;
        let first = |k: usize| k < ZIPF_REGION;
        let second = |k: usize| (second_base..second_base + ZIPF_REGION).contains(&k);
        let hot = z.iter().filter(|&&k| first(k) || second(k)).count();
        assert!(hot > 4_000, "hot share {hot}/10000");
        // Both shards must actually be hot, not just the low one.
        let snd = z.iter().filter(|&&k| second(k)).count();
        assert!(snd > 1_200, "second shard share {snd}/10000");
        // Uniform by contrast touches the two hot regions rarely.
        let u = uniform_probes(n, 10_000, 3);
        let uhot = u.iter().filter(|&&k| first(k) || second(k)).count();
        assert!(uhot < 400, "uniform hot share {uhot}/10000");
    }

    #[test]
    fn zipf_probes_come_in_adjacent_bursts() {
        let z = zipf_probes(1_000_000, 1_600, 1.2, 7);
        for burst in z.chunks(ZIPF_BURST) {
            for w in burst.windows(2) {
                // Adjacent within the burst (modulo a wrap at the
                // region boundary).
                assert!(
                    w[1] == w[0] + 1 || w[1] + ZIPF_REGION == w[0] + 1,
                    "non-adjacent probes {} -> {} inside a burst",
                    w[0],
                    w[1]
                );
            }
        }
    }
}
