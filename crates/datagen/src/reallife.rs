//! Shape-equivalent substitutes for the paper's four "real life"
//! datasets (Table 1): EPAGeo, DBLP, PSD, Wiki.
//!
//! Each generator reproduces the statistics the experiments are
//! sensitive to — node counts per kind, the fraction of (potential)
//! double values, string-length distribution, and for DBLP/PSD a small
//! number of **non-leaf** double nodes (the mixed-content rarity the
//! paper highlights). Wiki additionally reproduces the URL repetition
//! pathology responsible for the multi-way hash collisions in
//! Figure 11.

use std::fmt::Write as _;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::vocab::{full_name, push_words, AMINO, COUNTIES, JOURNALS};

fn scale_count(scale: u32, base_at_1000: usize) -> usize {
    ((base_at_1000 as u64 * scale as u64) / 1000).max(1) as usize
}

/// EPAGeo-alike: geospatial facility records, coordinate-heavy
/// (paper: 66% text nodes, 7% doubles).
pub fn epageo(scale: u32, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xE9A0);
    let facilities = scale_count(scale, 24_000);
    let mut out = String::with_capacity(facilities * 330);
    out.push_str("<?xml version=\"1.0\"?><facilities>");
    for f in 0..facilities {
        write!(out, "<facility id=\"fac{f}\"><name>").unwrap();
        push_words(&mut out, &mut rng, 3);
        out.push_str("</name><address><street>");
        // "123 maple cedar St" — digits then words, rejects as a double.
        write!(out, "{} ", rng.gen_range(1..2000)).unwrap();
        push_words(&mut out, &mut rng, 2);
        out.push_str(" St</street><city>");
        push_words(&mut out, &mut rng, 1);
        out.push_str("ville</city><state>CA</state></address><location><latitude>");
        write!(out, "{:.6}", rng.gen_range(24.0..49.0)).unwrap();
        out.push_str("</latitude><longitude>");
        write!(out, "{:.6}", rng.gen_range(-125.0..-66.0)).unwrap();
        out.push_str("</longitude></location><county>");
        out.push_str(COUNTIES[rng.gen_range(0..COUNTIES.len())]);
        out.push_str("</county><sic>SIC-");
        write!(out, "{}", rng.gen_range(1000..9999)).unwrap();
        out.push_str("</sic><contact>");
        let (cf, cl) = full_name(&mut rng);
        write!(out, "{cf} {cl}").unwrap();
        out.push_str("</contact><program>");
        push_words(&mut out, &mut rng, 2);
        out.push_str("</program><status>");
        out.push_str(if rng.gen_bool(0.8) {
            "ACTIVE"
        } else {
            "CLOSED"
        });
        out.push_str("</status></facility>");
    }
    out.push_str("</facilities>");
    out
}

/// DBLP-alike: bibliography records; includes a small number of
/// non-leaf double nodes (the paper counts 21 on real DBLP).
pub fn dblp(scale: u32, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xDB19);
    let pubs = scale_count(scale, 68_000);
    let mut out = String::with_capacity(pubs * 300);
    out.push_str("<?xml version=\"1.0\"?><dblp>");
    for p in 0..pubs {
        let kind = if rng.gen_bool(0.55) {
            "article"
        } else {
            "inproceedings"
        };
        write!(out, "<{kind} key=\"conf/x/{p}\" mdate=\"").unwrap();
        crate::vocab::push_date(&mut out, &mut rng);
        out.push_str("\">");
        for _ in 0..rng.gen_range(1..4) {
            let (f, l) = full_name(&mut rng);
            write!(out, "<author>{f} {l}</author>").unwrap();
        }
        out.push_str("<title>");
        let n_words = rng.gen_range(4..12);
        push_words(&mut out, &mut rng, n_words);
        out.push_str("</title><year>");
        write!(out, "{}", rng.gen_range(1970..=2008)).unwrap();
        out.push_str("</year><pages>");
        let a = rng.gen_range(1..400);
        write!(out, "{}-{}", a, a + rng.gen_range(5..30)).unwrap();
        out.push_str("</pages>");
        if kind == "article" {
            out.push_str("<journal>");
            out.push_str(JOURNALS[rng.gen_range(0..JOURNALS.len())]);
            out.push_str("</journal><volume>");
            write!(out, "{}", rng.gen_range(1..40)).unwrap();
            out.push_str("</volume>");
        }
        // Rare mixed-content element whose concatenated text is a
        // valid double — the paper's "non-leaf" double phenomenon.
        if p % 3500 == 1 {
            out.push_str("<rating><major>");
            write!(out, "{}", rng.gen_range(1..9)).unwrap();
            out.push_str("</major>.<minor>");
            write!(out, "{}", rng.gen_range(0..9)).unwrap();
            out.push_str("</minor></rating>");
        }
        write!(out, "</{kind}>").unwrap();
    }
    out.push_str("</dblp>");
    out
}

/// PSD-alike: protein sequence database; long amino-acid strings, few
/// doubles, and (like the paper's 902) some non-leaf doubles.
pub fn psd(scale: u32, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x95D0);
    let entries = scale_count(scale, 40_000);
    let mut out = String::with_capacity(entries * 420);
    out.push_str("<?xml version=\"1.0\"?><ProteinDatabase>");
    for e in 0..entries {
        write!(
            out,
            "<ProteinEntry id=\"PSD{e:07}\"><header><uid>PIR{:06}</uid>",
            100_000 + e
        )
        .unwrap();
        write!(
            out,
            "<accession>A{:05}</accession></header>",
            rng.gen_range(10_000..99_999)
        )
        .unwrap();
        out.push_str("<protein><name>");
        let n_words = rng.gen_range(2..6);
        push_words(&mut out, &mut rng, n_words);
        out.push_str(" precursor</name><classification>");
        push_words(&mut out, &mut rng, 2);
        out.push_str("</classification><organism>");
        push_words(&mut out, &mut rng, 2);
        out.push_str("</organism><keywords>");
        push_words(&mut out, &mut rng, 3);
        out.push_str("</keywords></protein><sequence>");
        let len = rng.gen_range(60..400);
        for _ in 0..len {
            out.push(AMINO[rng.gen_range(0..AMINO.len())] as char);
        }
        out.push_str("</sequence><length>");
        write!(out, "{len} aa").unwrap(); // "402 aa" rejects as a double
        out.push_str("</length><reference><author>");
        let (f, l) = full_name(&mut rng);
        write!(
            out,
            "{f} {l}</author><year>{}</year></reference>",
            rng.gen_range(1975..=2008)
        )
        .unwrap();
        // Non-leaf doubles, denser than DBLP (paper: 902 vs 21).
        if e % 130 == 7 {
            out.push_str("<weight><kilodaltons>");
            write!(out, "{}", rng.gen_range(10..99)).unwrap();
            out.push_str("</kilodaltons>.<fraction>");
            write!(out, "{}", rng.gen_range(100..999)).unwrap();
            out.push_str("</fraction></weight>");
        }
        out.push_str("</ProteinEntry>");
    }
    out.push_str("</ProteinDatabase>");
    out
}

/// Wiki-alike: page abstracts with URL-heavy link lists. A fraction of
/// the URLs come in *collision families*: identical except for two
/// characters swapped exactly 27 positions apart, which the paper's
/// hash `H` cannot distinguish (its write offset has period 27) —
/// reproducing the Figure 11 tail of up to 9-way collisions.
pub fn wiki(scale: u32, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x3141);
    let pages = scale_count(scale, 56_000);
    let mut out = String::with_capacity(pages * 380);
    out.push_str("<?xml version=\"1.0\"?><feed>");
    for p in 0..pages {
        out.push_str("<doc><title>Wikipedia: ");
        let n_words = rng.gen_range(1..4);
        push_words(&mut out, &mut rng, n_words);
        out.push_str("</title><url>");
        push_url(&mut out, &mut rng, p);
        out.push_str("</url><abstract>");
        let n_words = rng.gen_range(8..40);
        push_words(&mut out, &mut rng, n_words);
        out.push_str("</abstract>");
        // A trickle of numeric values (the paper's Wiki has 0.1%).
        if p % 50 == 3 {
            write!(out, "<wordcount>{}</wordcount>", rng.gen_range(50..5000)).unwrap();
        }
        out.push_str("<links>");
        for _ in 0..rng.gen_range(0..4) {
            out.push_str("<sublink><anchor>");
            let n_words = rng.gen_range(1..3);
            push_words(&mut out, &mut rng, n_words);
            out.push_str("</anchor><link>");
            let target = rng.gen_range(0..pages.max(1));
            push_url(&mut out, &mut rng, target);
            out.push_str("</link></sublink>");
        }
        out.push_str("</links></doc>");
    }
    out.push_str("</feed>");
    out
}

/// Emits a URL; every 40th page belongs to a collision family whose
/// members differ only by two characters 27 positions apart.
fn push_url(out: &mut String, rng: &mut StdRng, page: usize) {
    if page.is_multiple_of(40) {
        // Collision family: the two variable characters sit exactly 27
        // bytes apart — the period of the hash's write offset — so both
        // land on the same c-array position and only their XOR matters.
        // All nine members use pairs with the same XOR (a ^ b = 3), so
        // the whole family shares one hash value, reproducing the
        // paper's up-to-9-way Wiki collisions.
        let family = page / 40;
        let member = rng.gen_range(0..9u32);
        let (a, b) = pair_for_member(member);
        // Between `a` and `b`: "_page_family_" (13) + 7 digits +
        // "_artcl" (6) = 26 bytes, so the characters are 27 apart.
        write!(
            out,
            "http://en.wikipedia.org/wiki/{a}_page_family_{family:07}_artcl{b}.html"
        )
        .unwrap();
    } else {
        write!(
            out,
            "http://en.wikipedia.org/wiki/{}_{}",
            crate::vocab::WORDS[rng.gen_range(0..crate::vocab::WORDS.len())],
            rng.gen_range(0..1_000_000)
        )
        .unwrap();
    }
}

/// Nine distinct (a, b) character pairs with constant XOR (`a ^ b =
/// 3`). Placed 27 bytes apart both characters are XOR-ed into the same
/// c-array offset, so the hash only sees `a ^ b` — all nine members
/// produce the same hash value while being distinct strings.
fn pair_for_member(member: u32) -> (char, char) {
    match member % 9 {
        0 => ('A', 'B'),
        1 => ('B', 'A'),
        2 => ('E', 'F'),
        3 => ('F', 'E'),
        4 => ('I', 'J'),
        5 => ('J', 'I'),
        6 => ('M', 'N'),
        7 => ('N', 'M'),
        _ => ('Q', 'R'),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xvi_xml::Document;

    #[test]
    fn epageo_is_coordinate_heavy() {
        let doc = Document::parse(&epageo(20, 9)).unwrap();
        let doubles = doc
            .descendants(doc.document_node())
            .filter(|&n| {
                matches!(doc.kind(n), xvi_xml::NodeKind::Text(t)
                         if t.parse::<f64>().is_ok())
            })
            .count();
        let stats = doc.stats();
        let share = doubles as f64 / stats.total_nodes as f64;
        assert!(share > 0.04, "double share {share:.3} too low for EPAGeo");
    }

    #[test]
    fn dblp_and_psd_have_nonleaf_doubles() {
        for xml in [dblp(120, 3), psd(40, 3)] {
            let doc = Document::parse(&xml).unwrap();
            let found = doc.descendants(doc.document_node()).any(|n| {
                matches!(doc.kind(n), xvi_xml::NodeKind::Element(_))
                    && doc.children(n).count() > 1
                    && doc.string_value(n).parse::<f64>().is_ok()
            });
            assert!(found, "expected at least one non-leaf double node");
        }
    }

    #[test]
    fn wiki_collision_families_collide() {
        let xml = wiki(30, 12);
        let doc = Document::parse(&xml).unwrap();
        let mut hist = xvi_hash::collisions::CollisionHistogram::new();
        for n in doc.descendants(doc.document_node()) {
            if let xvi_xml::NodeKind::Text(t) = doc.kind(n) {
                hist.observe(t);
            }
        }
        assert!(
            hist.max_multiplicity() >= 2,
            "wiki URLs must produce hash collisions (max multiplicity {})",
            hist.max_multiplicity()
        );
    }

    #[test]
    fn psd_sequences_are_long() {
        let doc = Document::parse(&psd(10, 5)).unwrap();
        let seq = doc
            .descendants(doc.document_node())
            .find(|&n| doc.name(n) == Some("sequence"))
            .unwrap();
        assert!(doc.string_value(seq).len() >= 60);
    }
}
