//! Shared word lists and text helpers for the generators.

use rand::rngs::StdRng;
use rand::Rng;

pub(crate) const WORDS: &[&str] = &[
    "auction", "bidder", "gold", "silver", "market", "ship", "harbor", "window", "stone", "river",
    "mountain", "quiet", "rapid", "ancient", "modern", "crystal", "velvet", "thunder", "meadow",
    "lantern", "copper", "marble", "cedar", "falcon", "ember", "granite", "hollow", "ivory",
    "juniper", "kestrel", "lichen", "maple", "nectar", "orchid", "pewter", "quarry", "russet",
    "saffron", "timber", "umber", "willow", "yarrow", "zephyr", "anchor", "breeze", "cobalt",
    "drift", "echo", "fable", "glade",
];

pub(crate) const FIRST_NAMES: &[&str] = &[
    "Arthur",
    "Ford",
    "Tricia",
    "Zaphod",
    "Marvin",
    "Fenchurch",
    "Random",
    "Agrajag",
    "Slartibartfast",
    "Eddie",
    "Benjy",
    "Frankie",
    "Deep",
    "Prak",
    "Hig",
    "Roosta",
];

pub(crate) const LAST_NAMES: &[&str] = &[
    "Dent",
    "Prefect",
    "McMillan",
    "Beeblebrox",
    "Android",
    "Colluphid",
    "Hurtenflurst",
    "Thought",
    "Jeltz",
    "Kwaltz",
    "Vogon",
    "Magrathea",
    "Halfrunt",
    "Bodyguard",
];

pub(crate) const COUNTIES: &[&str] = &[
    "Alameda", "Boulder", "Cook", "Dallas", "Erie", "Fresno", "Greene", "Harris", "Ingham",
    "Jackson", "Kent", "Lake", "Marion", "Nassau", "Orange", "Pierce",
];

pub(crate) const JOURNALS: &[&str] = &[
    "VLDB Journal",
    "TODS",
    "SIGMOD Record",
    "Information Systems",
    "TKDE",
    "JACM",
    "Computing Surveys",
    "Data Engineering Bulletin",
];

/// Amino-acid alphabet for PSD sequences.
pub(crate) const AMINO: &[u8] = b"ACDEFGHIKLMNPQRSTVWY";

/// Appends `n` random vocabulary words separated by spaces.
pub(crate) fn push_words(out: &mut String, rng: &mut StdRng, n: usize) {
    for i in 0..n {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(WORDS[rng.gen_range(0..WORDS.len())]);
    }
}

/// A random `xs:double` literal with two decimals, e.g. `187.42`.
pub(crate) fn push_price(out: &mut String, rng: &mut StdRng, max: u32) {
    let whole = rng.gen_range(1..max);
    let cents = rng.gen_range(0..100);
    out.push_str(&format!("{whole}.{cents:02}"));
}

/// A random date in 1998-2008 as `yyyy-mm-dd` (all days valid).
pub(crate) fn push_date(out: &mut String, rng: &mut StdRng) {
    let y = rng.gen_range(1998..=2008);
    let m = rng.gen_range(1..=12);
    let d = rng.gen_range(1..=28);
    out.push_str(&format!("{y:04}-{m:02}-{d:02}"));
}

/// A random `xs:dateTime` in the same decade.
pub(crate) fn push_date_time(out: &mut String, rng: &mut StdRng) {
    push_date(out, rng);
    out.push_str(&format!(
        "T{:02}:{:02}:{:02}",
        rng.gen_range(0..24),
        rng.gen_range(0..60),
        rng.gen_range(0..60)
    ));
}

pub(crate) fn full_name(rng: &mut StdRng) -> (&'static str, &'static str) {
    (
        FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())],
        LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())],
    )
}
