//! Update workloads (paper §6, Figure 10): "first defining the number
//! of text nodes whose values should be updated, and then randomly
//! picking the specified number of the text nodes".

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use xvi_xml::{Document, NodeId, NodeKind};

/// A reproducible batch of text-node value updates.
#[derive(Debug, Clone)]
pub struct UpdateWorkload {
    /// `(node, new value)` pairs, each node distinct.
    pub updates: Vec<(NodeId, String)>,
}

impl UpdateWorkload {
    /// Picks `n` distinct random text nodes of `doc` and generates a
    /// new value for each (a mix of numbers and words, so both index
    /// families see churn). If the document has fewer than `n` text
    /// nodes, all of them are updated.
    pub fn generate(doc: &Document, n: usize, seed: u64) -> UpdateWorkload {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut text_nodes: Vec<NodeId> = doc
            .descendants(doc.document_node())
            .filter(|&m| matches!(doc.kind(m), NodeKind::Text(_)))
            .collect();
        text_nodes.shuffle(&mut rng);
        text_nodes.truncate(n);
        let updates = text_nodes
            .into_iter()
            .map(|m| (m, Self::fresh_value(&mut rng)))
            .collect();
        UpdateWorkload { updates }
    }

    fn fresh_value(rng: &mut StdRng) -> String {
        match rng.gen_range(0..4u8) {
            0 => format!("{}", rng.gen_range(0..100_000)),
            1 => format!("{}.{:02}", rng.gen_range(0..10_000), rng.gen_range(0..100)),
            2 => format!("updated value {}", rng.gen_range(0..1_000_000)),
            _ => format!("v{:x}", rng.gen::<u64>()),
        }
    }

    /// Number of updates in the batch.
    pub fn len(&self) -> usize {
        self.updates.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }

    /// Borrowing view usable with `IndexManager::update_values`.
    pub fn as_pairs(&self) -> impl Iterator<Item = (NodeId, &str)> + '_ {
        self.updates.iter().map(|(n, v)| (*n, v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Document {
        Document::parse("<r><a>1</a><b>two</b><c>3.5</c><d>four</d><e>5</e><f>six</f></r>").unwrap()
    }

    #[test]
    fn picks_distinct_text_nodes() {
        let d = doc();
        let w = UpdateWorkload::generate(&d, 4, 1);
        assert_eq!(w.len(), 4);
        let mut nodes: Vec<NodeId> = w.updates.iter().map(|(n, _)| *n).collect();
        nodes.sort();
        nodes.dedup();
        assert_eq!(nodes.len(), 4);
        for &n in &nodes {
            assert!(matches!(d.kind(n), NodeKind::Text(_)));
        }
    }

    #[test]
    fn caps_at_available_text_nodes() {
        let d = doc();
        let w = UpdateWorkload::generate(&d, 100, 1);
        assert_eq!(w.len(), 6);
    }

    #[test]
    fn deterministic_in_seed() {
        let d = doc();
        let a = UpdateWorkload::generate(&d, 3, 9).updates;
        let b = UpdateWorkload::generate(&d, 3, 9).updates;
        assert_eq!(a, b);
        let c = UpdateWorkload::generate(&d, 3, 10).updates;
        assert_ne!(a, c);
    }
}
