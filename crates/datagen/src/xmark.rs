//! XMark-shaped auction documents.
//!
//! Mirrors the structure of the XMark benchmark (regions/items,
//! categories, people, open and closed auctions) with the node-shape
//! statistics of the paper's Table 1: roughly 64% text nodes and 8% of
//! text nodes carrying a (potential) valid double, moderate depth
//! (≤ 8), mixed-content `<description>` elements, and no non-leaf
//! double nodes. One unit of `scale` ≈ 1/1000 of the paper's XMark1
//! (which was 112 MB / 4.7M nodes), so `scale = 1000` ≈ 7 MB at the
//! default 1/16 laptop scaling.

use std::fmt::Write as _;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::vocab::{full_name, push_date, push_price, push_words};

const REGIONS: &[&str] = &[
    "africa",
    "asia",
    "australia",
    "europe",
    "namerica",
    "samerica",
];

/// Generates an auction site document. `scale` is in permille of the
/// default size; deterministic in `seed`.
pub fn generate(scale: u32, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
    // Base counts at scale 1000 (≈ 1/16 of the paper's XMark1).
    let items = scale_count(scale, 2600);
    let categories = scale_count(scale, 240);
    let people = scale_count(scale, 1600);
    let open = scale_count(scale, 1500);
    let closed = scale_count(scale, 640);

    let mut out = String::with_capacity(1024 + items * 420);
    out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?><site>");

    out.push_str("<regions>");
    for (r, region) in REGIONS.iter().enumerate() {
        write!(out, "<{region}>").unwrap();
        let lo = items * r / REGIONS.len();
        let hi = items * (r + 1) / REGIONS.len();
        for i in lo..hi {
            item(&mut out, &mut rng, i, categories);
        }
        write!(out, "</{region}>").unwrap();
    }
    out.push_str("</regions>");

    out.push_str("<categories>");
    for c in 0..categories {
        write!(out, "<category id=\"category{c}\"><name>").unwrap();
        push_words(&mut out, &mut rng, 2);
        out.push_str("</name><description>");
        description(&mut out, &mut rng);
        out.push_str("</description></category>");
    }
    out.push_str("</categories>");

    out.push_str("<people>");
    for p in 0..people {
        person(&mut out, &mut rng, p, categories);
    }
    out.push_str("</people>");

    out.push_str("<open_auctions>");
    for a in 0..open {
        open_auction(&mut out, &mut rng, a, items, people);
    }
    out.push_str("</open_auctions>");

    out.push_str("<closed_auctions>");
    for a in 0..closed {
        closed_auction(&mut out, &mut rng, a, items, people);
    }
    out.push_str("</closed_auctions>");

    out.push_str("</site>");
    out
}

fn scale_count(scale: u32, base_at_1000: usize) -> usize {
    ((base_at_1000 as u64 * scale as u64) / 1000).max(1) as usize
}

fn item(out: &mut String, rng: &mut StdRng, id: usize, categories: usize) {
    write!(out, "<item id=\"item{id}\"><location>").unwrap();
    push_words(out, rng, 1);
    out.push_str("</location><name>");
    push_words(out, rng, 2);
    out.push_str("</name><payment>Creditcard</payment><description>");
    description(out, rng);
    out.push_str("</description><quantity>");
    write!(out, "{}", rng.gen_range(1..10)).unwrap();
    write!(
        out,
        "</quantity><incategory category=\"category{}\"/>",
        rng.gen_range(0..categories.max(1))
    )
    .unwrap();
    out.push_str("</item>");
}

/// Mixed content: text interleaved with inline markup, like XMark's
/// description paragraphs.
fn description(out: &mut String, rng: &mut StdRng) {
    let n_words = rng.gen_range(4..14);
    push_words(out, rng, n_words);
    for _ in 0..rng.gen_range(3..8) {
        out.push_str("<bold>");
        let n_words = rng.gen_range(1..3);
        push_words(out, rng, n_words);
        out.push_str("</bold>");
        let n_words = rng.gen_range(2..8);
        push_words(out, rng, n_words);
    }
}

fn person(out: &mut String, rng: &mut StdRng, id: usize, categories: usize) {
    let (first, last) = full_name(rng);
    write!(out, "<person id=\"person{id}\"><name>{first} {last}</name>").unwrap();
    write!(
        out,
        "<emailaddress>mailto:{}@example{}.org</emailaddress>",
        first.to_lowercase(),
        rng.gen_range(0..64)
    )
    .unwrap();
    if rng.gen_bool(0.6) {
        write!(
            out,
            "<phone>+{} ({}) {}</phone>",
            rng.gen_range(1..99),
            rng.gen_range(100..999),
            rng.gen_range(10_000..99_999)
        )
        .unwrap();
    }
    out.push_str("<profile income=\"");
    push_price(out, rng, 99_000);
    out.push_str("\"><education>Graduate School</education><age>");
    write!(out, "{}", rng.gen_range(18..80)).unwrap();
    out.push_str("</age>");
    for _ in 0..rng.gen_range(0..3) {
        write!(
            out,
            "<interest category=\"category{}\"/>",
            rng.gen_range(0..categories.max(1))
        )
        .unwrap();
    }
    out.push_str("</profile></person>");
}

fn open_auction(out: &mut String, rng: &mut StdRng, id: usize, items: usize, people: usize) {
    write!(out, "<open_auction id=\"open_auction{id}\"><initial>").unwrap();
    push_price(out, rng, 300);
    out.push_str("</initial>");
    for _ in 0..rng.gen_range(1..4) {
        out.push_str("<bidder><date>");
        crate::vocab::push_date_time(out, rng);
        out.push_str("</date><increase>");
        push_price(out, rng, 30);
        write!(
            out,
            "</increase><personref person=\"person{}\"/></bidder>",
            rng.gen_range(0..people.max(1))
        )
        .unwrap();
    }
    out.push_str("<current>");
    push_price(out, rng, 500);
    write!(
        out,
        "</current><itemref item=\"item{}\"/><quantity>{}</quantity>",
        rng.gen_range(0..items.max(1)),
        rng.gen_range(1..5)
    )
    .unwrap();
    out.push_str("</open_auction>");
}

fn closed_auction(out: &mut String, rng: &mut StdRng, _id: usize, items: usize, people: usize) {
    write!(
        out,
        "<closed_auction><seller person=\"person{}\"/><buyer person=\"person{}\"/>",
        rng.gen_range(0..people.max(1)),
        rng.gen_range(0..people.max(1))
    )
    .unwrap();
    out.push_str("<price>");
    push_price(out, rng, 800);
    out.push_str("</price><date>");
    push_date(out, rng);
    write!(
        out,
        "</date><itemref item=\"item{}\"/><quantity>{}</quantity>",
        rng.gen_range(0..items.max(1)),
        rng.gen_range(1..5)
    )
    .unwrap();
    out.push_str("<annotation><description>");
    description(out, rng);
    out.push_str("</description></annotation></closed_auction>");
}

#[cfg(test)]
mod tests {
    use super::*;
    use xvi_xml::Document;

    #[test]
    fn parses_and_has_auction_structure() {
        let xml = generate(20, 42);
        let doc = Document::parse(&xml).unwrap();
        let site = doc.root_element().unwrap();
        assert_eq!(doc.name(site), Some("site"));
        let top: Vec<_> = doc.children(site).filter_map(|n| doc.name(n)).collect();
        assert_eq!(
            top,
            vec![
                "regions",
                "categories",
                "people",
                "open_auctions",
                "closed_auctions"
            ]
        );
    }

    #[test]
    fn scale_factors_nest() {
        let a = generate(10, 7).len();
        let b = generate(20, 7).len();
        assert!(b > a, "larger scale must produce more bytes");
    }

    #[test]
    fn contains_numeric_and_date_values() {
        let xml = generate(10, 1);
        assert!(xml.contains("<initial>"));
        assert!(xml.contains("<age>"));
        // Prices have two decimals.
        let doc = Document::parse(&xml).unwrap();
        let any_price = doc
            .descendants(doc.document_node())
            .find(|&n| doc.name(n) == Some("price"))
            .unwrap();
        let v = doc.string_value(any_price);
        assert!(v.parse::<f64>().is_ok(), "price {v:?} must be a double");
    }
}
