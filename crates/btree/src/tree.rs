//! The B+tree proper: lookup, insert with splits, delete with
//! borrow/merge rebalancing, monoid-summary maintenance, exact range
//! aggregates, snapshot diffing, and structural statistics.

use std::hash::Hash;
use std::ops::{Bound, RangeBounds};

use crate::cache::{
    hinted_partition_point, hinted_search, BranchCache, InlinePath, ProbeGate, MAX_DEPTH,
};
use crate::iter::Range;
use crate::node::{Node, NIL};
use crate::page::{ColVec, PagedVec};
use crate::summary::Summary;

/// Default maximum number of keys per node.
///
/// 32 keys per node keeps nodes within one or two cache lines for the
/// small fixed-size keys the indices use (`(u32, u32)`, `(f64, u32)`)
/// while keeping trees shallow.
pub const DEFAULT_ORDER: usize = 32;

/// An in-memory B+tree with linked leaves.
///
/// Keys are unique; [`BPlusTree::insert`] replaces and returns the
/// previous value for an existing key.
///
/// Nodes live in a paged copy-on-write arena ([`PagedVec`]):
/// `Clone` is O(pages) reference-count bumps — no node is copied —
/// and mutating a clone detaches only the pages its root-to-leaf
/// paths touch. [`TreeStats::shared_pages`] exposes how much of the
/// arena is currently shared with other clones.
///
/// ```
/// use xvi_btree::BPlusTree;
/// let mut t = BPlusTree::new();
/// for i in 0..1000u32 {
///     t.insert(i, i * 2);
/// }
/// assert_eq!(t.get(&21), Some(&42));
/// let in_range: Vec<u32> = t.range(10..13).map(|(k, _)| *k).collect();
/// assert_eq!(in_range, vec![10, 11, 12]);
/// ```
#[derive(Debug)]
pub struct BPlusTree<K, V> {
    pub(crate) nodes: PagedVec<Node<K, V>>,
    pub(crate) root: u32,
    pub(crate) first_leaf: u32,
    len: usize,
    /// Maximum number of keys a node may hold.
    order: usize,
    free: Vec<u32>,
    /// Structural version stamp: bumped by every mutation that can
    /// change node contents, shapes, or arena ids. The branch cache is
    /// keyed on it — a path recorded under an older epoch is ignored.
    epoch: u64,
    /// Memory of the previous descent (see [`crate::cache`]).
    cache: BranchCache,
}

impl<K: Clone, V: Clone> Clone for BPlusTree<K, V> {
    /// O(pages) reference-count bumps — no node is copied. The clone
    /// starts with an **empty** branch cache and zeroed hit/miss
    /// counters: cached paths name arena slots of a specific tree
    /// instance, and each instance warms its own.
    fn clone(&self) -> Self {
        BPlusTree {
            nodes: self.nodes.clone(),
            root: self.root,
            first_leaf: self.first_leaf,
            len: self.len,
            order: self.order,
            free: self.free.clone(),
            epoch: self.epoch,
            cache: BranchCache::new(),
        }
    }
}

/// Structural statistics, used for the paper's storage accounting
/// (Figure 9 bottom) and as a sanity window into tree shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeStats {
    /// Number of entries stored.
    pub len: usize,
    /// Number of live leaf nodes.
    pub leaves: usize,
    /// Number of live internal nodes.
    pub internals: usize,
    /// Tree height (a lone leaf root has depth 1).
    pub depth: usize,
    /// Total key slots in use across all nodes (leaf + internal).
    pub used_key_slots: usize,
    /// Arena pages backing the nodes.
    pub pages: usize,
    /// Arena pages currently shared with other clones of this tree
    /// (copy-on-write: they are detached page-by-page on first write).
    pub shared_pages: usize,
    /// Freed arena slots awaiting reuse; [`BPlusTree::shrink_to_fit`]
    /// compacts them away.
    pub free_slots: usize,
    /// Cumulative copy-on-write page detaches over this instance's
    /// mutation lineage (inherited by clones): the difference across a
    /// clone-then-mutate publish cycle is the pages that cycle copied.
    pub pages_detached: u64,
    /// The root [`Summary`] hash — an order-sensitive hash of the full
    /// key sequence, equal iff (modulo 64-bit collisions) two trees
    /// hold the same keys. See [`BPlusTree::subtree_hash`].
    pub root_hash: u64,
    /// Descents resolved at the branch-cached leaf itself.
    pub cache_hits: u64,
    /// Descents resolved from a cached ancestor below the root.
    pub cache_partial_hits: u64,
    /// Descents that fell back to a full root walk.
    pub cache_misses: u64,
}

impl<K: Ord + Clone + Hash, V: Clone> Default for BPlusTree<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Clone + Hash, V: Clone> BPlusTree<K, V> {
    /// Creates an empty tree with [`DEFAULT_ORDER`].
    pub fn new() -> Self {
        Self::with_order(DEFAULT_ORDER)
    }

    /// Creates an empty tree where nodes hold at most `order` keys.
    ///
    /// # Panics
    /// Panics if `order < 3` (splits need at least two keys per half).
    pub fn with_order(order: usize) -> Self {
        assert!(order >= 3, "B+tree order must be at least 3");
        let mut nodes = PagedVec::new();
        nodes.push(Node::Leaf {
            keys: ColVec::new(),
            values: ColVec::new(),
            next: NIL,
            prev: NIL,
        });
        BPlusTree {
            nodes,
            root: 0,
            first_leaf: 0,
            len: 0,
            order,
            free: Vec::new(),
            epoch: 0,
            cache: BranchCache::new(),
        }
    }

    /// Marks every cached descent path stale. Called (exactly once) by
    /// every mutating entry point that can change node contents,
    /// shapes, or arena ids.
    fn bump_epoch(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
    }

    /// Number of entries stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Minimum keys a non-root node must hold.
    fn min_keys(&self) -> usize {
        self.order / 2
    }

    pub(crate) fn node(&self, id: u32) -> &Node<K, V> {
        &self.nodes[id as usize]
    }

    /// Exclusive access to one node; detaches the node's page first if
    /// it is shared with another clone (the copy-on-write step).
    fn node_mut(&mut self, id: u32) -> &mut Node<K, V> {
        &mut self.nodes[id as usize]
    }

    /// Arena allocation for the bulk loader.
    pub(crate) fn alloc_node(&mut self, node: Node<K, V>) -> u32 {
        self.alloc(node)
    }

    /// Bulk-loader helper: links `leaf`'s `next` pointer.
    pub(crate) fn set_leaf_next(&mut self, leaf: u32, next: u32) {
        match self.node_mut(leaf) {
            Node::Leaf { next: n, .. } => *n = next,
            _ => unreachable!("set_leaf_next on a non-leaf"),
        }
    }

    /// Bulk-loader helper: first key of a leaf.
    pub(crate) fn first_key_of_leaf(&self, leaf: u32) -> K {
        match self.node(leaf) {
            Node::Leaf { keys, .. } => keys.first().expect("non-empty leaf").clone(),
            _ => unreachable!("first_key_of_leaf on a non-leaf"),
        }
    }

    /// Bulk-loader helper: moves the last `n` entries of `left` to the
    /// front of `right` (both leaves).
    pub(crate) fn shift_tail_to_right_leaf(&mut self, left: u32, right: u32, n: usize) {
        let (l, r) = self.two_nodes_mut(left, right);
        match (l, r) {
            (
                Node::Leaf {
                    keys: lk,
                    values: lv,
                    ..
                },
                Node::Leaf {
                    keys: rk,
                    values: rv,
                    ..
                },
            ) => {
                let lk = lk.make_mut();
                let at = lk.len() - n;
                let mut moved_k = lk.split_off(at);
                let mut moved_v = lv.make_mut().split_off(at);
                moved_k.append(rk.make_mut());
                moved_v.append(rv.make_mut());
                *rk = moved_k.into();
                *rv = moved_v.into();
            }
            _ => unreachable!("leaf rebalance on non-leaves"),
        }
    }

    /// Bulk-loader helper: installs a freshly built root and entry
    /// count, discarding the placeholder empty leaf when unused.
    pub(crate) fn replace_root(&mut self, root: u32, len: usize) {
        self.bump_epoch();
        let placeholder = self.root;
        self.root = root;
        self.len = len;
        if root != placeholder {
            // Slot 0 was the empty placeholder leaf from `with_order`;
            // recycle it unless the bulk loader reused it.
            self.dealloc(placeholder);
        }
        // The first leaf is the leftmost leaf under the new root.
        let mut id = root;
        loop {
            match self.node(id) {
                Node::Internal { children, .. } => id = children[0],
                Node::Leaf { .. } => break,
                Node::Free => unreachable!(),
            }
        }
        self.first_leaf = id;
    }

    fn alloc(&mut self, node: Node<K, V>) -> u32 {
        if let Some(id) = self.free.pop() {
            self.nodes[id as usize] = node;
            id
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as u32
        }
    }

    fn dealloc(&mut self, id: u32) {
        self.nodes[id as usize] = Node::Free;
        self.free.push(id);
    }

    /// Child index to follow for `key` given internal separators.
    /// `keys[i]` is the smallest key under `children[i + 1]`, so equal
    /// keys route right.
    fn route(keys: &[K], key: &K) -> usize {
        hinted_partition_point(keys, |sep| sep <= key)
    }

    /// Whether the key interval covered by a node's *contents* contains
    /// `key` — the branch-cache fence check. For a leaf this is its
    /// first/last key; for an interior node, the min of its first and
    /// the max of its last stored child summary. Sound without looking
    /// at ancestors: separator routing partitions the key space into
    /// disjoint per-subtree intervals and a subtree's `[min, max]` lies
    /// inside its own, so any live node whose fence covers `key` is on
    /// the cold descent path for `key`.
    fn node_covers(node: &Node<K, V>, key: &K) -> bool {
        match node {
            Node::Leaf { keys, .. } => match (keys.first(), keys.last()) {
                (Some(min), Some(max)) => min <= key && key <= max,
                _ => false,
            },
            Node::Internal { summaries, .. } => {
                match (
                    summaries.first().and_then(|s| s.min_key()),
                    summaries.last().and_then(|s| s.max_key()),
                ) {
                    (Some(min), Some(max)) => min <= key && key <= max,
                    _ => false,
                }
            }
            Node::Free => false,
        }
    }

    /// Routes from `start` down to the leaf for `key`, pushing every
    /// node *below* `start` onto `walk`.
    fn descend_from(&self, start: u32, key: &K, walk: &mut InlinePath) -> u32 {
        let mut id = start;
        loop {
            match self.node(id) {
                Node::Internal { keys, children, .. } => {
                    id = children[Self::route(keys, key)];
                    walk.push(id);
                }
                Node::Leaf { .. } => return id,
                Node::Free => unreachable!("descended into a freed node"),
            }
        }
    }

    /// Descends to the leaf that would contain `key`, reusing the
    /// previous descent's path where its fences still cover `key`.
    ///
    /// Every cached slot is verified against live node content
    /// (`node_covers`) before being trusted, so a stale or torn slot
    /// costs a fallback, never a wrong leaf. The probe ladder matches
    /// the cost profile of the streams this serves:
    ///
    /// 1. the **primary leaf** (recency) — the previous descent ended
    ///    there one probe ago, so the node is still in CPU cache; on
    ///    sorted and zipf streams it usually still covers, collapsing
    ///    the whole descent to one fence check plus the in-leaf search;
    /// 2. the **protected pair** (frequency) — up to two leaves that
    ///    earned a primary hit before being displaced; protected hits
    ///    move nothing, so scattered churn through the primary slot
    ///    cannot evict a proven-hot leaf, and *two* slots hold both
    ///    shards of a bimodal hot set at once;
    /// 3. the **primary leaf's parent** — catches the one-leaf-over
    ///    probes of sequential sweeps and near-misses around a hot
    ///    leaf with a single-level re-descent.
    ///
    /// Anything else is a full root walk. Deeper ancestors are *not*
    /// probed: verifying an interior fence costs about as much as one
    /// cold routing step, so climbing further pays the cold walk's
    /// price on top of the checks — the four-rung ladder bounds the
    /// total-miss overhead to four hot fence checks. On streams with
    /// no locality even those are wasted (the cached nodes go cold),
    /// so a confidence bypass ([`BranchCache::probe_gate`]) disables
    /// the ladder after a run of misses and re-arms it on any hit.
    pub(crate) fn find_leaf(&self, key: &K) -> u32 {
        let gate = self.cache.probe_gate();
        if let Some((leaf, parent)) = match gate {
            ProbeGate::Skip => None,
            _ => self.cache.probe_top(self.epoch),
        } {
            if let Some(node) = self.nodes.get(leaf as usize) {
                if matches!(node, Node::Leaf { .. }) && Self::node_covers(node, key) {
                    self.cache.count_hit();
                    return leaf;
                }
            }
            if gate == ProbeGate::Full {
                // Protected pair: leaves that proved hot before being
                // displaced from the primary slot. Hits here move
                // nothing — stability is the point.
                let (p0, p1) = self.cache.protected();
                for (slot, id) in [(0usize, p0), (1, p1)] {
                    if id == u32::MAX || id == leaf {
                        continue;
                    }
                    if let Some(node) = self.nodes.get(id as usize) {
                        if matches!(node, Node::Leaf { .. }) && Self::node_covers(node, key) {
                            self.cache.count_hit_protected(slot);
                            return id;
                        }
                    }
                }
                // The primary leaf's parent: one verified fence check
                // buys a single-level re-descent. A live covering
                // parent of a leaf always routes to a leaf; the nested
                // check only fails on a torn slot, which falls through
                // to the walk.
                if parent != u32::MAX {
                    if let Some(node) = self.nodes.get(parent as usize) {
                        if let Node::Internal { keys, children, .. } = node {
                            if Self::node_covers(node, key) {
                                let child = children[Self::route(keys, key)];
                                if let Some(cn) = self.nodes.get(child as usize) {
                                    if matches!(cn, Node::Leaf { .. }) {
                                        self.cache.count_partial();
                                        self.cache.record_leaf(child);
                                        return child;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        } else if gate == ProbeGate::Skip {
            // Bypass active: the stream has shown no locality, so
            // skip the rung checks *and* the path recording — this
            // probe is a plain cold walk plus two counter updates.
            self.cache.count_miss();
            return self.find_leaf_cold(key);
        }
        self.cache.count_miss();
        let mut walk = InlinePath::new();
        walk.push(self.root);
        let leaf = self.descend_from(self.root, key, &mut walk);
        self.cache.record_walk(self.epoch, &walk);
        leaf
    }

    /// Cold root-to-leaf walk: no branch cache, no recording. The
    /// baseline the cached descent is differentially tested and
    /// benchmarked against.
    pub(crate) fn find_leaf_cold(&self, key: &K) -> u32 {
        let mut id = self.root;
        loop {
            match self.node(id) {
                Node::Internal { keys, children, .. } => id = children[Self::route(keys, key)],
                Node::Leaf { .. } => return id,
                Node::Free => unreachable!("descended into a freed node"),
            }
        }
    }

    /// Looks up the value stored under `key`.
    pub fn get(&self, key: &K) -> Option<&V> {
        // Fast rung: fence check and in-leaf search fused on the
        // primary cached leaf. Under a matching epoch the leaf is
        // live and untouched since it was recorded, so an exact match
        // in it is the answer no matter where its fences lie, and a
        // strictly interior `Err` proves absence (the leaf's routing
        // interval contains its whole key span) — both resolve
        // without ever loading the fences. Boundary `Err`s fall to
        // the full ladder. Gated by a plain confidence load so
        // bypassed streams pay `find_leaf`'s gate accounting only.
        if self.cache.confident() {
            if let Some(leaf) = self.cache.probe_leaf(self.epoch) {
                if let Node::Leaf { keys, values, .. } = self.node(leaf) {
                    match hinted_search(keys, key) {
                        Ok(i) => {
                            self.cache.count_hit();
                            return Some(&values[i]);
                        }
                        Err(j) if j > 0 && j < keys.len() => {
                            self.cache.count_hit();
                            return None;
                        }
                        _ => {}
                    }
                }
            }
        }
        // Fallback rung: probes that reach here come from streams
        // with little locality, where the hint directory's short
        // linear scan mispredicts its exit on every probe (~35 ns/op
        // measured on uniform streams) — the branchless
        // `binary_search` is the right tool for scattered keys, the
        // hinted scan for the local streams the fast rung serves.
        let leaf = self.find_leaf(key);
        match self.node(leaf) {
            Node::Leaf { keys, values, .. } => keys.binary_search(key).ok().map(|i| &values[i]),
            _ => unreachable!(),
        }
    }

    /// [`BPlusTree::get`] without the branch cache: a full root walk
    /// with plain binary searches. Kept callable as the differential
    /// baseline — the lookup bench and the cache property tests pin
    /// `get` byte-identical to `get_cold` under arbitrary histories.
    pub fn get_cold(&self, key: &K) -> Option<&V> {
        let leaf = self.find_leaf_cold(key);
        match self.node(leaf) {
            Node::Leaf { keys, values, .. } => keys.binary_search(key).ok().map(|i| &values[i]),
            _ => unreachable!(),
        }
    }

    /// Looks up a mutable reference to the value stored under `key`.
    ///
    /// Structure and keys are untouched, so cached descent paths stay
    /// valid; only the leaf's *value column* is detached if shared.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let leaf = self.find_leaf(key);
        match self.node_mut(leaf) {
            Node::Leaf { keys, values, .. } => match hinted_search(keys, key) {
                Ok(i) => Some(&mut values.make_mut()[i]),
                Err(_) => None,
            },
            _ => unreachable!(),
        }
    }

    /// `(leaf hits, partial hits, full-walk misses)` of the branch
    /// cache since this tree instance was created (clones start from
    /// zero). Also surfaced through [`TreeStats`].
    pub fn descent_cache_counters(&self) -> (u64, u64, u64) {
        self.cache.counters()
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Inserts `key → value`; returns the previous value if `key` was
    /// already present (the entry is replaced, not duplicated).
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        self.bump_epoch();
        let (old, split) = self.insert_rec(self.root, key, value);
        if let Some((sep, right)) = split {
            let old_root = self.root;
            let left_sum = self.node_summary(old_root);
            let right_sum = self.node_summary(right);
            self.root = self.alloc(Node::Internal {
                keys: vec![sep],
                children: vec![old_root, right],
                summaries: vec![left_sum, right_sum],
            });
        }
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    fn insert_rec(&mut self, id: u32, key: K, value: V) -> (Option<V>, Option<(K, u32)>) {
        // Route first with a short-lived borrow, recurse, then mutate.
        let child = match self.node(id) {
            Node::Internal { keys, children, .. } => {
                let i = Self::route(keys, &key);
                Some((children[i], i))
            }
            Node::Leaf { .. } => None,
            Node::Free => unreachable!(),
        };

        match child {
            None => {
                let overflow = {
                    let order = self.order;
                    match self.node_mut(id) {
                        Node::Leaf { keys, values, .. } => match keys.binary_search(&key) {
                            Ok(i) => {
                                // Value overwrite: only the value column
                                // detaches; keys stay shared.
                                let slot = &mut values.make_mut()[i];
                                return (Some(std::mem::replace(slot, value)), None);
                            }
                            Err(i) => {
                                let keys = keys.make_mut();
                                keys.insert(i, key);
                                values.make_mut().insert(i, value);
                                keys.len() > order
                            }
                        },
                        _ => unreachable!(),
                    }
                };
                let split = overflow.then(|| self.split_leaf(id));
                (None, split)
            }
            Some((child_id, routed)) => {
                let (old, child_split) = self.insert_rec(child_id, key, value);
                let split = if let Some((sep, new_child)) = child_split {
                    // Summaries of both halves are computed before the
                    // parent borrow; the split child keeps its slot,
                    // the new right sibling goes just after it.
                    let child_sum = self.node_summary(child_id);
                    let new_sum = self.node_summary(new_child);
                    let overflow = {
                        let order = self.order;
                        match self.node_mut(id) {
                            Node::Internal {
                                keys,
                                children,
                                summaries,
                            } => {
                                let i = keys.partition_point(|k| k < &sep);
                                debug_assert_eq!(children[i], child_id, "split slot mismatch");
                                keys.insert(i, sep);
                                children.insert(i + 1, new_child);
                                summaries[i] = child_sum;
                                summaries.insert(i + 1, new_sum);
                                keys.len() > order
                            }
                            _ => unreachable!(),
                        }
                    };
                    overflow.then(|| self.split_internal(id))
                } else {
                    if old.is_none() {
                        // A fresh key changed the child's key sequence.
                        // (Replace-only inserts leave keys — and hence
                        // summaries — untouched, keeping the parent
                        // page attached on the COW fast path.)
                        self.refresh_child_summary(id, routed);
                    }
                    None
                };
                (old, split)
            }
        }
    }

    /// Splits an overflowing leaf; returns `(separator, new_right_id)`.
    /// The separator is a copy of the new right leaf's first key.
    fn split_leaf(&mut self, id: u32) -> (K, u32) {
        let (up_keys, up_values, old_next) = match self.node_mut(id) {
            Node::Leaf {
                keys, values, next, ..
            } => {
                let keys = keys.make_mut();
                let mid = keys.len() / 2;
                (keys.split_off(mid), values.make_mut().split_off(mid), *next)
            }
            _ => unreachable!(),
        };
        let sep = up_keys[0].clone();
        let new_id = self.alloc(Node::Leaf {
            keys: up_keys.into(),
            values: up_values.into(),
            next: old_next,
            prev: id,
        });
        if let Node::Leaf { next, .. } = self.node_mut(id) {
            *next = new_id;
        }
        if old_next != NIL {
            if let Node::Leaf { prev, .. } = self.node_mut(old_next) {
                *prev = new_id;
            }
        }
        (sep, new_id)
    }

    /// Splits an overflowing internal node; the middle key moves up.
    fn split_internal(&mut self, id: u32) -> (K, u32) {
        let (sep, up_keys, up_children, up_summaries) = match self.node_mut(id) {
            Node::Internal {
                keys,
                children,
                summaries,
            } => {
                let mid = keys.len() / 2;
                let up_keys = keys.split_off(mid + 1);
                let sep = keys.pop().expect("mid key exists");
                let up_children = children.split_off(mid + 1);
                let up_summaries = summaries.split_off(mid + 1);
                (sep, up_keys, up_children, up_summaries)
            }
            _ => unreachable!(),
        };
        let new_id = self.alloc(Node::Internal {
            keys: up_keys,
            children: up_children,
            summaries: up_summaries,
        });
        (sep, new_id)
    }

    /// Removes `key`, returning its value if it was present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        self.bump_epoch();
        let removed = self.remove_rec(self.root, key);
        if removed.is_some() {
            self.len -= 1;
            // Collapse a root that lost its last separator.
            if let Node::Internal { keys, children, .. } = self.node(self.root) {
                if keys.is_empty() {
                    let only_child = children[0];
                    let old_root = self.root;
                    self.root = only_child;
                    self.dealloc(old_root);
                }
            }
        }
        removed
    }

    fn remove_rec(&mut self, id: u32, key: &K) -> Option<V> {
        let child = match self.node(id) {
            Node::Internal { keys, children, .. } => {
                let idx = Self::route(keys, key);
                Some((children[idx], idx))
            }
            Node::Leaf { .. } => None,
            Node::Free => unreachable!(),
        };

        match child {
            None => match self.node_mut(id) {
                Node::Leaf { keys, values, .. } => match keys.binary_search(key) {
                    Ok(i) => {
                        keys.make_mut().remove(i);
                        Some(values.make_mut().remove(i))
                    }
                    Err(_) => None,
                },
                _ => unreachable!(),
            },
            Some((child_id, idx)) => {
                let out = self.remove_rec(child_id, key);
                if out.is_some() {
                    // Repair the stored summary before any rebalance
                    // reads sibling shapes; rebalance re-repairs the
                    // slots it moves entries across.
                    self.refresh_child_summary(id, idx);
                    if self.node(child_id).key_count() < self.min_keys() {
                        self.rebalance(id, idx);
                    }
                }
                out
            }
        }
    }

    /// Restores the occupancy invariant of `children[idx]` under
    /// `parent` by borrowing from a rich sibling or merging with one.
    fn rebalance(&mut self, parent: u32, idx: usize) {
        let (left, right, child_count) = match self.node(parent) {
            Node::Internal { children, .. } => (
                (idx > 0).then(|| children[idx - 1]),
                (idx + 1 < children.len()).then(|| children[idx + 1]),
                children.len(),
            ),
            _ => unreachable!(),
        };
        debug_assert!(child_count >= 2, "rebalance needs a sibling");

        let min = self.min_keys();
        if let Some(l) = left {
            if self.node(l).key_count() > min {
                self.borrow_from_left(parent, idx);
                return;
            }
        }
        if let Some(r) = right {
            if self.node(r).key_count() > min {
                self.borrow_from_right(parent, idx);
                return;
            }
        }
        if left.is_some() {
            self.merge(parent, idx - 1);
        } else {
            self.merge(parent, idx);
        }
    }

    /// Mutable access to two distinct arena slots (detaching their
    /// pages from any sharing first).
    fn two_nodes_mut(&mut self, a: u32, b: u32) -> (&mut Node<K, V>, &mut Node<K, V>) {
        self.nodes.pair_mut(a as usize, b as usize)
    }

    fn parent_key_replace(&mut self, parent: u32, key_idx: usize, new_key: K) -> K {
        match self.node_mut(parent) {
            Node::Internal { keys, .. } => std::mem::replace(&mut keys[key_idx], new_key),
            _ => unreachable!(),
        }
    }

    /// Recomputes the stored summary of `children[idx]` under `parent`
    /// from that child's own state (leaf keys, or its stored per-child
    /// summaries — O(fan-out) either way).
    fn refresh_child_summary(&mut self, parent: u32, idx: usize) {
        let child = match self.node(parent) {
            Node::Internal { children, .. } => children[idx],
            _ => unreachable!("summary refresh on a non-internal parent"),
        };
        let s = self.node_summary(child);
        match self.node_mut(parent) {
            Node::Internal { summaries, .. } => summaries[idx] = s,
            _ => unreachable!(),
        }
    }

    /// The combined summary of the subtree rooted at `id`. For a leaf
    /// this folds the keys; for an internal node it folds the *stored*
    /// per-child summaries — never the subtree itself.
    pub(crate) fn node_summary(&self, id: u32) -> Summary<K> {
        match self.node(id) {
            Node::Leaf { keys, .. } => Summary::of_sorted_keys(keys),
            Node::Internal { summaries, .. } => summaries
                .iter()
                .fold(Summary::empty(), |acc, s| acc.combine(s)),
            Node::Free => unreachable!("summary of a freed node"),
        }
    }

    fn borrow_from_left(&mut self, parent: u32, idx: usize) {
        let (left_id, child_id) = match self.node(parent) {
            Node::Internal { children, .. } => (children[idx - 1], children[idx]),
            _ => unreachable!(),
        };
        // Rotate through the siblings first, remember the key that must
        // become the new parent separator, then patch the parent once
        // the sibling borrows have ended.
        enum Rot<K> {
            /// Leaf rotation: the moved key is also the new separator.
            Leaf(K),
            /// Internal rotation: the rotated-out key replaces the
            /// separator, and the *old* separator must be pushed onto
            /// the child afterwards.
            Internal(K),
        }
        let rot = {
            let (left, child) = self.two_nodes_mut(left_id, child_id);
            match (left, child) {
                (
                    Node::Leaf {
                        keys: lk,
                        values: lv,
                        ..
                    },
                    Node::Leaf {
                        keys: ck,
                        values: cv,
                        ..
                    },
                ) => {
                    let k = lk.make_mut().pop().expect("left leaf has spare key");
                    let v = lv.make_mut().pop().expect("left leaf has spare value");
                    let sep = k.clone();
                    ck.make_mut().insert(0, k);
                    cv.make_mut().insert(0, v);
                    Rot::Leaf(sep)
                }
                (
                    Node::Internal {
                        keys: lk,
                        children: lc,
                        summaries: ls,
                    },
                    Node::Internal {
                        children: cc,
                        summaries: cs,
                        ..
                    },
                ) => {
                    let rotated_key = lk.pop().expect("left internal has spare key");
                    let rotated_child = lc.pop().expect("left internal has spare child");
                    let rotated_sum = ls.pop().expect("summaries parallel children");
                    cc.insert(0, rotated_child);
                    cs.insert(0, rotated_sum);
                    Rot::Internal(rotated_key)
                }
                _ => unreachable!("siblings are at the same level"),
            }
        };
        match rot {
            Rot::Leaf(sep) => {
                self.parent_key_replace(parent, idx - 1, sep);
            }
            Rot::Internal(rotated_key) => {
                let old_sep = self.parent_key_replace(parent, idx - 1, rotated_key);
                match self.node_mut(child_id) {
                    Node::Internal { keys, .. } => keys.insert(0, old_sep),
                    _ => unreachable!(),
                }
            }
        }
        // One entry crossed the sibling boundary: both slots changed.
        self.refresh_child_summary(parent, idx - 1);
        self.refresh_child_summary(parent, idx);
    }

    fn borrow_from_right(&mut self, parent: u32, idx: usize) {
        let (child_id, right_id) = match self.node(parent) {
            Node::Internal { children, .. } => (children[idx], children[idx + 1]),
            _ => unreachable!(),
        };
        enum Rot<K> {
            Leaf(K),
            Internal(K),
        }
        let rot = {
            let (child, right) = self.two_nodes_mut(child_id, right_id);
            match (child, right) {
                (
                    Node::Leaf {
                        keys: ck,
                        values: cv,
                        ..
                    },
                    Node::Leaf {
                        keys: rk,
                        values: rv,
                        ..
                    },
                ) => {
                    ck.make_mut().push(rk.make_mut().remove(0));
                    cv.make_mut().push(rv.make_mut().remove(0));
                    Rot::Leaf(rk[0].clone())
                }
                (
                    Node::Internal {
                        children: cc,
                        summaries: cs,
                        ..
                    },
                    Node::Internal {
                        keys: rk,
                        children: rc,
                        summaries: rs,
                    },
                ) => {
                    let rotated_key = rk.remove(0);
                    cc.push(rc.remove(0));
                    cs.push(rs.remove(0));
                    Rot::Internal(rotated_key)
                }
                _ => unreachable!("siblings are at the same level"),
            }
        };
        match rot {
            Rot::Leaf(sep) => {
                self.parent_key_replace(parent, idx, sep);
            }
            Rot::Internal(rotated_key) => {
                let old_sep = self.parent_key_replace(parent, idx, rotated_key);
                match self.node_mut(child_id) {
                    Node::Internal { keys, .. } => keys.push(old_sep),
                    _ => unreachable!(),
                }
            }
        }
        // One entry crossed the sibling boundary: both slots changed.
        self.refresh_child_summary(parent, idx);
        self.refresh_child_summary(parent, idx + 1);
    }

    /// Merges `children[i + 1]` into `children[i]` under `parent`,
    /// removing the separator `keys[i]`.
    fn merge(&mut self, parent: u32, i: usize) {
        let (left_id, right_id, sep) = match self.node_mut(parent) {
            Node::Internal {
                keys,
                children,
                summaries,
            } => {
                let sep = keys.remove(i);
                let right_id = children.remove(i + 1);
                summaries.remove(i + 1);
                (children[i], right_id, sep)
            }
            _ => unreachable!(),
        };
        let relink = {
            let (left, right) = self.two_nodes_mut(left_id, right_id);
            match (left, right) {
                (
                    Node::Leaf {
                        keys: lk,
                        values: lv,
                        next: lnext,
                        ..
                    },
                    Node::Leaf {
                        keys: rk,
                        values: rv,
                        next: rnext,
                        ..
                    },
                ) => {
                    lk.make_mut().append(rk.make_mut());
                    lv.make_mut().append(rv.make_mut());
                    let new_next = *rnext;
                    *lnext = new_next;
                    (new_next != NIL).then_some(new_next)
                }
                (
                    Node::Internal {
                        keys: lk,
                        children: lc,
                        summaries: ls,
                    },
                    Node::Internal {
                        keys: rk,
                        children: rc,
                        summaries: rs,
                    },
                ) => {
                    lk.push(sep);
                    lk.append(rk);
                    lc.append(rc);
                    ls.append(rs);
                    None
                }
                _ => unreachable!("siblings are at the same level"),
            }
        };
        if let Some(succ) = relink {
            if let Node::Leaf { prev, .. } = self.node_mut(succ) {
                *prev = left_id;
            }
        }
        self.dealloc(right_id);
        self.refresh_child_summary(parent, i);
    }

    /// In-order range scan. Bounds behave like `BTreeMap::range`.
    pub fn range<R: RangeBounds<K>>(&self, bounds: R) -> Range<'_, K, V> {
        Range::new(self, bounds)
    }

    /// [`BPlusTree::range`] positioned by a cold root walk instead of
    /// the branch cache — the differential baseline for the lookup
    /// bench and the cache property tests.
    pub fn range_cold<R: RangeBounds<K>>(&self, bounds: R) -> Range<'_, K, V> {
        Range::new_cold(self, bounds)
    }

    /// Iterates all entries in key order.
    pub fn iter(&self) -> Range<'_, K, V> {
        self.range(..)
    }

    /// The smallest entry, if any.
    pub fn first_key_value(&self) -> Option<(&K, &V)> {
        self.iter().next()
    }

    /// The largest entry, if any (walks down the rightmost spine).
    pub fn last_key_value(&self) -> Option<(&K, &V)> {
        let mut id = self.root;
        loop {
            match self.node(id) {
                Node::Internal { children, .. } => {
                    id = *children.last().expect("internal node has children")
                }
                Node::Leaf { keys, values, .. } => {
                    return keys
                        .last()
                        .map(|k| (k, values.last().expect("parallel vecs")));
                }
                Node::Free => unreachable!(),
            }
        }
    }

    /// Removes all entries.
    pub fn clear(&mut self) {
        let order = self.order;
        *self = Self::with_order(order);
    }

    // ----- monoid summaries: exact aggregates and structural diff ----------

    /// The maintained [`Summary`] of the whole tree: exact entry
    /// count, min/max key, and the order-sensitive key-sequence hash.
    /// O(fan-out of the root), not O(n).
    pub fn summary(&self) -> Summary<K> {
        self.node_summary(self.root)
    }

    /// The order-sensitive hash of the full key sequence. Two trees
    /// with equal `subtree_hash` hold the same keys in the same order
    /// (modulo 64-bit hash collisions) regardless of node shape,
    /// order, or arena layout — the comparison handle for snapshot
    /// verification and [`BPlusTree::diff_keys`]. Values are *not*
    /// covered: they can change through [`BPlusTree::get_mut`] without
    /// the tree observing it, so no maintained value hash could be
    /// sound.
    pub fn subtree_hash(&self) -> u64 {
        self.summary().hash
    }

    /// Exact number of entries whose keys fall within `bounds`, in
    /// O(log n) node visits: children of a visited node whose stored
    /// `[min, max]` lies entirely inside the bounds contribute their
    /// stored count without being visited; only the (at most two)
    /// boundary seams descend. Agrees with
    /// `self.range(bounds).count()` for every bound shape, including
    /// empty and reversed bounds (which yield 0, not a panic).
    pub fn count_range<R: RangeBounds<K>>(&self, bounds: R) -> usize {
        self.count_range_probed(bounds).0
    }

    /// [`BPlusTree::count_range`] plus the number of nodes actually
    /// visited — the probe counter the O(log n) claim is pinned by
    /// (`probes <= 2 * depth + 1`).
    pub fn count_range_probed<R: RangeBounds<K>>(&self, bounds: R) -> (usize, usize) {
        let lo = bounds.start_bound();
        let hi = bounds.end_bound();
        let mut probes = 0usize;
        let count = self.count_range_rec(self.root, lo, hi, &mut probes);
        (count as usize, probes)
    }

    /// Whether `key` lies below the start bound.
    fn below_lo(key: &K, lo: Bound<&K>) -> bool {
        match lo {
            Bound::Unbounded => false,
            Bound::Included(b) => key < b,
            Bound::Excluded(b) => key <= b,
        }
    }

    /// Whether `key` lies above the end bound.
    fn above_hi(key: &K, hi: Bound<&K>) -> bool {
        match hi {
            Bound::Unbounded => false,
            Bound::Included(b) => key > b,
            Bound::Excluded(b) => key >= b,
        }
    }

    fn count_range_rec(&self, id: u32, lo: Bound<&K>, hi: Bound<&K>, probes: &mut usize) -> u64 {
        *probes += 1;
        match self.node(id) {
            Node::Leaf { keys, .. } => {
                let start = match lo {
                    Bound::Unbounded => 0,
                    Bound::Included(b) => keys.partition_point(|k| k < b),
                    Bound::Excluded(b) => keys.partition_point(|k| k <= b),
                };
                let end = match hi {
                    Bound::Unbounded => keys.len(),
                    Bound::Included(b) => keys.partition_point(|k| k <= b),
                    Bound::Excluded(b) => keys.partition_point(|k| k < b),
                };
                end.saturating_sub(start) as u64
            }
            Node::Internal {
                children,
                summaries,
                ..
            } => {
                let mut total = 0u64;
                for (i, s) in summaries.iter().enumerate() {
                    let Some((min, max)) = &s.keys else { continue };
                    if Self::above_hi(min, hi) || Self::below_lo(max, lo) {
                        continue; // disjoint: skipped, not visited
                    }
                    if !Self::below_lo(min, lo) && !Self::above_hi(max, hi) {
                        total += s.count; // fully covered: credited blind
                    } else {
                        total += self.count_range_rec(children[i], lo, hi, probes);
                    }
                }
                total
            }
            Node::Free => unreachable!("descended into a freed node"),
        }
    }

    /// Symmetric difference of the key sets of two trees, plus the
    /// total number of nodes visited across both.
    ///
    /// Runs a sorted merge over both trees' cursors, but whenever both
    /// cursors stand at the start of subtrees with equal summaries
    /// (count, min/max, *and* sequence hash), the largest such pair is
    /// skipped wholesale without entering it. Between two snapshot
    /// versions related by k point mutations this visits O(log n + Δ)
    /// nodes — essentially the COW-detached write paths plus the two
    /// spines — instead of O(n). Node shape may differ freely between
    /// the trees (splits, merges, compaction); only key content
    /// matters. Equality of subtrees is judged by the 64-bit combined
    /// hash, so the result is exact modulo hash collisions.
    pub fn diff_keys(&self, other: &BPlusTree<K, V>) -> (Vec<K>, usize) {
        let mut a = DiffCursor::new(self);
        let mut b = DiffCursor::new(other);
        let mut out = Vec::new();
        loop {
            if a.at_end() && b.at_end() {
                break;
            }
            if a.at_end() {
                out.push(b.key().clone());
                b.advance();
                continue;
            }
            if b.at_end() {
                out.push(a.key().clone());
                a.advance();
                continue;
            }
            // Prune: the largest pair of here-starting subtrees with
            // identical summaries covers an identical key run in both
            // trees, so the merge can hop over both at once.
            let ca = a.candidates();
            if !ca.is_empty() {
                let cb = b.candidates();
                if !cb.is_empty() {
                    let sb: Vec<Summary<K>> = cb
                        .as_slice()
                        .iter()
                        .map(|&(_, id)| other.node_summary(id))
                        .collect();
                    let mut pruned = false;
                    'outer: for &(ja, ida) in ca.as_slice() {
                        let sa = self.node_summary(ida);
                        for (j, &(jb, _)) in cb.as_slice().iter().enumerate() {
                            if sa == sb[j] {
                                a.skip_to_next_subtree(ja);
                                b.skip_to_next_subtree(jb);
                                pruned = true;
                                break 'outer;
                            }
                        }
                    }
                    if pruned {
                        continue;
                    }
                }
            }
            match a.key().cmp(b.key()) {
                std::cmp::Ordering::Less => {
                    out.push(a.key().clone());
                    a.advance();
                }
                std::cmp::Ordering::Greater => {
                    out.push(b.key().clone());
                    b.advance();
                }
                std::cmp::Ordering::Equal => {
                    a.advance();
                    b.advance();
                }
            }
        }
        (out, a.probes + b.probes)
    }

    /// Cumulative copy-on-write page detaches (see
    /// [`TreeStats::pages_detached`]) — a cheap O(1) read, unlike the
    /// full [`stats`](Self::stats) walk.
    pub fn pages_detached(&self) -> u64 {
        self.nodes.pages_detached()
    }

    /// Structural statistics for storage accounting.
    pub fn stats(&self) -> TreeStats {
        let mut leaves = 0;
        let mut internals = 0;
        let mut used_key_slots = 0;
        for n in self.nodes.iter() {
            match n {
                Node::Leaf { keys, .. } => {
                    leaves += 1;
                    used_key_slots += keys.len();
                }
                Node::Internal { keys, .. } => {
                    internals += 1;
                    used_key_slots += keys.len();
                }
                Node::Free => {}
            }
        }
        let mut depth = 1;
        let mut id = self.root;
        while let Node::Internal { children, .. } = self.node(id) {
            depth += 1;
            id = children[0];
        }
        let (cache_hits, cache_partial_hits, cache_misses) = self.cache.counters();
        TreeStats {
            len: self.len,
            leaves,
            internals,
            depth,
            used_key_slots,
            pages: self.nodes.page_count(),
            shared_pages: self.nodes.shared_pages(),
            free_slots: self.free.len(),
            pages_detached: self.nodes.pages_detached(),
            root_hash: self.subtree_hash(),
            cache_hits,
            cache_partial_hits,
            cache_misses,
        }
    }

    /// A clone that shares nothing with `self`: every page is
    /// detached immediately instead of lazily on first write. This is
    /// the pre-structural-sharing ("deep") clone — useful for archival
    /// copies that must not pin the live tree's pages, and as the
    /// baseline the COW benches compare against.
    pub fn deep_clone(&self) -> Self {
        let mut c = self.clone();
        c.nodes = self.nodes.deep_clone();
        // Page-level unsharing copied the node headers, but a copied
        // leaf still *borrows* its key/value columns from the source;
        // detach those too so the deep clone shares nothing at any
        // level.
        for i in 0..c.nodes.len() {
            if let Node::Leaf { keys, values, .. } = &mut c.nodes[i] {
                keys.unshare();
                values.unshare();
            }
        }
        c
    }

    /// Compacts the arena: drops every freed slot and re-packs the
    /// live nodes into fresh pages, so a tree that shrank by bulk
    /// deletes stops carrying dead slots around (visible as
    /// [`TreeStats::free_slots`]). O(live nodes); the compacted arena
    /// shares no pages with any clone.
    pub fn shrink_to_fit(&mut self) {
        if self.free.is_empty() {
            return;
        }
        // Compaction renumbers arena slots: every cached path is junk.
        self.bump_epoch();
        #[cfg(debug_assertions)]
        let before = {
            let s = self.stats();
            (self.summary(), s.len, s.leaves, s.internals)
        };
        // New id = old id minus the freed slots before it.
        let mut map = vec![NIL; self.nodes.len()];
        let mut next = 0u32;
        for (i, n) in self.nodes.iter().enumerate() {
            if !matches!(n, Node::Free) {
                map[i] = next;
                next += 1;
            }
        }
        let remap = |id: u32, map: &[u32]| if id == NIL { NIL } else { map[id as usize] };
        let mut packed: PagedVec<Node<K, V>> = PagedVec::new();
        for n in self.nodes.iter() {
            match n {
                Node::Free => {}
                // Summaries describe subtree *contents*, not arena
                // ids, so they survive the remap verbatim.
                Node::Internal {
                    keys,
                    children,
                    summaries,
                } => packed.push(Node::Internal {
                    keys: keys.clone(),
                    children: children.iter().map(|&c| remap(c, &map)).collect(),
                    summaries: summaries.clone(),
                }),
                Node::Leaf {
                    keys,
                    values,
                    next,
                    prev,
                } => packed.push(Node::Leaf {
                    keys: keys.clone(),
                    values: values.clone(),
                    next: remap(*next, &map),
                    prev: remap(*prev, &map),
                }),
            }
        }
        self.root = remap(self.root, &map);
        self.first_leaf = remap(self.first_leaf, &map);
        self.nodes = packed;
        self.free.clear();
        // Compaction must be content-neutral: same entries in the same
        // order, same root summary, same live-node population.
        #[cfg(debug_assertions)]
        {
            let s = self.stats();
            debug_assert!(
                before.0 == self.summary(),
                "shrink_to_fit changed the root summary"
            );
            debug_assert!(
                before.1 == self.iter().count(),
                "shrink_to_fit changed the entry count"
            );
            debug_assert!(
                (before.2, before.3) == (s.leaves, s.internals),
                "shrink_to_fit changed the live node population"
            );
        }
    }

    /// Rough heap footprint of the live tree structure, in bytes.
    ///
    /// Counts used key/value/child slots plus a fixed per-node header;
    /// good enough for the relative storage comparisons of Figure 9.
    pub fn approx_bytes(&self) -> usize {
        const NODE_HEADER: usize = 48; // enum tag + vec headers + links
        let mut bytes = 0;
        for n in self.nodes.iter() {
            match n {
                Node::Leaf { keys, values, .. } => {
                    bytes += NODE_HEADER
                        + keys.len() * std::mem::size_of::<K>()
                        + values.len() * std::mem::size_of::<V>();
                }
                Node::Internal {
                    keys,
                    children,
                    summaries,
                } => {
                    bytes += NODE_HEADER
                        + keys.len() * std::mem::size_of::<K>()
                        + children.len() * std::mem::size_of::<u32>()
                        + summaries.len() * std::mem::size_of::<Summary<K>>();
                }
                Node::Free => {}
            }
        }
        bytes
    }

    /// Verifies every structural invariant — including that every
    /// interior node's stored per-child summaries are byte-identical
    /// to a from-scratch recompute of the child subtrees; returns a
    /// description of the first violation. Used by the test suite
    /// after mutation sequences — not on any hot path.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut leaf_entries = Vec::new();
        let mut leaf_order = Vec::new();
        let (_, root_summary) = self.check_node(
            self.root,
            None,
            None,
            true,
            &mut leaf_entries,
            &mut leaf_order,
        )?;
        let expect = leaf_entries
            .iter()
            .fold(Summary::empty(), |acc, k| acc.combine(&Summary::of_key(k)));
        if root_summary != expect {
            return Err("root summary disagrees with entry-by-entry recompute".into());
        }

        if leaf_entries.len() != self.len {
            return Err(format!(
                "len mismatch: counted {} entries, len() says {}",
                leaf_entries.len(),
                self.len
            ));
        }
        for pair in leaf_entries.windows(2) {
            if pair[0] >= pair[1] {
                return Err("keys not strictly increasing across leaves".into());
            }
        }

        // The leaf chain must visit exactly the in-order leaves.
        let mut chain = Vec::new();
        let mut id = self.first_leaf;
        let mut prev = NIL;
        while id != NIL {
            chain.push(id);
            match self.node(id) {
                Node::Leaf { prev: p, next, .. } => {
                    if *p != prev {
                        return Err(format!("leaf {id}: prev link {p} != expected {prev}"));
                    }
                    prev = id;
                    id = *next;
                }
                _ => return Err(format!("leaf chain reaches non-leaf node {id}")),
            }
            if chain.len() > self.nodes.len() {
                return Err("leaf chain has a cycle".into());
            }
        }
        if chain != leaf_order {
            return Err("leaf chain disagrees with in-order leaf traversal".into());
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn check_node(
        &self,
        id: u32,
        lower: Option<&K>,
        upper: Option<&K>,
        is_root: bool,
        leaf_entries: &mut Vec<K>,
        leaf_order: &mut Vec<u32>,
    ) -> Result<(usize, Summary<K>), String> {
        match self.node(id) {
            Node::Free => Err(format!("reached freed node {id}")),
            Node::Leaf { keys, values, .. } => {
                if keys.len() != values.len() {
                    return Err(format!("leaf {id}: keys/values length mismatch"));
                }
                if !is_root && keys.len() < self.min_keys() {
                    return Err(format!("leaf {id}: underfull ({} keys)", keys.len()));
                }
                if keys.len() > self.order {
                    return Err(format!("leaf {id}: overfull ({} keys)", keys.len()));
                }
                for k in keys.iter() {
                    if let Some(lo) = lower {
                        if k < lo {
                            return Err(format!("leaf {id}: key below subtree lower bound"));
                        }
                    }
                    if let Some(hi) = upper {
                        if k >= hi {
                            return Err(format!("leaf {id}: key at/above subtree upper bound"));
                        }
                    }
                    leaf_entries.push(k.clone());
                }
                leaf_order.push(id);
                Ok((1, Summary::of_sorted_keys(keys)))
            }
            Node::Internal {
                keys,
                children,
                summaries,
            } => {
                if children.len() != keys.len() + 1 {
                    return Err(format!("internal {id}: children/keys arity mismatch"));
                }
                if summaries.len() != children.len() {
                    return Err(format!("internal {id}: summaries/children arity mismatch"));
                }
                if !is_root && keys.len() < self.min_keys() {
                    return Err(format!("internal {id}: underfull ({} keys)", keys.len()));
                }
                if is_root && keys.is_empty() {
                    return Err(format!("internal root {id} has no separator"));
                }
                if keys.len() > self.order {
                    return Err(format!("internal {id}: overfull ({} keys)", keys.len()));
                }
                for pair in keys.windows(2) {
                    if pair[0] >= pair[1] {
                        return Err(format!("internal {id}: separators not increasing"));
                    }
                }
                let mut depth = None;
                let mut combined = Summary::empty();
                for (i, &child) in children.iter().enumerate() {
                    let lo = if i == 0 { lower } else { Some(&keys[i - 1]) };
                    let hi = if i == keys.len() {
                        upper
                    } else {
                        Some(&keys[i])
                    };
                    let (d, child_summary) =
                        self.check_node(child, lo, hi, false, leaf_entries, leaf_order)?;
                    if let Some(expect) = depth {
                        if d != expect {
                            return Err(format!("internal {id}: uneven child depths"));
                        }
                    }
                    depth = Some(d);
                    // The stored summary must be byte-identical to the
                    // bottom-up recompute of the child's subtree.
                    if summaries[i] != child_summary {
                        return Err(format!("internal {id}: stale stored summary for child {i}"));
                    }
                    combined = combined.combine(&child_summary);
                }
                Ok((depth.expect("internal node has children") + 1, combined))
            }
        }
    }
}

/// Fixed-capacity stack of `(internal node id, child index taken)`
/// descent steps: the diff cursor's root-to-leaf path without a
/// per-descent heap allocation. Depth is bounded by [`MAX_DEPTH`]
/// (asserted on push).
struct PathStack {
    steps: [(u32, u32); MAX_DEPTH],
    len: usize,
}

impl PathStack {
    fn new() -> Self {
        PathStack {
            steps: [(0, 0); MAX_DEPTH],
            len: 0,
        }
    }

    fn push(&mut self, node: u32, child: usize) {
        assert!(self.len < MAX_DEPTH, "tree depth exceeds MAX_DEPTH");
        self.steps[self.len] = (node, child as u32);
        self.len += 1;
    }

    fn pop(&mut self) -> Option<(u32, usize)> {
        if self.len == 0 {
            None
        } else {
            self.len -= 1;
            let (node, child) = self.steps[self.len];
            Some((node, child as usize))
        }
    }

    fn truncate(&mut self, n: usize) {
        self.len = self.len.min(n);
    }

    fn len(&self) -> usize {
        self.len
    }

    fn get(&self, i: usize) -> (u32, usize) {
        debug_assert!(i < self.len);
        let (node, child) = self.steps[i];
        (node, child as usize)
    }
}

/// Inline list of [`BPlusTree::diff_keys`] prune candidates —
/// `(path depth, subtree root id)` pairs, at most one per level plus
/// the leaf, so it fits next to the path without allocating.
struct Candidates {
    items: [(usize, u32); MAX_DEPTH + 1],
    len: usize,
}

impl Candidates {
    fn empty() -> Self {
        Candidates {
            items: [(0, 0); MAX_DEPTH + 1],
            len: 0,
        }
    }

    fn push(&mut self, depth: usize, id: u32) {
        self.items[self.len] = (depth, id);
        self.len += 1;
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn as_slice(&self) -> &[(usize, u32)] {
        &self.items[..self.len]
    }
}

/// A stack-based in-order position inside one tree, able to report the
/// maximal subtrees that *start* at the current key (the prune
/// candidates of [`BPlusTree::diff_keys`]) and to hop over one of them
/// in O(1) pops + one descent.
struct DiffCursor<'a, K, V> {
    tree: &'a BPlusTree<K, V>,
    /// Root-to-leaf path as `(internal node id, child index taken)`.
    path: PathStack,
    /// Current leaf, or `NIL` once exhausted.
    leaf: u32,
    /// Current key index within the leaf.
    idx: usize,
    /// Nodes visited (every descent step counts once).
    probes: usize,
}

impl<'a, K: Ord + Clone + Hash, V: Clone> DiffCursor<'a, K, V> {
    fn new(tree: &'a BPlusTree<K, V>) -> Self {
        let mut c = DiffCursor {
            tree,
            path: PathStack::new(),
            leaf: NIL,
            idx: 0,
            probes: 0,
        };
        c.descend(tree.root);
        c.normalize();
        c
    }

    fn at_end(&self) -> bool {
        self.leaf == NIL
    }

    fn key(&self) -> &'a K {
        match self.tree.node(self.leaf) {
            Node::Leaf { keys, .. } => &keys[self.idx],
            _ => unreachable!("cursor leaf is a leaf"),
        }
    }

    fn leaf_len(&self) -> usize {
        match self.tree.node(self.leaf) {
            Node::Leaf { keys, .. } => keys.len(),
            _ => unreachable!("cursor leaf is a leaf"),
        }
    }

    /// Pushes the path down to the leftmost leaf under `id`.
    fn descend(&mut self, mut id: u32) {
        loop {
            self.probes += 1;
            match self.tree.node(id) {
                Node::Internal { children, .. } => {
                    self.path.push(id, 0);
                    id = children[0];
                }
                Node::Leaf { .. } => {
                    self.leaf = id;
                    self.idx = 0;
                    return;
                }
                Node::Free => unreachable!("descended into a freed node"),
            }
        }
    }

    /// If the leaf is exhausted, climbs to the next unvisited sibling
    /// subtree (or exhausts the cursor). Leaves are never empty except
    /// the lone root leaf of an empty tree, which exhausts here.
    fn normalize(&mut self) {
        while self.leaf != NIL && self.idx >= self.leaf_len() {
            loop {
                match self.path.pop() {
                    None => {
                        self.leaf = NIL;
                        return;
                    }
                    Some((node, ci)) => {
                        let next_child = match self.tree.node(node) {
                            Node::Internal { children, .. } => {
                                (ci + 1 < children.len()).then(|| children[ci + 1])
                            }
                            _ => unreachable!(),
                        };
                        if let Some(child) = next_child {
                            self.path.push(node, ci + 1);
                            self.descend(child);
                            break;
                        }
                    }
                }
            }
        }
    }

    fn advance(&mut self) {
        self.idx += 1;
        self.normalize();
    }

    /// The subtrees whose key runs start exactly at the current key,
    /// largest first, as `(path depth, subtree root id)`. Depth
    /// `path.len()` denotes the current leaf itself; smaller depths
    /// denote ancestors reached through child index 0 all the way
    /// down. Empty unless the cursor stands at a leaf's first key.
    fn candidates(&self) -> Candidates {
        let mut out = Candidates::empty();
        if self.at_end() || self.idx != 0 {
            return out;
        }
        let mut start = self.path.len();
        while start > 0 && self.path.get(start - 1).1 == 0 {
            start -= 1;
        }
        for j in start..self.path.len() {
            out.push(j, self.path.get(j).0);
        }
        out.push(self.path.len(), self.leaf);
        out
    }

    /// Hops over the candidate subtree at path depth `j` (as returned
    /// by [`DiffCursor::candidates`]) to the next key after it.
    fn skip_to_next_subtree(&mut self, j: usize) {
        self.path.truncate(j);
        loop {
            match self.path.pop() {
                None => {
                    self.leaf = NIL;
                    return;
                }
                Some((node, ci)) => {
                    let next_child = match self.tree.node(node) {
                        Node::Internal { children, .. } => {
                            (ci + 1 < children.len()).then(|| children[ci + 1])
                        }
                        _ => unreachable!(),
                    };
                    if let Some(child) = next_child {
                        self.path.push(node, ci + 1);
                        self.descend(child);
                        return;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(n: u32, order: usize) -> BPlusTree<u32, u32> {
        let mut t = BPlusTree::with_order(order);
        for i in 0..n {
            assert_eq!(t.insert(i, i + 1000), None);
        }
        t
    }

    #[test]
    fn empty_tree() {
        let t: BPlusTree<u32, u32> = BPlusTree::new();
        assert!(t.is_empty());
        assert_eq!(t.get(&1), None);
        assert_eq!(t.iter().count(), 0);
        assert_eq!(t.first_key_value(), None);
        assert_eq!(t.last_key_value(), None);
        t.check_invariants().unwrap();
    }

    #[test]
    fn insert_get_replace() {
        let mut t = BPlusTree::new();
        assert_eq!(t.insert("b", 2), None);
        assert_eq!(t.insert("a", 1), None);
        assert_eq!(t.insert("b", 20), Some(2));
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(&"a"), Some(&1));
        assert_eq!(t.get(&"b"), Some(&20));
        t.check_invariants().unwrap();
    }

    #[test]
    fn ascending_and_descending_bulk_insert() {
        for order in [3, 4, 5, 8, 32] {
            let t = filled(1000, order);
            t.check_invariants().unwrap();
            assert_eq!(t.len(), 1000);
            let keys: Vec<u32> = t.iter().map(|(k, _)| *k).collect();
            assert_eq!(keys, (0..1000).collect::<Vec<_>>());

            let mut t = BPlusTree::with_order(order);
            for i in (0..1000u32).rev() {
                t.insert(i, i);
            }
            t.check_invariants().unwrap();
            assert_eq!(t.iter().count(), 1000);
        }
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut t = filled(100, 4);
        *t.get_mut(&50).unwrap() = 9999;
        assert_eq!(t.get(&50), Some(&9999));
        assert_eq!(t.get_mut(&200), None);
    }

    #[test]
    fn remove_everything_both_orders() {
        for order in [3, 4, 7, 32] {
            let mut t = filled(500, order);
            for i in 0..500u32 {
                assert_eq!(t.remove(&i), Some(i + 1000), "forward removal of {i}");
                t.check_invariants()
                    .unwrap_or_else(|e| panic!("order {order}, after removing {i}: {e}"));
            }
            assert!(t.is_empty());

            let mut t = filled(500, order);
            for i in (0..500u32).rev() {
                assert_eq!(t.remove(&i), Some(i + 1000), "reverse removal of {i}");
                t.check_invariants()
                    .unwrap_or_else(|e| panic!("order {order}, after removing {i}: {e}"));
            }
            assert!(t.is_empty());
        }
    }

    #[test]
    fn remove_missing_returns_none() {
        let mut t = filled(10, 4);
        assert_eq!(t.remove(&999), None);
        assert_eq!(t.len(), 10);
        t.check_invariants().unwrap();
    }

    #[test]
    fn interleaved_insert_remove() {
        let mut t = BPlusTree::with_order(4);
        for round in 0..20u32 {
            for i in 0..100u32 {
                t.insert(round * 1000 + i, i);
            }
            for i in (0..100u32).step_by(2) {
                assert!(t.remove(&(round * 1000 + i)).is_some());
            }
            t.check_invariants().unwrap();
        }
        assert_eq!(t.len(), 20 * 50);
    }

    #[test]
    fn range_scans() {
        let t = filled(1000, 8);
        let v: Vec<u32> = t.range(100..110).map(|(k, _)| *k).collect();
        assert_eq!(v, (100..110).collect::<Vec<_>>());
        let v: Vec<u32> = t.range(100..=110).map(|(k, _)| *k).collect();
        assert_eq!(v, (100..=110).collect::<Vec<_>>());
        let v: Vec<u32> = t.range(..3).map(|(k, _)| *k).collect();
        assert_eq!(v, vec![0, 1, 2]);
        let v: Vec<u32> = t.range(997..).map(|(k, _)| *k).collect();
        assert_eq!(v, vec![997, 998, 999]);
        assert_eq!(t.range(..).count(), 1000);
        assert_eq!(t.range(500..500).count(), 0);
        use std::ops::Bound;
        let v: Vec<u32> = t
            .range((Bound::Excluded(5), Bound::Included(8)))
            .map(|(k, _)| *k)
            .collect();
        assert_eq!(v, vec![6, 7, 8]);
    }

    #[test]
    fn range_with_gaps() {
        let mut t = BPlusTree::with_order(4);
        for i in (0..100u32).step_by(10) {
            t.insert(i, ());
        }
        let v: Vec<u32> = t.range(15..55).map(|(k, _)| *k).collect();
        assert_eq!(v, vec![20, 30, 40, 50]);
    }

    #[test]
    fn first_and_last() {
        let t = filled(777, 5);
        assert_eq!(t.first_key_value(), Some((&0, &1000)));
        assert_eq!(t.last_key_value(), Some((&776, &1776)));
    }

    #[test]
    fn clear_resets() {
        let mut t = filled(100, 4);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.iter().count(), 0);
        t.insert(1, 1);
        assert_eq!(t.len(), 1);
        t.check_invariants().unwrap();
    }

    #[test]
    fn stats_reflect_shape() {
        let t = filled(10_000, 32);
        let s = t.stats();
        assert_eq!(s.len, 10_000);
        assert!(s.depth >= 3, "10k keys at order 32 needs depth >= 3");
        assert!(s.leaves > s.internals);
        assert!(t.approx_bytes() > 10_000 * 8);
    }

    #[test]
    fn composite_key_prefix_scan() {
        // The multimap pattern the hash index uses: (hash, node) -> ().
        let mut t: BPlusTree<(u32, u32), ()> = BPlusTree::new();
        for node in [7, 3, 9] {
            t.insert((42, node), ());
        }
        t.insert((41, 1), ());
        t.insert((43, 2), ());
        let hits: Vec<u32> = t
            .range((42, 0)..=(42, u32::MAX))
            .map(|((_, n), _)| *n)
            .collect();
        assert_eq!(hits, vec![3, 7, 9]);
    }

    #[test]
    #[should_panic(expected = "order must be at least 3")]
    fn rejects_tiny_order() {
        let _ = BPlusTree::<u32, u32>::with_order(2);
    }

    #[test]
    fn clone_shares_pages_and_diverges_on_write() {
        let t = filled(5_000, 32);
        assert_eq!(t.stats().shared_pages, 0);
        let mut c = t.clone();
        // The clone copied no node: every page of both trees is shared.
        assert_eq!(c.stats().shared_pages, c.stats().pages);
        assert_eq!(t.stats().shared_pages, t.stats().pages);
        c.insert(10_000, 0);
        // Only the root-to-leaf path detached; the original is intact.
        assert!(c.stats().shared_pages > 0);
        assert_eq!(t.len(), 5_000);
        assert_eq!(t.get(&10_000), None);
        assert_eq!(c.get(&10_000), Some(&0));
        t.check_invariants().unwrap();
        c.check_invariants().unwrap();
        drop(t);
        assert_eq!(c.stats().shared_pages, 0);
    }

    #[test]
    fn deep_clone_shares_nothing() {
        let t = filled(2_000, 8);
        let c = t.deep_clone();
        assert_eq!(t.stats().shared_pages, 0);
        assert_eq!(c.stats().shared_pages, 0);
        let a: Vec<(u32, u32)> = t.iter().map(|(k, v)| (*k, *v)).collect();
        let b: Vec<(u32, u32)> = c.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn shrink_to_fit_compacts_after_bulk_deletes() {
        let mut t = filled(10_000, 4);
        for i in 0..9_900u32 {
            assert!(t.remove(&i).is_some());
        }
        let before = t.stats();
        assert!(
            before.free_slots > before.leaves + before.internals,
            "delete-heavy tree carries more dead slots than live nodes"
        );
        let entries: Vec<(u32, u32)> = t.iter().map(|(k, v)| (*k, *v)).collect();
        t.shrink_to_fit();
        let after = t.stats();
        assert_eq!(after.free_slots, 0);
        assert!(after.pages < before.pages, "compaction must drop pages");
        assert_eq!(after.len, before.len);
        t.check_invariants().unwrap();
        let compacted: Vec<(u32, u32)> = t.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(compacted, entries);
        // The compacted tree keeps working under further mutation.
        for i in 0..100u32 {
            t.insert(i, i);
        }
        assert_eq!(t.remove(&9_950), Some(9_950 + 1000));
        t.check_invariants().unwrap();
        // No free slots -> no-op.
        let mut fresh = filled(100, 4);
        let s = fresh.stats();
        fresh.shrink_to_fit();
        assert_eq!(fresh.stats(), s);
    }
}
