//! Associative subtree summaries — the paper's monoid, lifted into the
//! tree.
//!
//! The paper's whole premise is that its summary structures combine
//! associatively (`H(parent)` is computable from the children's stored
//! `H` values without rereading their strings). [`Summary`] applies the
//! same idea to the B+tree itself: every interior node stores, per
//! child, the combined summary of that child's subtree —
//!
//! * the exact **entry count**,
//! * the **min/max key** (`None` for an empty subtree, which only
//!   occurs transiently mid-rebalance), and
//! * an **order-sensitive combined hash** of the key sequence.
//!
//! Because [`Summary::combine`] is associative with [`Summary::empty`]
//! as identity, a parent's summary is a fold of its children's stored
//! summaries — O(fan-out), never O(subtree). That is what makes exact
//! `count_range` answers O(log n) (whole covered subtrees contribute
//! one stored count) and snapshot diffs O(log n + Δ) (equal hashes
//! prune equal subtrees).
//!
//! The hash covers **keys only**. Values can be mutated in place
//! through `get_mut` without the tree seeing it, so no value hash
//! maintained on the mutation paths could ever be trusted; the key
//! sequence, by contrast, changes only through tree operations. The
//! per-key hash is a seeded FNV-1a over the key's `Hash` impl, and
//! sequences combine polynomially: `seq(l ++ r) = seq(l)·B^|r| +
//! seq(r)` for an odd constant `B`, which is associative and
//! order-sensitive. Equality of summaries is therefore probabilistic
//! in the usual 64-bit-hash sense: equal content implies equal
//! summaries, and equal summaries imply equal content with collision
//! probability ~2⁻⁶⁴.

use std::hash::{Hash, Hasher};

/// Multiplier of the polynomial sequence hash. Odd (hence invertible
/// mod 2⁶⁴), so `h · B^n` never collapses information.
const SEQ_BASE: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a offset basis, the seed of the per-key hash.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// The combined summary of a contiguous key-ordered run of entries
/// (a leaf prefix, a whole subtree, or a concatenation of subtrees).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Summary<K> {
    /// Exact number of entries covered.
    pub count: u64,
    /// `(min, max)` key covered; `None` iff `count == 0`.
    pub keys: Option<(K, K)>,
    /// Order-sensitive polynomial hash of the covered key sequence.
    pub hash: u64,
}

impl<K> Summary<K> {
    /// The monoid identity: the summary of no entries at all.
    pub fn empty() -> Summary<K> {
        Summary {
            count: 0,
            keys: None,
            hash: 0,
        }
    }

    /// Whether this summarises zero entries.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The smallest key covered, if any — the lower fence the branch
    /// cache verifies a cached interior node against.
    pub fn min_key(&self) -> Option<&K> {
        self.keys.as_ref().map(|(lo, _)| lo)
    }

    /// The largest key covered, if any — the upper fence.
    pub fn max_key(&self) -> Option<&K> {
        self.keys.as_ref().map(|(_, hi)| hi)
    }
}

impl<K: Ord + Clone> Summary<K> {
    /// The summary of a single key.
    pub fn of_key(key: &K) -> Summary<K>
    where
        K: Hash,
    {
        Summary {
            count: 1,
            keys: Some((key.clone(), key.clone())),
            hash: key_hash(key),
        }
    }

    /// The summary of an ascending key slice (a leaf's keys).
    pub fn of_sorted_keys(keys: &[K]) -> Summary<K>
    where
        K: Hash,
    {
        let mut hash = 0u64;
        for k in keys {
            hash = hash.wrapping_mul(SEQ_BASE).wrapping_add(key_hash(k));
        }
        Summary {
            count: keys.len() as u64,
            keys: match (keys.first(), keys.last()) {
                (Some(min), Some(max)) => Some((min.clone(), max.clone())),
                _ => None,
            },
            hash,
        }
    }

    /// Combines `self` (the left, smaller-keyed run) with `right`.
    ///
    /// Associative, with [`Summary::empty`] as two-sided identity: the
    /// count adds, min/max take the extremes, and the sequence hash
    /// shifts the left run past the right one (`l·B^|r| + r`).
    #[must_use]
    pub fn combine(&self, right: &Summary<K>) -> Summary<K> {
        let keys = match (&self.keys, &right.keys) {
            (None, k) | (k, None) => k.clone(),
            (Some((lmin, lmax)), Some((rmin, rmax))) => Some((
                if rmin < lmin {
                    rmin.clone()
                } else {
                    lmin.clone()
                },
                if rmax > lmax {
                    rmax.clone()
                } else {
                    lmax.clone()
                },
            )),
        };
        Summary {
            count: self.count + right.count,
            keys,
            hash: self
                .hash
                .wrapping_mul(pow_base(right.count))
                .wrapping_add(right.hash),
        }
    }
}

/// Stable 64-bit hash of one key: FNV-1a over the key's `Hash`
/// byte stream, finalised with an avalanche mix so structurally
/// similar keys (e.g. consecutive integers) spread across the space.
pub fn key_hash<K: Hash + ?Sized>(key: &K) -> u64 {
    let mut h = Fnv64(FNV_OFFSET);
    key.hash(&mut h);
    mix(h.0)
}

/// `SEQ_BASE^exp` mod 2⁶⁴ by square-and-multiply.
fn pow_base(mut exp: u64) -> u64 {
    let mut base = SEQ_BASE;
    let mut acc = 1u64;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = acc.wrapping_mul(base);
        }
        base = base.wrapping_mul(base);
        exp >>= 1;
    }
    acc
}

/// splitmix64 finaliser.
fn mix(mut h: u64) -> u64 {
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// Deterministic FNV-1a, independent of `RandomState` so hashes are
/// stable across processes and snapshots.
struct Fnv64(u64);

impl Hasher for Fnv64 {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_two_sided_identity() {
        let s = Summary::of_sorted_keys(&[1u32, 2, 3]);
        let e = Summary::empty();
        assert_eq!(e.combine(&s), s);
        assert_eq!(s.combine(&e), s);
        assert!(e.is_empty() && !s.is_empty());
    }

    #[test]
    fn combine_is_associative() {
        let runs: Vec<Vec<u32>> = vec![vec![], vec![1], vec![2, 3], vec![4, 5, 6], vec![7]];
        let sums: Vec<Summary<u32>> = runs.iter().map(|r| Summary::of_sorted_keys(r)).collect();
        for a in &sums {
            for b in &sums {
                for c in &sums {
                    assert_eq!(a.combine(b).combine(c), a.combine(&b.combine(c)));
                }
            }
        }
    }

    #[test]
    fn concatenation_matches_of_sorted_keys() {
        let all: Vec<u32> = (0..100).collect();
        for split in [0usize, 1, 37, 99, 100] {
            let l = Summary::of_sorted_keys(&all[..split]);
            let r = Summary::of_sorted_keys(&all[split..]);
            assert_eq!(
                l.combine(&r),
                Summary::of_sorted_keys(&all),
                "split {split}"
            );
        }
    }

    #[test]
    fn order_sensitivity_and_key_sensitivity() {
        let ab = Summary::of_key(&1u32).combine(&Summary::of_key(&2u32));
        let ba = Summary::of_key(&2u32).combine(&Summary::of_key(&1u32));
        assert_ne!(ab.hash, ba.hash, "sequence hash must be order-sensitive");
        assert_ne!(key_hash(&1u32), key_hash(&2u32));
        assert_eq!(key_hash(&1u32), key_hash(&1u32), "stable across calls");
    }

    #[test]
    fn min_max_track_extremes() {
        let s = Summary::of_sorted_keys(&[5u32, 9]).combine(&Summary::of_sorted_keys(&[12, 40]));
        assert_eq!(s.keys, Some((5, 40)));
        assert_eq!(s.count, 4);
    }
}
