//! In-order range scans over the linked leaves.

use std::ops::{Bound, RangeBounds};

use crate::cache::hinted_partition_point;
use crate::node::{Node, NIL};
use crate::tree::BPlusTree;

/// Iterator over the entries of a [`BPlusTree`] whose keys fall within
/// a range. Produced by [`BPlusTree::range`] and [`BPlusTree::iter`].
///
/// Positions once via a root-to-leaf descent, then walks the leaf
/// chain — `O(log n + k)` for `k` results, which is the access pattern
/// the paper's range-lookup index is built for.
pub struct Range<'a, K, V> {
    tree: &'a BPlusTree<K, V>,
    leaf: u32,
    idx: usize,
    end: Bound<K>,
}

impl<'a, K: Ord + Clone + std::hash::Hash, V: Clone> Range<'a, K, V> {
    pub(crate) fn new<R: RangeBounds<K>>(tree: &'a BPlusTree<K, V>, bounds: R) -> Self {
        Self::with_mode(tree, bounds, false)
    }

    /// Cold-positioned variant backing [`BPlusTree::range_cold`].
    pub(crate) fn new_cold<R: RangeBounds<K>>(tree: &'a BPlusTree<K, V>, bounds: R) -> Self {
        Self::with_mode(tree, bounds, true)
    }

    fn with_mode<R: RangeBounds<K>>(tree: &'a BPlusTree<K, V>, bounds: R, cold: bool) -> Self {
        let (leaf, idx) = match bounds.start_bound() {
            Bound::Unbounded => (tree.first_leaf, 0),
            Bound::Included(s) => tree.position_at_or_after(s, false, cold),
            Bound::Excluded(s) => tree.position_at_or_after(s, true, cold),
        };
        Range {
            tree,
            leaf,
            idx,
            end: bounds.end_bound().cloned(),
        }
    }

    fn within_end(&self, key: &K) -> bool {
        match &self.end {
            Bound::Unbounded => true,
            Bound::Included(e) => key <= e,
            Bound::Excluded(e) => key < e,
        }
    }
}

impl<'a, K: Ord + Clone + std::hash::Hash, V: Clone> Iterator for Range<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.leaf == NIL {
                return None;
            }
            match self.tree.node(self.leaf) {
                Node::Leaf {
                    keys, values, next, ..
                } => {
                    if self.idx < keys.len() {
                        let k = &keys[self.idx];
                        if !self.within_end(k) {
                            self.leaf = NIL;
                            return None;
                        }
                        let v = &values[self.idx];
                        self.idx += 1;
                        return Some((k, v));
                    }
                    // Exhausted this leaf; move along the chain. An
                    // empty root leaf terminates via `next == NIL`.
                    self.leaf = *next;
                    self.idx = 0;
                }
                _ => unreachable!("leaf chain reached a non-leaf"),
            }
        }
    }
}

impl<K: Ord + Clone + std::hash::Hash, V: Clone> BPlusTree<K, V> {
    /// Finds the position of the first entry `>= key` (or `> key` when
    /// `exclusive`), as a `(leaf, index)` pair; the index may be one
    /// past the end of the leaf, which the iterator normalises.
    pub(crate) fn position_at_or_after(
        &self,
        key: &K,
        exclusive: bool,
        cold: bool,
    ) -> (u32, usize) {
        let leaf = if cold {
            self.find_leaf_cold(key)
        } else {
            self.find_leaf(key)
        };
        match self.node(leaf) {
            Node::Leaf { keys, .. } => {
                let idx = match (cold, exclusive) {
                    (true, true) => keys.partition_point(|k| k <= key),
                    (true, false) => keys.partition_point(|k| k < key),
                    (false, true) => hinted_partition_point(keys, |k| k <= key),
                    (false, false) => hinted_partition_point(keys, |k| k < key),
                };
                (leaf, idx)
            }
            _ => unreachable!(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_on_empty_tree() {
        let t: BPlusTree<u32, ()> = BPlusTree::new();
        assert_eq!(t.range(..).count(), 0);
        assert_eq!(t.range(5..100).count(), 0);
    }

    #[test]
    fn start_bound_beyond_last_key() {
        let mut t = BPlusTree::with_order(4);
        for i in 0..20u32 {
            t.insert(i, ());
        }
        assert_eq!(t.range(25..).count(), 0);
        assert_eq!(t.range(19..).count(), 1);
    }

    #[test]
    fn excluded_start_at_leaf_boundary() {
        let mut t = BPlusTree::with_order(3);
        for i in 0..30u32 {
            t.insert(i, ());
        }
        use std::ops::Bound;
        for s in 0..30u32 {
            let got: Vec<u32> = t
                .range((Bound::Excluded(s), Bound::Unbounded))
                .map(|(k, _)| *k)
                .collect();
            let want: Vec<u32> = (s + 1..30).collect();
            assert_eq!(got, want, "excluded start {s}");
        }
    }

    #[test]
    fn iterator_crosses_many_leaves() {
        let mut t = BPlusTree::with_order(3);
        for i in 0..200u32 {
            t.insert(i, i);
        }
        let all: Vec<u32> = t.iter().map(|(k, _)| *k).collect();
        assert_eq!(all, (0..200).collect::<Vec<_>>());
    }
}
