//! Copy-on-write paged storage — the structural-sharing substrate.
//!
//! A [`PagedVec`] looks like a `Vec<T>` but stores its slots in
//! fixed-size pages, each held behind an [`Arc`]. That turns `Clone`
//! into one reference-count bump per page — O(pages), no slot is
//! copied — and makes mutation *copy-on-write*: the first write into a
//! page that is shared with another `PagedVec` clone detaches a
//! private copy of just that page ([`Arc::make_mut`]), leaving every
//! untouched page shared.
//!
//! This is what makes snapshot-style cloning of the B+tree (and of the
//! layers built on top of it — the document arena, the per-node
//! annotation columns) proportional to the **touched set** instead of
//! the structure size: cloning a tree with a million entries bumps a
//! few ten-thousand page counters, and a subsequent point insert
//! copies only the handful of pages on the root-to-leaf path.
//!
//! Detached pages are **bit-identical copies** of the shared page, so
//! any derived data stored inside the slots — in particular the
//! per-child monoid summaries of B+tree interior nodes — remains valid
//! across a detach; only the mutation that triggered the detach has to
//! repair the summaries along its own descent path.
//!
//! ```
//! use xvi_btree::PagedVec;
//!
//! let mut v: PagedVec<u64> = PagedVec::new();
//! for i in 0..1000 {
//!     v.push(i);
//! }
//! let snapshot = v.clone();          // O(pages) pointer bumps
//! assert_eq!(v.shared_pages(), v.page_count());
//! v[3] = 999;                        // copies exactly one page
//! assert_eq!(snapshot[3], 3);        // the snapshot is unaffected
//! assert_eq!(v.shared_pages(), v.page_count() - 1);
//! ```

use std::ops::{Index, IndexMut};
use std::sync::Arc;

/// Number of slots per page.
///
/// Small enough that a copy-on-write page detach stays cheap (one page
/// of slots is cloned), large enough that cloning a big structure is a
/// short run of reference-count bumps.
pub const PAGE_SIZE: usize = 32;

/// One fixed-capacity page of slots. All pages except the last hold
/// exactly [`PAGE_SIZE`] slots; the last holds `1..=PAGE_SIZE`.
#[derive(Debug, Clone)]
struct Page<T> {
    slots: Vec<T>,
}

/// A `Vec<T>`-like container with page-level structural sharing:
/// `Clone` is one reference-count bump per page, and the first write
/// into a page shared with another clone detaches a private copy of
/// just that page ([`Arc::make_mut`]). Cloning is O(pages); mutation
/// after a clone costs O(touched pages).
#[derive(Debug)]
pub struct PagedVec<T> {
    pages: Vec<Arc<Page<T>>>,
    len: usize,
    /// Cumulative count of copy-on-write page detaches performed
    /// through this instance's mutation lineage (clones inherit the
    /// current count, so `after - before` across a clone-then-mutate
    /// publish is the pages that publish copied). Plain `u64`: every
    /// detach site holds `&mut self`.
    detached: u64,
}

impl<T> Clone for PagedVec<T> {
    /// O(pages) reference-count bumps; no slot is copied.
    fn clone(&self) -> Self {
        PagedVec {
            pages: self.pages.clone(),
            len: self.len,
            detached: self.detached,
        }
    }
}

impl<T> Default for PagedVec<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> PagedVec<T> {
    /// Creates an empty container.
    pub fn new() -> PagedVec<T> {
        PagedVec {
            pages: Vec::new(),
            len: 0,
            detached: 0,
        }
    }

    /// Cumulative count of copy-on-write page detaches performed over
    /// this instance's lifetime (inherited by clones). The difference
    /// across a clone-then-mutate cycle is exactly the number of pages
    /// that cycle copied — the "COW pages detached per publish" metric
    /// up the stack.
    pub fn pages_detached(&self) -> u64 {
        self.detached
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no slot is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of pages backing the slots.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Number of pages currently shared with at least one other clone
    /// — the window into structural sharing the COW tests and stats
    /// build on.
    pub fn shared_pages(&self) -> usize {
        self.pages
            .iter()
            .filter(|p| Arc::strong_count(p) > 1)
            .count()
    }

    /// Shared read access to slot `i`, or `None` when out of bounds.
    pub fn get(&self, i: usize) -> Option<&T> {
        if i >= self.len {
            return None;
        }
        Some(&self.pages[i / PAGE_SIZE].slots[i % PAGE_SIZE])
    }

    /// Iterates every slot in index order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.pages.iter().flat_map(|p| p.slots.iter())
    }
}

impl<T: Clone> PagedVec<T> {
    /// Bumps the detach counter when the next write to page `p` will
    /// copy it. Called immediately before each [`Arc::make_mut`].
    fn note_detach(&mut self, p: usize) {
        if Arc::strong_count(&self.pages[p]) > 1 {
            self.detached += 1;
        }
    }

    /// Appends a slot, detaching the last page first if it is shared.
    pub fn push(&mut self, value: T) {
        if self.len.is_multiple_of(PAGE_SIZE) {
            let mut slots = Vec::with_capacity(PAGE_SIZE);
            slots.push(value);
            self.pages.push(Arc::new(Page { slots }));
        } else {
            self.note_detach(self.pages.len() - 1);
            let page = self.pages.last_mut().expect("partial page exists");
            Arc::make_mut(page).slots.push(value);
        }
        self.len += 1;
    }

    /// Exclusive access to slot `i`, detaching a private copy of its
    /// page first if the page is shared (the copy-on-write step).
    pub fn get_mut(&mut self, i: usize) -> Option<&mut T> {
        if i >= self.len {
            return None;
        }
        self.note_detach(i / PAGE_SIZE);
        Some(&mut Arc::make_mut(&mut self.pages[i / PAGE_SIZE]).slots[i % PAGE_SIZE])
    }

    /// Exclusive access to two *distinct* slots at once (the B+tree's
    /// sibling-rebalance primitive). Detaches each involved page.
    ///
    /// # Panics
    /// Panics if `a == b` or either index is out of bounds.
    pub fn pair_mut(&mut self, a: usize, b: usize) -> (&mut T, &mut T) {
        assert_ne!(a, b, "pair_mut requires distinct slots");
        assert!(a < self.len && b < self.len, "pair_mut out of bounds");
        let (pa, sa) = (a / PAGE_SIZE, a % PAGE_SIZE);
        let (pb, sb) = (b / PAGE_SIZE, b % PAGE_SIZE);
        self.note_detach(pa);
        if pa != pb {
            self.note_detach(pb);
        }
        if pa == pb {
            let page = Arc::make_mut(&mut self.pages[pa]);
            if sa < sb {
                let (lo, hi) = page.slots.split_at_mut(sb);
                (&mut lo[sa], &mut hi[0])
            } else {
                let (lo, hi) = page.slots.split_at_mut(sa);
                (&mut hi[0], &mut lo[sb])
            }
        } else if pa < pb {
            let (lo, hi) = self.pages.split_at_mut(pb);
            (
                &mut Arc::make_mut(&mut lo[pa]).slots[sa],
                &mut Arc::make_mut(&mut hi[0]).slots[sb],
            )
        } else {
            let (lo, hi) = self.pages.split_at_mut(pa);
            (
                &mut Arc::make_mut(&mut hi[0]).slots[sa],
                &mut Arc::make_mut(&mut lo[pb]).slots[sb],
            )
        }
    }

    /// Grows or shrinks to `new_len` slots, filling new slots with
    /// clones of `value`. Shrinking drops whole doomed pages without
    /// detaching them — only the surviving boundary page is copied if
    /// it is shared.
    pub fn resize(&mut self, new_len: usize, value: T) {
        if new_len < self.len {
            self.pages.truncate(new_len.div_ceil(PAGE_SIZE));
            self.len = new_len;
            let tail = new_len % PAGE_SIZE;
            if tail != 0 {
                // The kept boundary page may hold slots past new_len.
                self.note_detach(self.pages.len() - 1);
                let last = self.pages.last_mut().expect("tail implies a page");
                Arc::make_mut(last).slots.truncate(tail);
            }
        }
        while self.len < new_len {
            self.push(value.clone());
        }
    }

    /// Detaches a private copy of every shared page, ending all
    /// structural sharing with other clones. After this call the
    /// container owns its slots outright — the "deep clone" the COW
    /// benches use as the no-sharing baseline, and what snapshots call
    /// to stop pinning pages of a live structure.
    pub fn unshare(&mut self) {
        for p in 0..self.pages.len() {
            self.note_detach(p);
            Arc::make_mut(&mut self.pages[p]);
        }
    }

    /// A clone with every page detached immediately instead of lazily
    /// on first write — the building block of the `deep_clone` escape
    /// hatches up the stack (tree, document, index columns).
    pub fn deep_clone(&self) -> Self {
        let mut c = self.clone();
        c.unshare();
        c
    }
}

/// A copy-on-write column: a `Vec<T>` behind an [`Arc`], so cloning
/// is one reference-count bump and the first mutation while shared
/// detaches a private copy of just this column.
///
/// This is the second, finer level of structural sharing under the
/// B+tree: nodes live in [`PagedVec`] pages (page-level COW), and a
/// wide leaf's `keys` and `values` each live in their own `ColVec`
/// (column-level COW). When a page detach clones a leaf, both columns
/// are borrowed by reference-count bump instead of deep-copied, and a
/// mutation that touches only one side — e.g. a value overwrite
/// through `get_mut` — detaches only that column, leaving the sibling
/// column shared with every snapshot.
#[derive(Debug, Clone)]
pub struct ColVec<T>(Arc<Vec<T>>);

impl<T> Default for ColVec<T> {
    fn default() -> Self {
        ColVec(Arc::new(Vec::new()))
    }
}

impl<T> From<Vec<T>> for ColVec<T> {
    fn from(v: Vec<T>) -> Self {
        ColVec(Arc::new(v))
    }
}

impl<T> ColVec<T> {
    /// An empty column.
    pub fn new() -> ColVec<T> {
        Self::default()
    }

    /// Whether this column's backing vector is shared with another
    /// `ColVec` clone (a leaf borrowed by a snapshot).
    pub fn is_shared(&self) -> bool {
        Arc::strong_count(&self.0) > 1
    }
}

impl<T: Clone> ColVec<T> {
    /// Exclusive access to the backing vector, detaching a private
    /// copy first if the column is shared (the copy-on-write step).
    /// Every mutation path goes through here.
    pub fn make_mut(&mut self) -> &mut Vec<T> {
        Arc::make_mut(&mut self.0)
    }

    /// Forces the column private even without a pending write — the
    /// deep-clone escape hatch uses this so "shares nothing" stays
    /// true at the column level, not just the page level.
    pub fn unshare(&mut self) {
        Arc::make_mut(&mut self.0);
    }
}

impl<T> std::ops::Deref for ColVec<T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        &self.0
    }
}

impl<T> Index<usize> for PagedVec<T> {
    type Output = T;

    fn index(&self, i: usize) -> &T {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        &self.pages[i / PAGE_SIZE].slots[i % PAGE_SIZE]
    }
}

impl<T: Clone> IndexMut<usize> for PagedVec<T> {
    fn index_mut(&mut self, i: usize) -> &mut T {
        self.get_mut(i)
            .unwrap_or_else(|| panic!("index out of bounds"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(n: usize) -> PagedVec<usize> {
        let mut v = PagedVec::new();
        for i in 0..n {
            v.push(i);
        }
        v
    }

    #[test]
    fn push_and_index() {
        let v = filled(100);
        assert_eq!(v.len(), 100);
        assert!(!v.is_empty());
        assert_eq!(v.page_count(), 100_usize.div_ceil(PAGE_SIZE));
        for i in 0..100 {
            assert_eq!(v[i], i);
        }
        assert_eq!(v.get(100), None);
        let collected: Vec<usize> = v.iter().copied().collect();
        assert_eq!(collected, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clone_shares_and_write_detaches_one_page() {
        let mut v = filled(10 * PAGE_SIZE);
        assert_eq!(v.shared_pages(), 0);
        let snap = v.clone();
        assert_eq!(v.shared_pages(), v.page_count());
        assert_eq!(snap.shared_pages(), snap.page_count());
        v[0] = 777;
        assert_eq!(v.shared_pages(), v.page_count() - 1);
        assert_eq!(snap[0], 0, "snapshot unaffected by the write");
        assert_eq!(v[0], 777);
        drop(snap);
        assert_eq!(v.shared_pages(), 0);
    }

    #[test]
    fn push_after_clone_detaches_partial_page() {
        let mut v = filled(PAGE_SIZE + 3);
        let snap = v.clone();
        v.push(999);
        assert_eq!(snap.len(), PAGE_SIZE + 3);
        assert_eq!(v.len(), PAGE_SIZE + 4);
        assert_eq!(v[PAGE_SIZE + 3], 999);
        assert_eq!(snap.get(PAGE_SIZE + 3), None);
    }

    #[test]
    fn pair_mut_same_and_distinct_pages() {
        let mut v = filled(3 * PAGE_SIZE);
        let snap = v.clone();
        // Same page, both orders.
        let (a, b) = v.pair_mut(1, 2);
        std::mem::swap(a, b);
        let (a, b) = v.pair_mut(2, 1);
        std::mem::swap(a, b);
        // Distinct pages, both orders.
        let (a, b) = v.pair_mut(0, 2 * PAGE_SIZE);
        std::mem::swap(a, b);
        let (a, b) = v.pair_mut(2 * PAGE_SIZE, 0);
        std::mem::swap(a, b);
        // All swaps cancelled out; only page sharing changed.
        assert_eq!(
            v.iter().copied().collect::<Vec<_>>(),
            snap.iter().copied().collect::<Vec<_>>()
        );
        assert_eq!(v.shared_pages(), v.page_count() - 2);
    }

    #[test]
    #[should_panic(expected = "distinct slots")]
    fn pair_mut_rejects_aliasing() {
        let mut v = filled(10);
        let _ = v.pair_mut(3, 3);
    }

    #[test]
    fn resize_grows_and_shrinks() {
        let mut v = filled(5);
        v.resize(2 * PAGE_SIZE + 1, 42);
        assert_eq!(v.len(), 2 * PAGE_SIZE + 1);
        assert_eq!(v[5], 42);
        assert_eq!(v[2 * PAGE_SIZE], 42);
        v.resize(3, 0);
        assert_eq!(v.len(), 3);
        assert_eq!(v.page_count(), 1);
        assert_eq!(v.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2]);
        v.resize(0, 0);
        assert!(v.is_empty());
        assert_eq!(v.page_count(), 0);
    }

    #[test]
    fn shrinking_a_shared_container_leaves_the_snapshot_intact() {
        let mut v = filled(4 * PAGE_SIZE);
        let snap = v.clone();
        // Shrink across a page boundary into the middle of a page:
        // doomed pages are dropped without detaching, only the
        // boundary page is copied.
        v.resize(PAGE_SIZE + 7, 0);
        assert_eq!(v.len(), PAGE_SIZE + 7);
        assert_eq!(v.page_count(), 2);
        assert_eq!(v.shared_pages(), 1, "only the full first page stays shared");
        assert_eq!(snap.len(), 4 * PAGE_SIZE);
        assert_eq!(
            snap.iter().copied().collect::<Vec<_>>(),
            (0..4 * PAGE_SIZE).collect::<Vec<_>>()
        );
        // Shrink to an exact page boundary: no copy at all.
        let mut w = snap.clone();
        w.resize(PAGE_SIZE, 0);
        assert_eq!(w.page_count(), 1);
        assert_eq!(w.shared_pages(), 1);
    }

    #[test]
    fn colvec_shares_until_written() {
        let mut a: ColVec<u32> = vec![1, 2, 3].into();
        let b = a.clone();
        assert!(a.is_shared() && b.is_shared());
        a.make_mut()[0] = 99;
        assert!(!a.is_shared() && !b.is_shared());
        assert_eq!(&a[..], &[99, 2, 3]);
        assert_eq!(&b[..], &[1, 2, 3], "snapshot column unaffected");
        let mut c = b.clone();
        c.unshare();
        assert!(!c.is_shared() && !b.is_shared());
        assert_eq!(&c[..], &b[..]);
    }

    #[test]
    fn detach_counter_tracks_cow_copies_only() {
        let mut v = filled(4 * PAGE_SIZE);
        assert_eq!(
            v.pages_detached(),
            0,
            "building fresh pages is not a detach"
        );
        v[0] = 1;
        assert_eq!(v.pages_detached(), 0, "unshared writes are free");
        let snap = v.clone();
        assert_eq!(snap.pages_detached(), 0, "clones inherit the count");
        let before = v.pages_detached();
        v[0] = 2;
        v[1] = 3; // same page, already private
        v[PAGE_SIZE] = 4;
        assert_eq!(v.pages_detached() - before, 2, "one detach per shared page");
        assert_eq!(snap.pages_detached(), 0, "the snapshot side never detached");
        let mut w = snap.clone();
        w.unshare();
        assert_eq!(w.pages_detached(), w.page_count() as u64);
    }

    #[test]
    fn unshare_detaches_everything() {
        let mut v = filled(4 * PAGE_SIZE);
        let snap = v.clone();
        v.unshare();
        assert_eq!(v.shared_pages(), 0);
        assert_eq!(snap.shared_pages(), 0);
        assert_eq!(
            v.iter().copied().collect::<Vec<_>>(),
            snap.iter().copied().collect::<Vec<_>>()
        );
    }
}
