//! # xvi-btree — the B+tree substrate
//!
//! The paper builds a "(B-tree) index … on the hash values" for the
//! string equi-index and "a clustered (b-tree) index … on top of the
//! typed values" for the range index (§3, §4). This crate provides that
//! substrate: an in-memory, arena-allocated B+tree with
//!
//! * ordered unique keys with replace-on-insert semantics,
//! * `O(log n)` point lookups, inserts and deletes with node
//!   split/borrow/merge rebalancing,
//! * linked leaves for cheap in-order [`BPlusTree::range`] scans — the
//!   operation the range index exists for,
//! * occupancy/size statistics used by the Figure 9 storage accounting,
//! * page-level **copy-on-write structural sharing** ([`PagedVec`]):
//!   cloning a tree is O(pages) pointer bumps and mutating the clone
//!   copies only the touched pages — the substrate that makes the
//!   index service's snapshot publishes proportional to the touched
//!   set instead of the document size,
//! * **monoid summaries in interior nodes** ([`Summary`]): every
//!   interior node stores, per child, the exact entry count, min/max
//!   key and order-sensitive key-sequence hash of that child's
//!   subtree, maintained through every mutation path. This buys exact
//!   [`BPlusTree::count_range`] cardinalities in O(log n) node visits,
//!   an O(fan-out) [`BPlusTree::subtree_hash`] for structural
//!   comparison, and O(log n + Δ) snapshot diffs
//!   ([`BPlusTree::diff_keys`]). Keys must therefore implement
//!   [`std::hash::Hash`].
//!
//! Duplicate logical keys (e.g. many nodes sharing one hash value) are
//! handled the way databases usually do it: with composite keys such as
//! `(hash, node_id)` and prefix range scans; see `xvi-index`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bulk;
mod cache;
mod iter;
mod node;
mod page;
mod summary;
mod tree;

pub use iter::Range;
pub use page::{ColVec, PagedVec, PAGE_SIZE};
pub use summary::{key_hash, Summary};
pub use tree::{BPlusTree, TreeStats, DEFAULT_ORDER};
