//! Bulk loading: building a B+tree from sorted input in one pass.
//!
//! Index creation (paper Figure 7) produces all entries before the
//! tree is ever queried, so instead of `n` random root-to-leaf inserts
//! the creation path sorts its entries and packs leaves sequentially —
//! the standard bulk-load of database practice. Leaves are filled to
//! capacity; the final node of every level is rebalanced against its
//! left neighbour so the ordinary occupancy invariants hold and later
//! point updates behave identically to an insert-built tree.

use crate::node::{Node, NIL};
use crate::summary::Summary;
use crate::tree::BPlusTree;

impl<K: Ord + Clone + std::hash::Hash, V: Clone> BPlusTree<K, V> {
    /// Builds a tree from strictly increasing `(key, value)` pairs
    /// using [`crate::DEFAULT_ORDER`].
    ///
    /// # Panics
    /// Panics if keys are not strictly increasing.
    pub fn from_sorted_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        Self::from_sorted_iter_with_order(crate::DEFAULT_ORDER, iter)
    }

    /// Builds a tree of the given order from strictly increasing
    /// `(key, value)` pairs.
    ///
    /// # Panics
    /// Panics if `order < 3` or keys are not strictly increasing.
    pub fn from_sorted_iter_with_order<I: IntoIterator<Item = (K, V)>>(
        order: usize,
        iter: I,
    ) -> Self {
        let mut tree = BPlusTree::with_order(order);
        let min = order / 2;

        // ---- leaf level -----------------------------------------------------
        // Pack full leaves; remember each leaf's first key for the
        // separator computation above.
        let mut leaves: Vec<u32> = Vec::new();
        let mut first_keys: Vec<K> = Vec::new();
        let mut keys: Vec<K> = Vec::with_capacity(order);
        let mut values: Vec<V> = Vec::with_capacity(order);
        let mut count = 0usize;

        let flush = |tree: &mut BPlusTree<K, V>,
                     keys: &mut Vec<K>,
                     values: &mut Vec<V>,
                     leaves: &mut Vec<u32>,
                     first_keys: &mut Vec<K>| {
            if keys.is_empty() {
                return;
            }
            first_keys.push(keys[0].clone());
            let prev = leaves.last().copied().unwrap_or(NIL);
            let id = tree.alloc_node(Node::Leaf {
                keys: std::mem::take(keys).into(),
                values: std::mem::take(values).into(),
                next: NIL,
                prev,
            });
            if prev != NIL {
                tree.set_leaf_next(prev, id);
            }
            leaves.push(id);
        };

        let mut last_key: Option<K> = None;
        for (k, v) in iter {
            if let Some(prev) = &last_key {
                assert!(prev < &k, "bulk load requires strictly increasing keys");
            }
            last_key = Some(k.clone());
            keys.push(k);
            values.push(v);
            count += 1;
            if keys.len() == order {
                flush(
                    &mut tree,
                    &mut keys,
                    &mut values,
                    &mut leaves,
                    &mut first_keys,
                );
            }
        }
        flush(
            &mut tree,
            &mut keys,
            &mut values,
            &mut leaves,
            &mut first_keys,
        );

        if leaves.is_empty() {
            return tree; // stays the empty single-leaf tree
        }

        // Rebalance the last leaf if it is underfull (and not alone).
        if leaves.len() > 1 {
            let last = *leaves.last().expect("non-empty");
            let prev = leaves[leaves.len() - 2];
            let deficit = min.saturating_sub(tree.node(last).key_count());
            if deficit > 0 {
                tree.shift_tail_to_right_leaf(prev, last, deficit);
                let i = leaves.len() - 1;
                first_keys[i] = tree.first_key_of_leaf(last);
            }
        }

        // ---- internal levels -------------------------------------------------
        // `level` holds (node id, first key of its subtree).
        let mut level: Vec<(u32, K)> = leaves.into_iter().zip(first_keys).collect();
        let max_children = order + 1;
        let min_children = min + 1;
        while level.len() > 1 {
            let mut next: Vec<(u32, K)> = Vec::new();
            let mut i = 0;
            while i < level.len() {
                let remaining = level.len() - i;
                // Take a full group, but leave enough for the final
                // group to reach minimum occupancy.
                let take = if remaining <= max_children {
                    remaining
                } else if remaining - max_children < min_children {
                    remaining - min_children
                } else {
                    max_children
                };
                let group = &level[i..i + take];
                let children: Vec<u32> = group.iter().map(|(id, _)| *id).collect();
                let keys: Vec<K> = group[1..].iter().map(|(_, k)| k.clone()).collect();
                // Children were built bottom-up and are final, so their
                // summaries can be folded up right here.
                let summaries: Vec<Summary<K>> =
                    children.iter().map(|&c| tree.node_summary(c)).collect();
                let first = group[0].1.clone();
                let id = tree.alloc_node(Node::Internal {
                    keys,
                    children,
                    summaries,
                });
                next.push((id, first));
                i += take;
            }
            level = next;
        }

        let (root, _) = level.pop().expect("at least one node");
        tree.replace_root(root, count);
        tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(n: usize, order: usize) {
        let t: BPlusTree<u32, u32> =
            BPlusTree::from_sorted_iter_with_order(order, (0..n as u32).map(|i| (i, i * 2)));
        t.check_invariants()
            .unwrap_or_else(|e| panic!("n={n}, order={order}: {e}"));
        assert_eq!(t.len(), n);
        let all: Vec<u32> = t.iter().map(|(k, _)| *k).collect();
        assert_eq!(all, (0..n as u32).collect::<Vec<_>>());
        for probe in [0usize, n / 3, n.saturating_sub(1)] {
            if n > 0 {
                assert_eq!(t.get(&(probe as u32)), Some(&(probe as u32 * 2)));
            }
        }
    }

    #[test]
    fn bulk_load_all_sizes_and_orders() {
        for order in [3, 4, 5, 8, 32] {
            for n in [0usize, 1, 2, 3, 7, 31, 32, 33, 63, 64, 65, 1000, 4097] {
                check(n, order);
            }
        }
    }

    #[test]
    fn bulk_loaded_tree_supports_all_mutations() {
        let mut t: BPlusTree<u32, ()> =
            BPlusTree::from_sorted_iter_with_order(4, (0..500u32).map(|i| (i * 2, ())));
        // Point inserts between bulk keys, removals of bulk keys.
        for i in 0..500u32 {
            t.insert(i * 2 + 1, ());
            t.check_invariants().unwrap();
        }
        for i in 0..500u32 {
            assert_eq!(t.remove(&(i * 2)), Some(()));
            t.check_invariants().unwrap();
        }
        assert_eq!(t.len(), 500);
    }

    #[test]
    fn bulk_load_matches_insert_built_tree() {
        let keys: Vec<u32> = (0..2000).map(|i| i * 3).collect();
        let bulk: BPlusTree<u32, u32> = BPlusTree::from_sorted_iter(keys.iter().map(|&k| (k, k)));
        let mut incr: BPlusTree<u32, u32> = BPlusTree::new();
        for &k in &keys {
            incr.insert(k, k);
        }
        let a: Vec<(u32, u32)> = bulk.iter().map(|(k, v)| (*k, *v)).collect();
        let b: Vec<(u32, u32)> = incr.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(a, b);
        // Range scans agree too.
        let ra: Vec<u32> = bulk.range(100..200).map(|(k, _)| *k).collect();
        let rb: Vec<u32> = incr.range(100..200).map(|(k, _)| *k).collect();
        assert_eq!(ra, rb);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_input() {
        let _: BPlusTree<u32, ()> = BPlusTree::from_sorted_iter([(2, ()), (1, ())]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_duplicate_keys() {
        let _: BPlusTree<u32, ()> = BPlusTree::from_sorted_iter([(1, ()), (1, ())]);
    }
}
