//! Descent fast paths: the branch cache and intra-node search hints.
//!
//! # Branch cache
//!
//! Every index probe bottoms out in a root-to-leaf descent. The probe
//! streams the system actually serves are heavily *local* — sorted
//! scans advance through one leaf at a time, zipf-skewed point probes
//! hammer a handful of hot leaves — so consecutive descents usually
//! end where the previous one did. [`BranchCache`] remembers the
//! previous descent's node path (leaf at slot 0, root at the top) and
//! lets the next probe start from the deepest remembered node whose
//! key fence still covers the probe key, instead of walking from the
//! root every time.
//!
//! ## Verification, not trust
//!
//! A cached slot is never followed blindly. A probe walks the
//! remembered path **top-down** and, for each node, re-checks that the
//! probe key lies inside the node's covered key interval:
//!
//! * for a leaf, `keys.first() <= key <= keys.last()`;
//! * for an interior node, the `[min, max]` fence of its stored
//!   per-child monoid summaries (first child's min, last child's max).
//!
//! Both checks are *sound* without consulting the node's ancestors:
//! separator routing partitions the key space into per-subtree
//! intervals, a subtree's `[min, max]` is contained in its interval,
//! and the intervals of distinct same-level subtrees are disjoint — so
//! any live node whose fence covers the key is exactly the node a
//! cold root walk would pass through. The first non-covering (or
//! freed, or out-of-range) slot stops the walk, and the descent
//! resumes from the deepest covering node. A probe outside every
//! remembered fence falls back to a full root walk; correctness never
//! depends on the cache being right, only on the fence check.
//!
//! ## Invalidation
//!
//! The cache is keyed on a per-tree **epoch**: every structural
//! mutation (insert, delete, bulk install, `shrink_to_fit`, clear)
//! bumps the tree's epoch, and a cached path recorded under an older
//! epoch is ignored wholesale. Mutations require `&mut` access, so no
//! probe can race a mutation on the same tree instance; COW clones
//! start with an empty cache of their own and the source tree's epoch,
//! so a snapshot pinned before the source mutates keeps (re)building
//! its own valid cache while the source invalidates only itself.
//! Page detaches copy nodes bit-identically and never move arena ids,
//! so a detach alone cannot stale a path — the mutation that triggered
//! it bumps the epoch anyway.
//!
//! The cache state itself is a fixed array of relaxed atomics so
//! `&self` probes from many reader threads can share one warm path.
//! Concurrent recorders may interleave slot writes, which is harmless:
//! every slot is verified against live node content before use, so a
//! torn mix of two valid same-epoch paths degrades hit rate, never
//! correctness.
//!
//! # Intra-node search hints
//!
//! Within a node, [`hinted_partition_point`] replaces the plain binary
//! search: every [`HINT_STRIDE`]-th key is a *hint sample* — the
//! sorted key column is its own sampled hint directory, so there is
//! nothing extra to maintain or invalidate. A binary search over the
//! few samples picks the stride bucket holding the boundary, and a
//! short forward scan finishes inside the bucket. For the small
//! fixed-size keys the indices store, a stride bucket is one cache
//! line: the tail of binary search's coin-flip probes becomes a
//! predictable in-line run, without touching more lines of a cold
//! column than the probes already did.
//!
//! # Inline descent paths
//!
//! [`InlinePath`] is a fixed-size path array bounded by
//! [`MAX_DEPTH`]; descents assert the bound instead of allocating a
//! `Vec` per walk. The branch cache, the cold-walk recorder, and the
//! snapshot-diff cursor all use it.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering::Relaxed};

/// Upper bound on tree depth for the inline path arrays.
///
/// The worst legal shape is order 3 (minimum occupancy 1, so every
/// interior node has at least 2 children): with `u32` arena ids the
/// tree holds fewer than 2³² leaves, bounding the depth by 33. Every
/// descent asserts this bound when it records its path.
pub(crate) const MAX_DEPTH: usize = 40;

/// Stride of the implicit hint column: the hint pass probes every
/// `HINT_STRIDE`-th key before the final linear scan. 8 keeps both
/// passes at most `order / 8 + 7` predictable comparisons for the
/// default order of 32.
const HINT_STRIDE: usize = 8;

/// Confidence ceiling for the probe bypass: any ladder hit restores
/// the counter to this value, each full-walk miss decrements it, and
/// at zero the cache stops probing. 8 consecutive misses are needed to
/// disable probing, which skewed streams (ladder hit rates above ~50%)
/// essentially never produce, while uniform streams produce them
/// immediately.
const CONF_MAX: u32 = 8;

/// While probing is disabled, every `RETRY_PERIOD`-th probe tries the
/// cached leaf anyway (and re-records its walk) so the cache can
/// detect that a stream turned local again. Deliberately coprime
/// with the tree order: at a period that divides the leaf capacity, a
/// sequential sweep advances exactly a whole number of leaves between
/// retries, every retry checks a just-abandoned leaf, and the bypass
/// never re-arms.
const RETRY_PERIOD: u32 = 31;

/// `partition_point` with a sampled-hint pre-pass.
///
/// `pred` must be monotone over `keys` (true prefix, false suffix),
/// exactly as for `slice::partition_point`; returns the index of the
/// first `false`. The sorted key column doubles as its own hint
/// directory: every [`HINT_STRIDE`]-th key is a sample, a binary
/// search over the few samples picks the stride bucket holding the
/// boundary, and a short forward scan finishes inside the bucket.
/// Versus a full binary search this trades the last three
/// hard-to-predict probe branches for a predictable in-bucket run,
/// and — with the stride matched to a cache line of small keys —
/// never touches more lines of a cold column than the probes already
/// did.
#[inline]
pub(crate) fn hinted_partition_point<K>(keys: &[K], mut pred: impl FnMut(&K) -> bool) -> usize {
    let n = keys.len();
    // Binary search over the implicit sample directory: counts the
    // samples for which `pred` holds.
    let m = n / HINT_STRIDE;
    let mut lo_s = 0usize;
    let mut hi_s = m;
    while lo_s < hi_s {
        let mid = lo_s + (hi_s - lo_s) / 2;
        if pred(&keys[mid * HINT_STRIDE + HINT_STRIDE - 1]) {
            lo_s = mid + 1;
        } else {
            hi_s = mid;
        }
    }
    // Forward scan inside the bucket below the first false sample (or
    // the tail past the last sample).
    let mut lo = lo_s * HINT_STRIDE;
    let hi = if lo_s < m { lo + HINT_STRIDE - 1 } else { n };
    while lo < hi && pred(&keys[lo]) {
        lo += 1;
    }
    lo
}

/// Exact-key search via [`hinted_partition_point`]; drop-in for
/// `slice::binary_search` on the sorted unique key columns.
#[inline]
pub(crate) fn hinted_search<K: Ord>(keys: &[K], key: &K) -> Result<usize, usize> {
    let i = hinted_partition_point(keys, |k| k < key);
    if i < keys.len() && &keys[i] == key {
        Ok(i)
    } else {
        Err(i)
    }
}

/// A fixed-size root-to-leaf path — node ids pushed in descent order —
/// with no heap allocation. Capacity is [`MAX_DEPTH`]; pushing past it
/// panics, which the depth bound above makes unreachable.
#[derive(Debug, Clone, Copy)]
pub(crate) struct InlinePath {
    nodes: [u32; MAX_DEPTH],
    len: usize,
}

impl InlinePath {
    pub(crate) fn new() -> InlinePath {
        InlinePath {
            nodes: [0; MAX_DEPTH],
            len: 0,
        }
    }

    #[inline]
    pub(crate) fn push(&mut self, id: u32) {
        assert!(self.len < MAX_DEPTH, "tree depth exceeds MAX_DEPTH");
        self.nodes[self.len] = id;
        self.len += 1;
    }

    /// The recorded ids, in descent (root-first) order.
    #[inline]
    pub(crate) fn as_slice(&self) -> &[u32] {
        &self.nodes[..self.len]
    }
}

/// Verdict of the confidence bypass for one probe: try the whole
/// ladder, try just the cached-leaf rung, or go straight to the root
/// walk. See [`BranchCache::probe_gate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ProbeGate {
    /// Confident: check every rung.
    Full,
    /// Bypassed, but this is the periodic retry probe: check the
    /// cached leaf only, and record the walk on a miss so the next
    /// retry tests a fresh path.
    Retry,
    /// Bypassed: plain cold walk, no rung checks, no recording.
    Skip,
}

/// Lock-free memory of the previous descent: the node path (slot 0 =
/// leaf, slot `len - 1` = root) stamped with the tree epoch it was
/// recorded under, plus the hit/miss telemetry surfaced through
/// `TreeStats`.
///
/// All fields are relaxed atomics: probes hold `&self`, verification
/// is content-based (see the module docs), and the counters are
/// monotonic telemetry — no ordering between them is needed.
#[derive(Debug)]
pub(crate) struct BranchCache {
    /// Epoch the cached path belongs to; a mismatch with the tree's
    /// current epoch invalidates every slot at once.
    epoch: AtomicU64,
    /// Number of valid slots in `path` (0 = nothing cached).
    len: AtomicU32,
    /// The remembered path: `path[0]` is the leaf, `path[d]` the
    /// ancestor `d` levels above it.
    path: [AtomicU32; MAX_DEPTH],
    /// Protected leaf pair: the frequency side of the leaf rungs,
    /// where `path[0]` is the recency side. A leaf enters only by
    /// proving itself hot in the primary slot first (see
    /// [`BranchCache::record_walk`]), and probes that hit here leave
    /// the slots untouched — so a pair of hot leaves stays resident
    /// while scattered probes churn the primary, instead of every
    /// transient leaf evicting a hot one.
    prot: [AtomicU32; 2],
    /// Which protected slot hit most recently; demotions overwrite
    /// the other one.
    prot_last: AtomicU32,
    /// Saturating confidence counter for the probe bypass (see
    /// [`BranchCache::probe_gate`]). Races on the read-modify-write
    /// only perturb the heuristic, never correctness.
    conf: AtomicU32,
    /// Probes skipped while the bypass is active; drives the periodic
    /// ladder retry.
    skips: AtomicU32,
    /// 1 when the primary leaf has produced a hit since it was
    /// recorded. Recorders demote the primary into the protected pair
    /// only when this is set: an unproven leaf (one scattered probe)
    /// must never evict a proven-hot one.
    primary_hot: AtomicU32,
    /// Probes resolved at the cached leaf itself.
    hits: AtomicU64,
    /// Probes resolved by descending from a cached ancestor below the
    /// root.
    partial_hits: AtomicU64,
    /// Probes that fell back to a full root walk.
    misses: AtomicU64,
}

impl BranchCache {
    pub(crate) fn new() -> BranchCache {
        BranchCache {
            epoch: AtomicU64::new(u64::MAX),
            len: AtomicU32::new(0),
            path: [const { AtomicU32::new(0) }; MAX_DEPTH],
            prot: [const { AtomicU32::new(u32::MAX) }; 2],
            // Start at 1 so the first demotion fills slot 0.
            prot_last: AtomicU32::new(1),
            conf: AtomicU32::new(CONF_MAX),
            skips: AtomicU32::new(0),
            primary_hot: AtomicU32::new(0),
            hits: AtomicU64::new(0),
            partial_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// How much of the ladder the next probe should attempt.
    ///
    /// On streams with no locality every rung fails, and the failed
    /// checks touch nodes that are cold precisely *because* the stream
    /// is scattered — pure overhead on top of the unavoidable root
    /// walk. The bypass tracks a saturating confidence counter: ladder
    /// hits reset it to [`CONF_MAX`], full-walk misses decrement it,
    /// and at zero the ladder is skipped ([`ProbeGate::Skip`]) except
    /// for one probe in [`RETRY_PERIOD`] ([`ProbeGate::Retry`]: the
    /// leaf rung only, so a stale path costs one fetch rather than
    /// three), which lets the cache re-arm when the stream turns local
    /// again. The counter updates are plain load/store (not atomic
    /// RMW): a racing probe can lose an update, which only nudges the
    /// heuristic.
    #[inline]
    pub(crate) fn probe_gate(&self) -> ProbeGate {
        if self.conf.load(Relaxed) > 0 {
            return ProbeGate::Full;
        }
        let s = self.skips.load(Relaxed).wrapping_add(1);
        self.skips.store(s, Relaxed);
        if s.is_multiple_of(RETRY_PERIOD) {
            ProbeGate::Retry
        } else {
            ProbeGate::Skip
        }
    }

    /// Whether the confidence bypass is inactive — a single load, with
    /// none of [`BranchCache::probe_gate`]'s skip accounting. The fused
    /// fast rung in `get` uses this so a bypassed stream pays exactly
    /// one gate update per probe (in `find_leaf`), not two.
    #[inline]
    pub(crate) fn confident(&self) -> bool {
        self.conf.load(Relaxed) > 0
    }

    /// Just the cached leaf under `epoch` — the subset of
    /// [`BranchCache::probe_top`] the fused fast rung needs, loading
    /// two slots fewer.
    #[inline]
    pub(crate) fn probe_leaf(&self, epoch: u64) -> Option<u32> {
        if self.epoch.load(Relaxed) != epoch || self.len.load(Relaxed) == 0 {
            return None;
        }
        Some(self.path[0].load(Relaxed))
    }

    /// The ladder's working set under `epoch`: `(leaf, parent)` with
    /// `u32::MAX` for an absent parent, or `None` when the cache is
    /// empty or was recorded under a different epoch. Only the slots
    /// the ladder actually consults are loaded — the hit path never
    /// copies the full path array. The parent slot is only offered
    /// when it sits *below* the root (`len > 2`): re-descending from
    /// a root-level parent is never cheaper than the root walk it
    /// would replace, and on shallow trees the useless partial hits
    /// would also keep re-arming the confidence bypass. Callers must
    /// verify every id against live node content before acting on it.
    #[inline]
    pub(crate) fn probe_top(&self, epoch: u64) -> Option<(u32, u32)> {
        if self.epoch.load(Relaxed) != epoch {
            return None;
        }
        let len = self.len.load(Relaxed);
        if len == 0 {
            return None;
        }
        let leaf = self.path[0].load(Relaxed);
        let parent = if len > 2 {
            self.path[1].load(Relaxed)
        } else {
            u32::MAX
        };
        Some((leaf, parent))
    }

    /// The protected leaf pair (`u32::MAX` for empty slots). Loaded
    /// lazily — only after the primary rung has already missed.
    #[inline]
    pub(crate) fn protected(&self) -> (u32, u32) {
        (self.prot[0].load(Relaxed), self.prot[1].load(Relaxed))
    }

    /// Demotes the current primary leaf into the protected pair — but
    /// only when it has proven itself hot (produced a hit since
    /// recording). Called by both recorders just before overwriting
    /// slot 0. Unproven leaves are simply dropped, and the demotion
    /// overwrites the protected slot that hit *less* recently: runs
    /// of scattered probes churn the primary slot only, which is
    /// exactly what keeps a pair of hot leaves resident on skewed
    /// streams.
    #[inline]
    fn demote_if_hot(&self) {
        if self.primary_hot.load(Relaxed) == 1 {
            let victim = 1 - (self.prot_last.load(Relaxed) as usize & 1);
            self.prot[victim].store(self.path[0].load(Relaxed), Relaxed);
            self.prot_last.store(victim as u32, Relaxed);
            self.primary_hot.store(0, Relaxed);
        }
    }

    /// Records a full root-to-leaf walk (`walk` in descent order)
    /// under `epoch`.
    #[inline]
    pub(crate) fn record_walk(&self, epoch: u64, walk: &InlinePath) {
        let ids = walk.as_slice();
        self.demote_if_hot();
        for (d, &id) in ids.iter().rev().enumerate() {
            self.path[d].store(id, Relaxed);
        }
        self.len.store(ids.len() as u32, Relaxed);
        self.epoch.store(epoch, Relaxed);
    }

    /// Replaces just the cached leaf slot — used when a probe resolved
    /// one level down from the cached parent — demoting the previous
    /// leaf to the protected pair if it proved hot. The rest of the
    /// path is untouched: the parent that routed here is still the
    /// new leaf's parent.
    #[inline]
    pub(crate) fn record_leaf(&self, leaf: u32) {
        self.demote_if_hot();
        self.path[0].store(leaf, Relaxed);
    }

    // The telemetry counters are bumped with plain load/store rather
    // than `fetch_add`: a locked read-modify-write costs a meaningful
    // slice of the whole hit path, and concurrent probes dropping the
    // odd increment only blurs the telemetry, never correctness.

    /// A primary-rung hit: the cached leaf is now proven hot.
    #[inline]
    pub(crate) fn count_hit(&self) {
        self.hits
            .store(self.hits.load(Relaxed).wrapping_add(1), Relaxed);
        self.conf.store(CONF_MAX, Relaxed);
        self.primary_hot.store(1, Relaxed);
    }

    /// A protected-rung hit: counts like a hit and marks the slot as
    /// recently useful, but deliberately moves nothing — stability of
    /// the pair is the point.
    #[inline]
    pub(crate) fn count_hit_protected(&self, slot: usize) {
        self.hits
            .store(self.hits.load(Relaxed).wrapping_add(1), Relaxed);
        self.conf.store(CONF_MAX, Relaxed);
        self.prot_last.store(slot as u32, Relaxed);
    }

    #[inline]
    pub(crate) fn count_partial(&self) {
        self.partial_hits
            .store(self.partial_hits.load(Relaxed).wrapping_add(1), Relaxed);
        self.conf.store(CONF_MAX, Relaxed);
    }

    #[inline]
    pub(crate) fn count_miss(&self) {
        self.misses
            .store(self.misses.load(Relaxed).wrapping_add(1), Relaxed);
        let c = self.conf.load(Relaxed);
        if c > 0 {
            self.conf.store(c - 1, Relaxed);
        }
    }

    /// `(hits, partial_hits, misses)` so far.
    pub(crate) fn counters(&self) -> (u64, u64, u64) {
        (
            self.hits.load(Relaxed),
            self.partial_hits.load(Relaxed),
            self.misses.load(Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hinted_partition_point_matches_std() {
        for n in [0usize, 1, 2, 7, 8, 9, 15, 16, 17, 31, 32, 33, 100] {
            let keys: Vec<u32> = (0..n as u32).map(|i| i * 2).collect();
            for probe in 0..=(2 * n as u32 + 2) {
                assert_eq!(
                    hinted_partition_point(&keys, |&k| k < probe),
                    keys.partition_point(|&k| k < probe),
                    "n={n} probe={probe} (strict)"
                );
                assert_eq!(
                    hinted_partition_point(&keys, |&k| k <= probe),
                    keys.partition_point(|&k| k <= probe),
                    "n={n} probe={probe} (inclusive)"
                );
            }
        }
    }

    #[test]
    fn hinted_search_matches_binary_search() {
        let keys: Vec<u32> = (0..50).map(|i| i * 3).collect();
        for probe in 0..160u32 {
            assert_eq!(keys.binary_search(&probe), hinted_search(&keys, &probe));
        }
    }

    #[test]
    fn inline_path_pushes_and_reports() {
        let mut p = InlinePath::new();
        assert!(p.as_slice().is_empty());
        for i in 0..5 {
            p.push(i * 10);
        }
        assert_eq!(p.as_slice(), &[0, 10, 20, 30, 40]);
    }

    #[test]
    #[should_panic(expected = "MAX_DEPTH")]
    fn inline_path_asserts_depth_bound() {
        let mut p = InlinePath::new();
        for i in 0..=MAX_DEPTH as u32 {
            p.push(i);
        }
    }

    #[test]
    fn bypass_disarms_after_misses_and_rearms_on_hit() {
        let c = BranchCache::new();
        for _ in 0..CONF_MAX {
            assert_eq!(c.probe_gate(), ProbeGate::Full, "confident cache probes");
            c.count_miss();
        }
        let retries = (0..128)
            .filter(|_| c.probe_gate() == ProbeGate::Retry)
            .count();
        assert_eq!(retries, 128 / RETRY_PERIOD as usize, "periodic retry only");
        c.count_hit();
        assert_eq!(
            c.probe_gate(),
            ProbeGate::Full,
            "one hit re-arms the ladder"
        );
    }

    fn walk_to(leaf: u32) -> InlinePath {
        let mut w = InlinePath::new();
        w.push(9); // root
        w.push(leaf);
        w
    }

    #[test]
    fn only_proven_hot_leaves_enter_the_protected_pair() {
        let c = BranchCache::new();
        c.record_walk(1, &walk_to(4));
        c.count_hit(); // leaf 4 proves itself hot
        c.record_walk(1, &walk_to(6)); // displaces 4 → protected
        assert_eq!(c.protected(), (4, u32::MAX));
        c.record_walk(1, &walk_to(8)); // leaf 6 never hit: not protected
        assert_eq!(c.protected(), (4, u32::MAX), "unproven leaf stays out");
        let (leaf, _) = c.probe_top(1).expect("path cached");
        assert_eq!(leaf, 8);
    }

    #[test]
    fn protected_pair_holds_two_hot_leaves_and_evicts_the_colder() {
        let c = BranchCache::new();
        for leaf in [4u32, 6] {
            c.record_walk(1, &walk_to(leaf));
            c.count_hit();
        }
        c.record_walk(1, &walk_to(11)); // displaces hot 6
        assert_eq!(c.protected(), (4, 6), "both hot shards held at once");
        // Protected hits refresh recency without moving anything.
        c.count_hit_protected(0); // slot 0 (leaf 4) hit last
        assert_eq!(c.protected(), (4, 6), "protected hits move nothing");
        // A third hot leaf evicts the slot that hit less recently.
        c.count_hit(); // leaf 11 proves itself hot
        c.record_walk(1, &walk_to(13));
        assert_eq!(c.protected(), (4, 11), "colder slot 1 was the victim");
    }

    #[test]
    fn cache_epoch_gates_probe() {
        let c = BranchCache::new();
        let mut walk = InlinePath::new();
        walk.push(7); // root
        walk.push(5); // interior parent
        walk.push(3); // leaf
        c.record_walk(5, &walk);
        assert_eq!(c.probe_top(4), None, "stale epoch yields nothing");
        let (leaf, parent) = c.probe_top(5).expect("matching epoch");
        assert_eq!((leaf, parent), (3, 5), "leaf first, then its parent");
        assert_eq!(c.protected(), (u32::MAX, u32::MAX), "nothing demoted yet");
    }

    #[test]
    fn root_level_parent_is_withheld() {
        let c = BranchCache::new();
        let mut walk = InlinePath::new();
        walk.push(7); // root
        walk.push(3); // leaf
        c.record_walk(1, &walk);
        let (leaf, parent) = c.probe_top(1).expect("path cached");
        assert_eq!(leaf, 3);
        assert_eq!(
            parent,
            u32::MAX,
            "re-descending from the root is no faster than the walk"
        );
    }
}
