//! Arena node representation.

/// Sentinel "null" node id inside the arena.
pub(crate) const NIL: u32 = u32::MAX;

/// A B+tree node. Nodes live in the tree's arena (`Vec<Node<K, V>>`)
/// and reference each other by index, which keeps the structure compact
/// and lets leaves form a doubly-linked list for range scans.
#[derive(Debug, Clone)]
pub(crate) enum Node<K, V> {
    /// Inner routing node: `keys.len() + 1 == children.len()`, and
    /// `keys[i]` is the smallest key reachable under `children[i + 1]`.
    Internal { keys: Vec<K>, children: Vec<u32> },
    /// Leaf node holding the actual entries plus sibling links.
    Leaf {
        keys: Vec<K>,
        values: Vec<V>,
        next: u32,
        prev: u32,
    },
    /// Recycled slot on the free list.
    Free,
}

impl<K, V> Node<K, V> {
    pub(crate) fn key_count(&self) -> usize {
        match self {
            Node::Internal { keys, .. } | Node::Leaf { keys, .. } => keys.len(),
            Node::Free => 0,
        }
    }
}
