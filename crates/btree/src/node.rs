//! Arena node representation.

use crate::page::ColVec;
use crate::summary::Summary;

/// Sentinel "null" node id inside the arena.
pub(crate) const NIL: u32 = u32::MAX;

/// A B+tree node. Nodes live in the tree's arena (`Vec<Node<K, V>>`)
/// and reference each other by index, which keeps the structure compact
/// and lets leaves form a doubly-linked list for range scans.
#[derive(Debug, Clone)]
pub(crate) enum Node<K, V> {
    /// Inner routing node: `keys.len() + 1 == children.len()`, and
    /// `keys[i]` is the smallest key reachable under `children[i + 1]`.
    /// `summaries[i]` is the maintained monoid summary of the whole
    /// subtree under `children[i]` (see [`crate::Summary`]); every
    /// mutation path repairs the affected slots on its way back up.
    /// Storing the summary *per child* (rather than one per node) is
    /// what lets `count_range` credit a fully-covered child without
    /// ever visiting it.
    Internal {
        keys: Vec<K>,
        children: Vec<u32>,
        summaries: Vec<Summary<K>>,
    },
    /// Leaf node holding the actual entries plus sibling links.
    ///
    /// The key and value columns are each a [`ColVec`]: cloning the
    /// node (a copy-on-write page detach) borrows both columns by
    /// reference-count bump, and a mutation detaches only the column
    /// it writes — a value overwrite leaves the key column shared
    /// with every snapshot.
    Leaf {
        keys: ColVec<K>,
        values: ColVec<V>,
        next: u32,
        prev: u32,
    },
    /// Recycled slot on the free list.
    Free,
}

impl<K, V> Node<K, V> {
    pub(crate) fn key_count(&self) -> usize {
        match self {
            Node::Internal { keys, .. } => keys.len(),
            Node::Leaf { keys, .. } => keys.len(),
            Node::Free => 0,
        }
    }
}
