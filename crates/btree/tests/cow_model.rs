//! Structural-sharing model tests: a cloned tree is a frozen snapshot.
//!
//! The paged copy-on-write arena promises that a clone (O(pages)
//! pointer bumps, zero node copies) behaves exactly like an
//! independent deep copy: arbitrary interleaved inserts and deletes on
//! the original must never move the ground under the clone, and vice
//! versa. The `shared_pages` statistic pins the "zero copies" half
//! down directly.

use proptest::prelude::*;
use xvi_btree::BPlusTree;

#[derive(Debug, Clone)]
enum Op {
    Insert(u16, u32),
    Remove(u16),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (any::<u16>(), any::<u32>()).prop_map(|(k, v)| Op::Insert(k % 512, v)),
        2 => any::<u16>().prop_map(|k| Op::Remove(k % 512)),
    ]
}

fn apply(tree: &mut BPlusTree<u16, u32>, ops: &[Op]) {
    for op in ops {
        match *op {
            Op::Insert(k, v) => {
                tree.insert(k, v);
            }
            Op::Remove(k) => {
                tree.remove(&k);
            }
        }
    }
}

fn entries(tree: &BPlusTree<u16, u32>) -> Vec<(u16, u32)> {
    tree.iter().map(|(k, v)| (*k, *v)).collect()
}

proptest! {
    /// After cloning, the original is mutated arbitrarily; the clone
    /// must stay byte-identical to the deep-copy model taken at clone
    /// time (same entries, same structural invariants).
    #[test]
    fn clone_matches_deep_copy_model_under_original_mutation(
        seed in proptest::collection::vec((any::<u16>(), any::<u32>()), 0..400),
        ops in proptest::collection::vec(arb_op(), 1..300),
    ) {
        for order in [4usize, 32] {
            let mut tree = BPlusTree::with_order(order);
            for &(k, v) in &seed {
                tree.insert(k % 512, v);
            }
            let snapshot = tree.clone();
            let deep = tree.deep_clone();
            let model = entries(&snapshot);

            apply(&mut tree, &ops);
            prop_assert!(tree.check_invariants().is_ok());

            // The snapshot never moved, and neither did the explicit
            // deep copy — the lazy page-sharing clone and the eager
            // copy are indistinguishable.
            prop_assert_eq!(entries(&snapshot), model.clone());
            prop_assert_eq!(entries(&deep), model.clone());
            prop_assert!(snapshot.check_invariants().is_ok());

            // Symmetrically: mutating a clone leaves the original (and
            // the first snapshot) untouched.
            let frozen = entries(&tree);
            let mut fork = tree.clone();
            apply(&mut fork, &ops);
            fork.shrink_to_fit();
            prop_assert!(fork.check_invariants().is_ok());
            prop_assert_eq!(entries(&tree), frozen);
            prop_assert_eq!(entries(&snapshot), model);
        }
    }
}

/// Acceptance pin: cloning a ≥10⁵-entry tree copies zero nodes — every
/// arena page of both trees is shared afterwards.
#[test]
fn hundred_thousand_entry_clone_is_zero_copy() {
    let tree: BPlusTree<u32, u32> = BPlusTree::from_sorted_iter((0..100_000).map(|i| (i, i * 7)));
    assert_eq!(tree.stats().shared_pages, 0);
    let clone = tree.clone();
    let s = clone.stats();
    assert!(s.len == 100_000 && s.pages > 100);
    assert_eq!(
        s.shared_pages, s.pages,
        "a clone must share every page (zero node copies)"
    );
    assert_eq!(tree.stats().shared_pages, tree.stats().pages);
}

/// Acceptance pin: after mutating one key of the clone, the untouched
/// bulk of the arena stays shared — only the write path detached.
#[test]
fn mutating_one_key_detaches_only_its_page() {
    let tree: BPlusTree<u32, u32> = BPlusTree::from_sorted_iter((0..100_000).map(|i| (i, i)));
    let mut clone = tree.clone();
    // Replace-on-insert of an existing key: routing reads internals,
    // only the target leaf's page is written.
    clone.insert(50_000, 999);
    let s = clone.stats();
    assert!(s.shared_pages > 0, "bulk of the tree must stay shared");
    assert!(
        s.pages - s.shared_pages <= 2,
        "a one-key write may detach at most the leaf path ({} of {} pages detached)",
        s.pages - s.shared_pages,
        s.pages
    );
    assert_eq!(tree.get(&50_000), Some(&50_000), "original unchanged");
    assert_eq!(clone.get(&50_000), Some(&999));
}
