//! Bulk loading must be behaviourally identical to insert-building,
//! for arbitrary key sets, orders, and follow-up mutations.

use std::collections::BTreeMap;

use proptest::prelude::*;
use xvi_btree::BPlusTree;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bulk_load_equals_model(keys in proptest::collection::btree_set(any::<u32>(), 0..600),
                              order in 3usize..40) {
        let tree: BPlusTree<u32, u64> = BPlusTree::from_sorted_iter_with_order(
            order,
            keys.iter().map(|&k| (k, u64::from(k) * 7)),
        );
        tree.check_invariants().map_err(TestCaseError::fail)?;
        prop_assert_eq!(tree.len(), keys.len());
        let got: Vec<u32> = tree.iter().map(|(k, _)| *k).collect();
        let want: Vec<u32> = keys.iter().copied().collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn bulk_then_mutate_stays_consistent(
        initial in proptest::collection::btree_set(0u32..1000, 0..300),
        ops in proptest::collection::vec((any::<bool>(), 0u32..1000), 0..200),
        order in 3usize..16,
    ) {
        let mut tree: BPlusTree<u32, ()> = BPlusTree::from_sorted_iter_with_order(
            order,
            initial.iter().map(|&k| (k, ())),
        );
        let mut model: BTreeMap<u32, ()> = initial.iter().map(|&k| (k, ())).collect();
        for (insert, key) in ops {
            if insert {
                prop_assert_eq!(tree.insert(key, ()), model.insert(key, ()));
            } else {
                prop_assert_eq!(tree.remove(&key), model.remove(&key));
            }
            tree.check_invariants().map_err(TestCaseError::fail)?;
        }
        let got: Vec<u32> = tree.iter().map(|(k, _)| *k).collect();
        let want: Vec<u32> = model.keys().copied().collect();
        prop_assert_eq!(got, want);
    }
}
