//! The monoid-summary battery: after *any* interleaving of point
//! inserts, deletes, bulk reloads, compactions and copy-on-write
//! clone-then-mutate steps, every interior node's **stored** summary
//! must be byte-identical to a from-scratch recompute (that is what
//! [`BPlusTree::check_invariants`] verifies since the summaries landed
//! there), the root summary must equal an entry-by-entry external fold,
//! and [`BPlusTree::count_range`] must agree with the range iterator
//! for every bound shape — including empty and reversed bounds — while
//! visiting at most `2·depth + 1` nodes.
//!
//! The second half pins the structural-diff side: between two snapshot
//! versions related by k point mutations, [`BPlusTree::diff_keys`]
//! returns exactly the symmetric key difference while probing
//! O(k·depth) nodes, far below the node count — the subtree-hash
//! pruning doing its job.

use std::ops::Bound;

use proptest::collection::vec;
use proptest::prelude::*;

use xvi_btree::{BPlusTree, Summary};

/// One step of a generated mutation script.
#[derive(Debug, Clone)]
enum Op {
    /// Insert (or replace) a key.
    Insert(u32),
    /// Remove a key (may miss).
    Remove(u32),
    /// Rebuild the tree from its own contents via the bulk loader.
    BulkReload,
    /// Compact the arena.
    Shrink,
    /// Clone the tree (pinning every page), then mutate the original —
    /// every touched page must detach copy-on-write with its stored
    /// summaries intact on both sides.
    CloneThenMutate(u32),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u32..600).prop_map(Op::Insert),
        3 => (0u32..600).prop_map(Op::Remove),
        1 => Just(Op::BulkReload),
        1 => Just(Op::Shrink),
        1 => (0u32..600).prop_map(Op::CloneThenMutate),
    ]
}

/// Recomputes the root summary externally, one entry at a time —
/// sharing no code with the tree's own fold.
fn external_fold(t: &BPlusTree<u32, u64>) -> Summary<u32> {
    t.iter().fold(Summary::empty(), |acc, (k, _)| {
        acc.combine(&Summary::of_key(k))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Summaries survive arbitrary interleavings of every mutation
    /// path, with a COW snapshot pinned across part of the script.
    #[test]
    fn summaries_exact_after_any_interleaving(
        order in prop_oneof![Just(3usize), Just(4), Just(8)],
        ops in vec(op_strategy(), 1..120),
    ) {
        let mut t: BPlusTree<u32, u64> = BPlusTree::with_order(order);
        let mut snapshots: Vec<BPlusTree<u32, u64>> = Vec::new();
        for op in &ops {
            match op {
                Op::Insert(k) => {
                    t.insert(*k, u64::from(*k) * 2);
                }
                Op::Remove(k) => {
                    t.remove(k);
                }
                Op::BulkReload => {
                    let entries: Vec<(u32, u64)> =
                        t.iter().map(|(k, v)| (*k, *v)).collect();
                    t = BPlusTree::from_sorted_iter_with_order(order, entries);
                }
                Op::Shrink => t.shrink_to_fit(),
                Op::CloneThenMutate(k) => {
                    snapshots.push(t.clone());
                    t.insert(*k, 7);
                }
            }
            t.check_invariants()
                .map_err(|e| TestCaseError::fail(format!("after {op:?}: {e}")))?;
        }
        // The stored root summary equals an entry-by-entry recompute.
        prop_assert_eq!(t.summary(), external_fold(&t));
        // Pinned snapshots kept their (pre-mutation) summaries intact
        // through every COW detach the later script steps caused.
        for s in &snapshots {
            s.check_invariants()
                .map_err(|e| TestCaseError::fail(format!("snapshot: {e}")))?;
            prop_assert_eq!(s.summary(), external_fold(s));
        }
    }

    /// `count_range` agrees with the iterator for random bounds of
    /// every shape, within the probe budget.
    #[test]
    fn count_range_matches_iterator(
        keys in vec(0u32..2000, 0..400),
        probes_spec in vec((0u32..2100, 0u32..2100, 0usize..9), 1..24),
    ) {
        let mut t: BPlusTree<u32, u32> = BPlusTree::with_order(4);
        for k in &keys {
            t.insert(*k, *k);
        }
        let depth = t.stats().depth;
        for &(a, b, shape) in &probes_spec {
            let bounds: (Bound<u32>, Bound<u32>) = match shape {
                0 => (Bound::Included(a), Bound::Included(b)),
                1 => (Bound::Included(a), Bound::Excluded(b)),
                2 => (Bound::Excluded(a), Bound::Included(b)),
                3 => (Bound::Excluded(a), Bound::Excluded(b)),
                4 => (Bound::Unbounded, Bound::Included(b)),
                5 => (Bound::Unbounded, Bound::Excluded(b)),
                6 => (Bound::Included(a), Bound::Unbounded),
                7 => (Bound::Excluded(a), Bound::Unbounded),
                _ => (Bound::Unbounded, Bound::Unbounded),
            };
            // `a > b` cases are the reversed/empty bounds on purpose:
            // the iterator yields nothing and the count must agree.
            let want = t.range(bounds).count();
            let (got, probes) = t.count_range_probed(bounds);
            prop_assert_eq!(got, want, "bounds {:?}", bounds);
            prop_assert!(
                probes <= 2 * depth + 1,
                "{} probes exceeds 2*{}+1 for {:?}", probes, depth, bounds
            );
        }
        // The degenerate single-point and full ranges, for good measure.
        prop_assert_eq!(t.count_range(..), t.len());
        if let Some((&k, _)) = t.iter().next() {
            prop_assert_eq!(t.count_range(k..=k), 1);
        }
    }
}

// ----- snapshot structural diff (subtree-hash pruning) ---------------------

#[test]
fn diff_of_identical_trees_is_empty_and_cheap() {
    let t: BPlusTree<u32, u32> = BPlusTree::from_sorted_iter((0..50_000).map(|i| (i, i)));
    let snap = t.clone();
    let (diff, probes) = t.diff_keys(&snap);
    assert!(diff.is_empty());
    let depth = t.stats().depth;
    // One spine descent per tree, then the root pair prunes everything.
    assert!(
        probes <= 2 * (depth + 1),
        "{probes} probes to diff identical trees of depth {depth}"
    );
}

#[test]
fn diff_localizes_point_mutations() {
    let t: BPlusTree<u32, u32> = BPlusTree::from_sorted_iter((0..200_000u32).map(|i| (2 * i, i)));
    let snap = t.clone();
    let mut mutated = t;

    // 12 point mutations: 8 fresh inserts (odd keys) + 4 removals.
    let inserted: Vec<u32> = (0..8u32).map(|i| 20_000 * i + 1).collect();
    let removed: Vec<u32> = (0..4u32).map(|i| 44_000 * i + 6).collect();
    for &k in &inserted {
        mutated.insert(k, 0);
    }
    for &k in &removed {
        assert_eq!(mutated.remove(&k), Some(k / 2));
    }

    let mut expect: Vec<u32> = inserted.iter().chain(removed.iter()).copied().collect();
    expect.sort_unstable();

    let (mut diff, probes) = mutated.diff_keys(&snap);
    diff.sort_unstable();
    assert_eq!(diff, expect, "diff must be exactly the mutated keys");

    // Localization: probes scale with mutations × depth, not with n.
    let sa = mutated.stats();
    let sb = snap.stats();
    let (da, db) = (sa.depth, sb.depth);
    let k = expect.len();
    // The per-gap pruning decomposes each unchanged stretch into
    // O(fan-out · depth) maximal aligned subtrees, so the constant is
    // generous — the sharp claim is the sublinearity assert below.
    assert!(
        probes <= 16 * (k + 2) * (da + db + 2),
        "{probes} probes for {k} mutations at depths {da}/{db}"
    );
    let total_nodes = sa.leaves + sa.internals + sb.leaves + sb.internals;
    assert!(
        probes < total_nodes / 4,
        "{probes} probes is not sublinear in {total_nodes} nodes"
    );

    // And the COW accounting agrees on the blast radius: the pages the
    // mutations detached bound the structure that could have diverged.
    let detached = sa.pages - sa.shared_pages;
    assert!(detached >= 1, "mutating a pinned tree must detach pages");
    assert!(
        diff.len() <= detached * xvi_btree::PAGE_SIZE,
        "{} differing keys exceed the {detached} detached pages' capacity",
        diff.len()
    );
}

#[test]
fn value_only_mutation_is_invisible_to_diff() {
    let mut t: BPlusTree<u32, u32> = BPlusTree::from_sorted_iter((0..10_000).map(|i| (i, i)));
    let snap = t.clone();
    // In-place value edit through get_mut: detaches a page, changes no
    // key — documented as invisible to the key-sequence hash.
    *t.get_mut(&4321).unwrap() = 999;
    assert_eq!(t.subtree_hash(), snap.subtree_hash());
    let (diff, _) = t.diff_keys(&snap);
    assert!(diff.is_empty(), "value edits must not show up as key diffs");
}

#[test]
fn diff_against_empty_tree_lists_everything() {
    let t: BPlusTree<u32, u32> = BPlusTree::from_sorted_iter((0..100).map(|i| (i, i)));
    let empty: BPlusTree<u32, u32> = BPlusTree::new();
    let (diff, _) = t.diff_keys(&empty);
    assert_eq!(diff, (0..100).collect::<Vec<u32>>());
    let (diff, _) = empty.diff_keys(&t);
    assert_eq!(diff, (0..100).collect::<Vec<u32>>());
    let (diff, probes) = empty.diff_keys(&BPlusTree::new());
    assert!(diff.is_empty());
    assert!(probes <= 2);
}

// ----- shrink_to_fit preservation (the compaction fix's pin) ---------------

#[test]
fn shrink_to_fit_preserves_summary_iteration_and_counts() {
    let mut t: BPlusTree<u32, u32> = BPlusTree::with_order(4);
    for i in 0..5_000u32 {
        t.insert(i, i);
    }
    for i in (0..5_000u32).step_by(3) {
        t.remove(&i);
    }
    let before_summary = t.summary();
    let before_hash = t.subtree_hash();
    let before_entries: Vec<(u32, u32)> = t.iter().map(|(k, v)| (*k, *v)).collect();
    let s0 = t.stats();

    t.shrink_to_fit();

    let s1 = t.stats();
    assert_eq!(s1.free_slots, 0, "compaction must leave no free slots");
    assert_eq!(t.summary(), before_summary);
    assert_eq!(t.subtree_hash(), before_hash);
    assert_eq!(s1.root_hash, before_hash);
    let after: Vec<(u32, u32)> = t.iter().map(|(k, v)| (*k, *v)).collect();
    assert_eq!(after, before_entries);
    assert_eq!(
        (s1.len, s1.leaves, s1.internals),
        (s0.len, s0.leaves, s0.internals)
    );
    t.check_invariants().unwrap();
}
