//! Model-based testing: the B+tree must behave exactly like
//! `std::collections::BTreeMap` under arbitrary operation sequences,
//! and every intermediate state must satisfy the structural invariants.

use std::collections::BTreeMap;
use std::ops::Bound;

use proptest::prelude::*;
use xvi_btree::BPlusTree;

#[derive(Debug, Clone)]
enum Op {
    Insert(u16, u32),
    Remove(u16),
    Get(u16),
    Range(u16, u16),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (any::<u16>(), any::<u32>()).prop_map(|(k, v)| Op::Insert(k % 512, v)),
        2 => any::<u16>().prop_map(|k| Op::Remove(k % 512)),
        1 => any::<u16>().prop_map(|k| Op::Get(k % 512)),
        1 => (any::<u16>(), any::<u16>()).prop_map(|(a, b)| Op::Range(a % 512, b % 512)),
    ]
}

fn run_model(order: usize, ops: Vec<Op>) -> Result<(), TestCaseError> {
    let mut tree: BPlusTree<u16, u32> = BPlusTree::with_order(order);
    let mut model: BTreeMap<u16, u32> = BTreeMap::new();

    for op in ops {
        match op {
            Op::Insert(k, v) => {
                prop_assert_eq!(tree.insert(k, v), model.insert(k, v));
            }
            Op::Remove(k) => {
                prop_assert_eq!(tree.remove(&k), model.remove(&k));
            }
            Op::Get(k) => {
                prop_assert_eq!(tree.get(&k), model.get(&k));
            }
            Op::Range(a, b) => {
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                let got: Vec<(u16, u32)> = tree.range(lo..hi).map(|(k, v)| (*k, *v)).collect();
                let want: Vec<(u16, u32)> = model.range(lo..hi).map(|(k, v)| (*k, *v)).collect();
                prop_assert_eq!(got, want);
            }
        }
        tree.check_invariants().map_err(|e| {
            TestCaseError::fail(format!("invariant violated at order {order}: {e}"))
        })?;
        prop_assert_eq!(tree.len(), model.len());
    }

    // Final full sweeps in both representations.
    let got: Vec<(u16, u32)> = tree.iter().map(|(k, v)| (*k, *v)).collect();
    let want: Vec<(u16, u32)> = model.iter().map(|(k, v)| (*k, *v)).collect();
    prop_assert_eq!(got, want);
    prop_assert_eq!(
        tree.first_key_value().map(|(k, v)| (*k, *v)),
        model.first_key_value().map(|(k, v)| (*k, *v))
    );
    prop_assert_eq!(
        tree.last_key_value().map(|(k, v)| (*k, *v)),
        model.last_key_value().map(|(k, v)| (*k, *v))
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Order 3 forces maximal split/merge churn.
    #[test]
    fn model_order_3(ops in proptest::collection::vec(arb_op(), 0..400)) {
        run_model(3, ops)?;
    }

    #[test]
    fn model_order_4(ops in proptest::collection::vec(arb_op(), 0..400)) {
        run_model(4, ops)?;
    }

    #[test]
    fn model_default_order(ops in proptest::collection::vec(arb_op(), 0..400)) {
        run_model(32, ops)?;
    }

    /// All nine start/end bound combinations agree with BTreeMap.
    #[test]
    fn range_bounds_match_model(keys in proptest::collection::btree_set(any::<u16>(), 0..300),
                                a in any::<u16>(), b in any::<u16>()) {
        let mut tree: BPlusTree<u16, ()> = BPlusTree::with_order(4);
        let mut model = BTreeMap::new();
        for k in keys {
            tree.insert(k, ());
            model.insert(k, ());
        }
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let starts = [Bound::Included(lo), Bound::Excluded(lo), Bound::Unbounded];
        let ends = [Bound::Included(hi), Bound::Excluded(hi), Bound::Unbounded];
        for s in starts {
            for e in ends {
                if matches!((s, e), (Bound::Excluded(x), Bound::Excluded(y)) if x == y) {
                    continue; // BTreeMap panics on this degenerate range
                }
                let got: Vec<u16> = tree.range((s, e)).map(|(k, _)| *k).collect();
                let want: Vec<u16> = model.range((s, e)).map(|(k, _)| *k).collect();
                prop_assert_eq!(got, want, "bounds {:?}..{:?}", s, e);
            }
        }
    }
}
