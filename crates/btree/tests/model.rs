//! Model-based testing: the B+tree must behave exactly like
//! `std::collections::BTreeMap` under arbitrary operation sequences,
//! and every intermediate state must satisfy the structural invariants.

use std::collections::BTreeMap;
use std::ops::Bound;

use proptest::prelude::*;
use xvi_btree::BPlusTree;

#[derive(Debug, Clone)]
enum Op {
    Insert(u16, u32),
    Remove(u16),
    Get(u16),
    Range(u16, u16),
    /// Rebuild the tree from the oracle's current contents via the
    /// bulk loader, then continue point operations on the result —
    /// bulk-loaded trees must be indistinguishable from insert-built
    /// ones.
    BulkReload,
    /// Degenerate ranges around one key: every empty-by-construction
    /// bound combination must yield nothing (and must not panic).
    EmptyRange(u16),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (any::<u16>(), any::<u32>()).prop_map(|(k, v)| Op::Insert(k % 512, v)),
        4 => any::<u16>().prop_map(|k| Op::Remove(k % 512)),
        2 => any::<u16>().prop_map(|k| Op::Get(k % 512)),
        2 => (any::<u16>(), any::<u16>()).prop_map(|(a, b)| Op::Range(a % 512, b % 512)),
        1 => Just(Op::BulkReload),
        1 => any::<u16>().prop_map(|k| Op::EmptyRange(k % 512)),
    ]
}

fn run_model(order: usize, ops: Vec<Op>) -> Result<(), TestCaseError> {
    let mut tree: BPlusTree<u16, u32> = BPlusTree::with_order(order);
    let mut model: BTreeMap<u16, u32> = BTreeMap::new();

    for op in ops {
        match op {
            Op::Insert(k, v) => {
                prop_assert_eq!(tree.insert(k, v), model.insert(k, v));
            }
            Op::Remove(k) => {
                prop_assert_eq!(tree.remove(&k), model.remove(&k));
            }
            Op::Get(k) => {
                prop_assert_eq!(tree.get(&k), model.get(&k));
            }
            Op::Range(a, b) => {
                if a <= b {
                    let got: Vec<(u16, u32)> = tree.range(a..b).map(|(k, v)| (*k, *v)).collect();
                    let want: Vec<(u16, u32)> = model.range(a..b).map(|(k, v)| (*k, *v)).collect();
                    prop_assert_eq!(got, want);
                } else {
                    // Reversed bounds: `BTreeMap::range` panics, the
                    // B+tree yields the empty range — assert that
                    // contract for every bound flavour.
                    for range in [
                        (Bound::Included(a), Bound::Included(b)),
                        (Bound::Included(a), Bound::Excluded(b)),
                        (Bound::Excluded(a), Bound::Included(b)),
                        (Bound::Excluded(a), Bound::Excluded(b)),
                    ] {
                        prop_assert_eq!(tree.range(range).count(), 0, "reversed {:?}", range);
                    }
                }
            }
            Op::BulkReload => {
                tree = BPlusTree::from_sorted_iter_with_order(
                    order,
                    model.iter().map(|(k, v)| (*k, *v)),
                );
                let got: Vec<(u16, u32)> = tree.iter().map(|(k, v)| (*k, *v)).collect();
                let want: Vec<(u16, u32)> = model.iter().map(|(k, v)| (*k, *v)).collect();
                prop_assert_eq!(got, want, "bulk reload lost entries");
            }
            Op::EmptyRange(k) => {
                // start == end with at least one exclusive side is
                // empty by construction. (Excluded, Excluded) on the
                // same key panics in BTreeMap, so only the tree is
                // probed for that one.
                let combos = [
                    (Bound::Included(k), Bound::Excluded(k)),
                    (Bound::Excluded(k), Bound::Included(k)),
                    (Bound::Excluded(k), Bound::Excluded(k)),
                ];
                for (s, e) in combos {
                    prop_assert_eq!(tree.range((s, e)).count(), 0, "empty {:?}..{:?}", s, e);
                }
                let got: Vec<u16> = tree
                    .range((Bound::Included(k), Bound::Excluded(k)))
                    .map(|(k, _)| *k)
                    .collect();
                let want: Vec<u16> = model
                    .range((Bound::Included(k), Bound::Excluded(k)))
                    .map(|(k, _)| *k)
                    .collect();
                prop_assert_eq!(got, want);
            }
        }
        tree.check_invariants().map_err(|e| {
            TestCaseError::fail(format!("invariant violated at order {order}: {e}"))
        })?;
        prop_assert_eq!(tree.len(), model.len());
    }

    // Final full sweeps in both representations.
    let got: Vec<(u16, u32)> = tree.iter().map(|(k, v)| (*k, *v)).collect();
    let want: Vec<(u16, u32)> = model.iter().map(|(k, v)| (*k, *v)).collect();
    prop_assert_eq!(got, want);
    prop_assert_eq!(
        tree.first_key_value().map(|(k, v)| (*k, *v)),
        model.first_key_value().map(|(k, v)| (*k, *v))
    );
    prop_assert_eq!(
        tree.last_key_value().map(|(k, v)| (*k, *v)),
        model.last_key_value().map(|(k, v)| (*k, *v))
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Order 3 forces maximal split/merge churn.
    #[test]
    fn model_order_3(ops in proptest::collection::vec(arb_op(), 0..400)) {
        run_model(3, ops)?;
    }

    #[test]
    fn model_order_4(ops in proptest::collection::vec(arb_op(), 0..400)) {
        run_model(4, ops)?;
    }

    #[test]
    fn model_default_order(ops in proptest::collection::vec(arb_op(), 0..400)) {
        run_model(32, ops)?;
    }

    /// All nine start/end bound combinations agree with BTreeMap.
    #[test]
    fn range_bounds_match_model(keys in proptest::collection::btree_set(any::<u16>(), 0..300),
                                a in any::<u16>(), b in any::<u16>()) {
        let mut tree: BPlusTree<u16, ()> = BPlusTree::with_order(4);
        let mut model = BTreeMap::new();
        for k in keys {
            tree.insert(k, ());
            model.insert(k, ());
        }
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let starts = [Bound::Included(lo), Bound::Excluded(lo), Bound::Unbounded];
        let ends = [Bound::Included(hi), Bound::Excluded(hi), Bound::Unbounded];
        for s in starts {
            for e in ends {
                if matches!((s, e), (Bound::Excluded(x), Bound::Excluded(y)) if x == y) {
                    continue; // BTreeMap panics on this degenerate range
                }
                let got: Vec<u16> = tree.range((s, e)).map(|(k, _)| *k).collect();
                let want: Vec<u16> = model.range((s, e)).map(|(k, _)| *k).collect();
                prop_assert_eq!(got, want, "bounds {:?}..{:?}", s, e);
            }
        }
    }
}
