//! Descent-fast-path model tests: the branch-cached lookup path is
//! byte-identical to the cold root walk.
//!
//! The branch cache, the fused fence+search rung in `get`, and the
//! hinted in-node searches are pure accelerations — under any
//! interleaving of inserts, deletes, bulk builds, arena compactions
//! and COW clone-then-mutate forks, `get`/`range` must return exactly
//! what `get_cold`/`range_cold` return. Probes are woven *between*
//! the mutations so the cache is repeatedly populated, invalidated by
//! epoch bumps, and re-populated, and pinned snapshots are probed
//! again after their source keeps mutating (a cloned tree starts with
//! an empty cache; its answers must still match).

use proptest::prelude::*;
use xvi_btree::BPlusTree;

#[derive(Debug, Clone)]
enum Op {
    Insert(u16, u32),
    Remove(u16),
    /// Point-probe a run of adjacent keys warm and cold.
    Probe(u16),
    /// Range-probe `[k, k + len)` warm and cold.
    RangeProbe(u16, u16),
    /// Compact the arena (rebuilds node ids wholesale).
    Shrink,
    /// Pin a COW snapshot; it is probed after source mutations.
    Snapshot,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (any::<u16>(), any::<u32>()).prop_map(|(k, v)| Op::Insert(k % 512, v)),
        3 => any::<u16>().prop_map(|k| Op::Remove(k % 512)),
        4 => any::<u16>().prop_map(|k| Op::Probe(k % 512)),
        2 => (any::<u16>(), 1u16..24).prop_map(|(k, l)| Op::RangeProbe(k % 512, l)),
        1 => Just(Op::Shrink),
        1 => Just(Op::Snapshot),
    ]
}

/// Asserts warm and cold answers agree for a small neighborhood of
/// `k` — adjacent keys walk the probe ladder through primary hits,
/// parent-rung re-descents, and misses.
fn check_probes(tree: &BPlusTree<u16, u32>, k: u16) -> Result<(), TestCaseError> {
    for k in k.saturating_sub(1)..=k.saturating_add(2) {
        prop_assert_eq!(tree.get(&k), tree.get_cold(&k), "point divergence at {}", k);
    }
    Ok(())
}

fn check_range(tree: &BPlusTree<u16, u32>, k: u16, len: u16) -> Result<(), TestCaseError> {
    let hi = k.saturating_add(len);
    let warm: Vec<(u16, u32)> = tree.range(k..hi).map(|(a, b)| (*a, *b)).collect();
    let cold: Vec<(u16, u32)> = tree.range_cold(k..hi).map(|(a, b)| (*a, *b)).collect();
    prop_assert_eq!(warm, cold, "range divergence at {}..{}", k, hi);
    Ok(())
}

proptest! {
    /// Warm lookups and ranges match the cold walk at every point of
    /// an arbitrary mutation history, on snapshots pinned mid-history
    /// (probed again after the source mutates), and on a fork that
    /// keeps mutating after the clone.
    #[test]
    fn cached_descents_match_cold_walk(
        seed_n in 0usize..400,
        ops in proptest::collection::vec(arb_op(), 1..250),
        probe_keys in proptest::collection::vec(any::<u16>(), 8),
    ) {
        for order in [4usize, 32] {
            // Bulk-built start so the cache also sees bulk-loaded
            // topology, not just incrementally grown trees.
            let mut tree: BPlusTree<u16, u32> = BPlusTree::from_sorted_iter_with_order(
                order,
                (0..seed_n as u16).map(|k| (k, k as u32)),
            );
            let mut snapshots: Vec<BPlusTree<u16, u32>> = Vec::new();
            let mut snapshot_models: Vec<Vec<(u16, u32)>> = Vec::new();

            for op in &ops {
                match *op {
                    Op::Insert(k, v) => {
                        tree.insert(k, v);
                        check_probes(&tree, k)?;
                    }
                    Op::Remove(k) => {
                        tree.remove(&k);
                        check_probes(&tree, k)?;
                    }
                    Op::Probe(k) => check_probes(&tree, k)?,
                    Op::RangeProbe(k, len) => check_range(&tree, k, len)?,
                    Op::Shrink => {
                        tree.shrink_to_fit();
                        check_probes(&tree, 0)?;
                    }
                    Op::Snapshot => {
                        let snap = tree.clone();
                        snapshot_models
                            .push(snap.iter().map(|(k, v)| (*k, *v)).collect());
                        snapshots.push(snap);
                    }
                }
            }
            prop_assert!(tree.check_invariants().is_ok());

            // Pinned snapshots, probed after the source kept mutating:
            // their (fresh, empty) caches must warm up to the same
            // answers, and the content must still match the model
            // taken at clone time.
            for (snap, model) in snapshots.iter().zip(&snapshot_models) {
                for &k in &probe_keys {
                    check_probes(snap, k % 512)?;
                }
                check_range(snap, 0, 512)?;
                let now: Vec<(u16, u32)> = snap.iter().map(|(k, v)| (*k, *v)).collect();
                prop_assert_eq!(&now, model, "snapshot drifted after source mutation");
            }

            // A fork that mutates *after* cloning: COW detaches must
            // leave both sides' cached descents coherent.
            let mut fork = tree.clone();
            for &k in &probe_keys {
                fork.insert(k % 512, 0xF00D);
                check_probes(&fork, k % 512)?;
                check_probes(&tree, k % 512)?;
            }
            fork.shrink_to_fit();
            prop_assert!(fork.check_invariants().is_ok());
            for &k in &probe_keys {
                check_probes(&fork, k % 512)?;
            }
        }
    }
}
