//! Deterministic finite automata over byte classes.
//!
//! The per-type lexical languages (see [`crate::lang`]) are defined as
//! DFAs over a small alphabet of *byte classes* (whitespace, digit,
//! sign, …). Keeping the alphabet small keeps the transition tables and
//! the derived state-combination tables compact.

/// A DFA state index.
pub type DfaState = u16;

/// The dead ("reject") state sentinel.
pub const DFA_DEAD: DfaState = u16::MAX;

/// Byte class 0 is reserved for bytes outside every declared class;
/// it transitions to [`DFA_DEAD`] from every state.
pub const ILLEGAL_CLASS: u8 = 0;

/// A deterministic finite automaton over byte classes.
#[derive(Debug, Clone)]
pub struct Dfa {
    classes: Box<[u8; 256]>,
    n_classes: usize,
    n_states: usize,
    start: DfaState,
    accept: Vec<bool>,
    /// Row-major: `trans[state * n_classes + class]`.
    trans: Vec<DfaState>,
}

impl Dfa {
    /// Number of states (excluding the implicit dead state).
    pub fn n_states(&self) -> usize {
        self.n_states
    }

    /// Number of byte classes (including the illegal class 0).
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// The start state.
    pub fn start(&self) -> DfaState {
        self.start
    }

    /// Whether `s` is an accepting state.
    pub fn is_accept(&self, s: DfaState) -> bool {
        self.accept[s as usize]
    }

    /// The byte class of `b`.
    #[inline]
    pub fn class_of(&self, b: u8) -> u8 {
        self.classes[b as usize]
    }

    /// One transition step; `DFA_DEAD` is absorbing.
    #[inline]
    pub fn step(&self, s: DfaState, class: u8) -> DfaState {
        if s == DFA_DEAD {
            return DFA_DEAD;
        }
        self.trans[s as usize * self.n_classes + class as usize]
    }

    /// Runs the DFA from `from` over `bytes`; returns the final state
    /// (possibly `DFA_DEAD`).
    pub fn run_from(&self, from: DfaState, bytes: &[u8]) -> DfaState {
        let mut s = from;
        for &b in bytes {
            s = self.step(s, self.class_of(b));
            if s == DFA_DEAD {
                break;
            }
        }
        s
    }

    /// Whether the *whole* string is in the DFA's language.
    pub fn accepts(&self, s: &str) -> bool {
        let end = self.run_from(self.start, s.as_bytes());
        end != DFA_DEAD && self.is_accept(end)
    }
}

/// Builder for [`Dfa`]s; used by the language definitions.
#[derive(Debug)]
pub struct DfaBuilder {
    classes: Box<[u8; 256]>,
    n_classes: usize,
    n_states: usize,
    start: Option<DfaState>,
    accept: Vec<bool>,
    edges: Vec<(DfaState, u8, DfaState)>,
}

impl Default for DfaBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl DfaBuilder {
    /// Creates an empty builder.
    pub fn new() -> DfaBuilder {
        DfaBuilder {
            classes: Box::new([ILLEGAL_CLASS; 256]),
            n_classes: 1, // class 0 = illegal
            n_states: 0,
            start: None,
            accept: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Declares a byte class covering `bytes`.
    ///
    /// # Panics
    /// Panics if any byte is already classified.
    pub fn class(&mut self, bytes: &[u8]) -> u8 {
        let id = self.n_classes as u8;
        self.n_classes += 1;
        for &b in bytes {
            assert_eq!(
                self.classes[b as usize], ILLEGAL_CLASS,
                "byte {b:#x} is already in a class"
            );
            self.classes[b as usize] = id;
        }
        id
    }

    /// Adds a state; the first added state becomes the start state.
    pub fn state(&mut self, accept: bool) -> DfaState {
        let id = self.n_states as DfaState;
        self.n_states += 1;
        self.accept.push(accept);
        if self.start.is_none() {
            self.start = Some(id);
        }
        id
    }

    /// Adds the transition `from --class--> to`.
    pub fn edge(&mut self, from: DfaState, class: u8, to: DfaState) {
        self.edges.push((from, class, to));
    }

    /// Adds one transition per class in `classes`.
    pub fn edges(&mut self, from: DfaState, classes: &[u8], to: DfaState) {
        for &c in classes {
            self.edge(from, c, to);
        }
    }

    /// Finalises the DFA.
    ///
    /// # Panics
    /// Panics if no state was added, a transition is duplicated, or a
    /// transition uses the illegal class.
    pub fn build(self) -> Dfa {
        let start = self.start.expect("DFA needs at least one state");
        let mut trans = vec![DFA_DEAD; self.n_states * self.n_classes];
        for (from, class, to) in self.edges {
            assert_ne!(
                class, ILLEGAL_CLASS,
                "cannot add edges on the illegal class"
            );
            let cell = &mut trans[from as usize * self.n_classes + class as usize];
            assert_eq!(
                *cell, DFA_DEAD,
                "duplicate transition from {from} on {class}"
            );
            *cell = to;
        }
        Dfa {
            classes: self.classes,
            n_classes: self.n_classes,
            n_states: self.n_states,
            start,
            accept: self.accept,
            trans,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny DFA for `a+b*`.
    fn sample() -> Dfa {
        let mut b = DfaBuilder::new();
        let ca = b.class(b"a");
        let cb = b.class(b"b");
        let s0 = b.state(false);
        let s1 = b.state(true);
        let s2 = b.state(true);
        b.edge(s0, ca, s1);
        b.edge(s1, ca, s1);
        b.edge(s1, cb, s2);
        b.edge(s2, cb, s2);
        b.build()
    }

    #[test]
    fn accepts_and_rejects() {
        let d = sample();
        assert!(d.accepts("a"));
        assert!(d.accepts("aaabbb"));
        assert!(!d.accepts(""));
        assert!(!d.accepts("b"));
        assert!(!d.accepts("ab a"));
        assert!(!d.accepts("abc"));
    }

    #[test]
    fn dead_state_is_absorbing() {
        let d = sample();
        assert_eq!(d.run_from(d.start(), b"ba"), DFA_DEAD);
        assert_eq!(d.step(DFA_DEAD, 1), DFA_DEAD);
    }

    #[test]
    fn unknown_bytes_map_to_illegal_class() {
        let d = sample();
        assert_eq!(d.class_of(b'z'), ILLEGAL_CLASS);
        assert_eq!(d.run_from(d.start(), b"z"), DFA_DEAD);
    }

    #[test]
    #[should_panic(expected = "already in a class")]
    fn overlapping_classes_rejected() {
        let mut b = DfaBuilder::new();
        b.class(b"ab");
        b.class(b"bc");
    }

    #[test]
    #[should_panic(expected = "duplicate transition")]
    fn duplicate_edges_rejected() {
        let mut b = DfaBuilder::new();
        let c = b.class(b"a");
        let s = b.state(true);
        b.edge(s, c, s);
        b.edge(s, c, s);
        b.build();
    }
}
