//! # xvi-fsm — lexical FSMs, state combination tables, typed values
//!
//! This crate implements the machinery behind the paper's *typed
//! range-lookup index* (§4): for each supported XML type a finite state
//! machine recognises the type's lexical representations, every text
//! node is assigned the state the FSM stops in (or *reject*), and a
//! **state combination table** (SCT) combines the states of adjacent
//! values so that mixed-content nodes like
//!
//! ```xml
//! <weight><kilos>78</kilos>.<grams>230</grams></weight>
//! ```
//!
//! can be recognised as the double `78.230` without re-reading any
//! character data.
//!
//! ## The normalised FSM as a transition monoid
//!
//! The paper normalises its FSM by duplicating states until "the path
//! that leads to each state" is unique, and obtains 60 states for
//! doubles. We implement the construction this informal recipe
//! approximates exactly: the **transition monoid** of the DFA. Every
//! string `w` induces a partial function `f_w : Q → Q` ("if I was in
//! state `q` before reading `w`, where am I after?"). Two strings get
//! the same label iff they induce the same function, concatenation is
//! function composition — which is precisely what the SCT tabulates —
//! and the everywhere-undefined function is the absorbing *reject*
//! state. The derivation is automatic for **any** DFA, which is what
//! makes the index family generic: adding an XML type means writing
//! only its lexical DFA (see [`lang`]).
//!
//! A node's combined state is *complete* ([`Sct::is_complete`]) iff its
//! string value is a full lexical representation, i.e. `f_w(start) ∈
//! F`. Only complete nodes enter the range B+tree; non-complete,
//! non-reject states ("potential" values like `"."` or `"E+93 "`) are
//! kept as 1-byte-ish per-node states exactly as the paper stores them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dfa;
pub mod lang;
mod sct;
mod types;

pub use dfa::{Dfa, DfaBuilder, DFA_DEAD};
pub use sct::{Sct, StateId};
pub use types::{analyzer, TypedAnalyzer, TypedValue, XmlType};
