//! Typed-value analyzers: one DFA + SCT + cast per XML type.

use std::sync::OnceLock;

use crate::dfa::Dfa;
use crate::sct::{Sct, StateId};

/// The XML typed values with a range-lookup index implementation.
///
/// `Double` is the paper's primary example ("an index on xs:double can
/// be used to accelerate predicates on all numerical XQuery types");
/// `DateTime` is the other type it calls out as "of particular
/// interest".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum XmlType {
    /// `xs:double` (covers all numeric XQuery predicates).
    Double,
    /// `xs:decimal` (no exponent).
    Decimal,
    /// `xs:integer`.
    Integer,
    /// `xs:boolean`.
    Boolean,
    /// `xs:dateTime`, keyed by epoch milliseconds.
    DateTime,
    /// `xs:date`, keyed by the epoch milliseconds of its midnight.
    Date,
    /// `xs:time`, keyed by milliseconds since midnight.
    Time,
}

impl XmlType {
    /// All supported types.
    pub const ALL: [XmlType; 7] = [
        XmlType::Double,
        XmlType::Decimal,
        XmlType::Integer,
        XmlType::Boolean,
        XmlType::DateTime,
        XmlType::Date,
        XmlType::Time,
    ];

    /// The type's lexical DFA.
    pub fn dfa(self) -> Dfa {
        match self {
            XmlType::Double => crate::lang::double::dfa(),
            XmlType::Decimal => crate::lang::decimal::dfa(),
            XmlType::Integer => crate::lang::integer::dfa(),
            XmlType::Boolean => crate::lang::boolean::dfa(),
            XmlType::DateTime => crate::lang::date_time::dfa(),
            XmlType::Date => crate::lang::date::dfa(),
            XmlType::Time => crate::lang::time::dfa(),
        }
    }

    /// Casts a *complete* lexical representation to the type's ordered
    /// key (see [`TypedValue`]).
    pub fn cast(self, s: &str) -> Option<f64> {
        match self {
            XmlType::Double => crate::lang::double::cast(s),
            XmlType::Decimal => crate::lang::decimal::cast(s),
            XmlType::Integer => crate::lang::integer::cast(s),
            XmlType::Boolean => crate::lang::boolean::cast(s),
            XmlType::DateTime => crate::lang::date_time::cast(s),
            XmlType::Date => crate::lang::date::cast(s),
            XmlType::Time => crate::lang::time::cast(s),
        }
    }

    /// Short lowercase name (for reports and examples).
    pub fn name(self) -> &'static str {
        match self {
            XmlType::Double => "double",
            XmlType::Decimal => "decimal",
            XmlType::Integer => "integer",
            XmlType::Boolean => "boolean",
            XmlType::DateTime => "dateTime",
            XmlType::Date => "date",
            XmlType::Time => "time",
        }
    }
}

/// A typed value as stored in a range index: the type tag plus its
/// ordered numeric key (`f64` for doubles/decimals/integers, epoch
/// milliseconds for dateTime, 0/1 for booleans).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TypedValue {
    /// The XML type this value belongs to.
    pub ty: XmlType,
    /// The ordered key.
    pub key: f64,
}

/// DFA + transition monoid + cast for one XML type.
///
/// Obtain shared instances with [`analyzer`]; construction builds the
/// SCT, so instances are cached per type for the whole process.
#[derive(Debug)]
pub struct TypedAnalyzer {
    ty: XmlType,
    dfa: Dfa,
    sct: Sct,
}

impl TypedAnalyzer {
    /// Builds an analyzer (prefer [`analyzer`] for a cached instance).
    pub fn new(ty: XmlType) -> TypedAnalyzer {
        let dfa = ty.dfa();
        let sct = Sct::build(&dfa);
        TypedAnalyzer { ty, dfa, sct }
    }

    /// The analyzed type.
    pub fn xml_type(&self) -> XmlType {
        self.ty
    }

    /// The underlying lexical DFA.
    pub fn dfa(&self) -> &Dfa {
        &self.dfa
    }

    /// The state combination table.
    pub fn sct(&self) -> &Sct {
        &self.sct
    }

    /// State of a text value (`None` = reject).
    pub fn state_of(&self, text: &str) -> Option<StateId> {
        self.sct.state_of(text)
    }

    /// SCT probe combining two sibling states.
    pub fn combine(&self, a: Option<StateId>, b: Option<StateId>) -> Option<StateId> {
        self.sct.combine(a, b)
    }

    /// Whether `state` denotes a complete (castable) value.
    pub fn is_complete(&self, state: StateId) -> bool {
        self.sct.is_complete(state)
    }

    /// Casts a string whose state is complete into its typed value.
    pub fn cast(&self, text: &str) -> Option<TypedValue> {
        let key = self.ty.cast(text)?;
        Some(TypedValue { ty: self.ty, key })
    }

    /// Convenience: full analysis of one value.
    pub fn analyze(&self, text: &str) -> Option<(StateId, Option<TypedValue>)> {
        let s = self.state_of(text)?;
        let v = self.is_complete(s).then(|| self.cast(text)).flatten();
        Some((s, v))
    }
}

/// Returns the process-wide shared analyzer for `ty`. The SCT is built
/// once per type on first use.
pub fn analyzer(ty: XmlType) -> &'static TypedAnalyzer {
    static CELLS: [OnceLock<TypedAnalyzer>; 7] = [
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
    ];
    let idx = match ty {
        XmlType::Double => 0,
        XmlType::Decimal => 1,
        XmlType::Integer => 2,
        XmlType::Boolean => 3,
        XmlType::DateTime => 4,
        XmlType::Date => 5,
        XmlType::Time => 6,
    };
    CELLS[idx].get_or_init(|| TypedAnalyzer::new(ty))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyzers_are_cached() {
        let a = analyzer(XmlType::Double);
        let b = analyzer(XmlType::Double);
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    fn paper_examples_states() {
        let a = analyzer(XmlType::Double);
        // "78" — complete double.
        let s78 = a.state_of("78").unwrap();
        assert!(a.is_complete(s78));
        // "." — potential but not complete.
        let sdot = a.state_of(".").unwrap();
        assert!(!a.is_complete(sdot));
        // "E+93 " — a valid *suffix* fragment, not complete.
        let se = a.state_of("E+93 ").unwrap();
        assert!(!a.is_complete(se));
        // " +32.3" — complete (leading whitespace allowed).
        let s32 = a.state_of(" +32.3").unwrap();
        assert!(a.is_complete(s32));
        // "42 text" — reject.
        assert_eq!(a.state_of("42 text"), None);
    }

    #[test]
    fn weight_mixed_content_combines_to_78_230() {
        // <kilos>78</kilos>.<grams>230</grams> → "78" ⧺ "." ⧺ "230"
        let a = analyzer(XmlType::Double);
        let s = a.combine(
            a.combine(a.state_of("78"), a.state_of(".")),
            a.state_of("230"),
        );
        let s = s.expect("78.230 is a potential value");
        assert!(a.is_complete(s));
        assert_eq!(a.cast("78.230").unwrap().key, 78.230);
    }

    #[test]
    fn all_types_build_and_answer() {
        for ty in XmlType::ALL {
            let a = analyzer(ty);
            assert!(a.sct().num_states() > 1, "{ty:?}");
            // The empty string is a potential value everywhere.
            assert!(a.state_of("").is_some());
        }
    }

    #[test]
    fn analyze_returns_state_and_value() {
        let a = analyzer(XmlType::Double);
        let (s, v) = a.analyze("42").unwrap();
        assert!(a.is_complete(s));
        assert_eq!(v.unwrap().key, 42.0);
        let (s, v) = a.analyze("42.").unwrap();
        assert!(a.is_complete(s));
        assert_eq!(v.unwrap().key, 42.0);
        let (_, v) = a.analyze(".").unwrap();
        assert!(v.is_none());
        assert!(a.analyze("not a number").is_none());
    }

    #[test]
    fn typed_value_keys_order_across_types() {
        let b = analyzer(XmlType::Boolean);
        assert_eq!(b.cast("true").unwrap().key, 1.0);
        let i = analyzer(XmlType::Integer);
        assert_eq!(i.cast(" -42 ").unwrap().key, -42.0);
        let d = analyzer(XmlType::DateTime);
        assert_eq!(d.cast("1970-01-01T00:00:00Z").unwrap().key, 0.0);
    }
}
