//! `xs:dateTime` — the other type the paper singles out (§1):
//! `ws* '-'? yyyy '-' mm '-' dd 'T' hh ':' mm ':' ss ('.' digits+)?
//!  ( 'Z' | ('+'|'-') hh ':' mm )? ws*`
//! with `yyyy` being four or more digits.
//!
//! Field *ranges* (month ≤ 12 etc.) are checked by [`cast`], not the
//! DFA — the lexical FSM only needs to bound the indexing candidates,
//! and keeping it purely structural keeps the transition monoid small.

use crate::dfa::{Dfa, DfaBuilder};
use crate::lang::WS;

/// Builds the dateTime DFA.
pub fn dfa() -> Dfa {
    let mut b = DfaBuilder::new();
    let ws = b.class(WS);
    let digit = b.class(b"0123456789");
    let minus = b.class(b"-");
    let plus = b.class(b"+");
    let colon = b.class(b":");
    let dot = b.class(b".");
    let tee = b.class(b"T");
    let zee = b.class(b"Z");

    let start = b.state(false);
    let neg = b.state(false);
    let y1 = b.state(false);
    let y2 = b.state(false);
    let y3 = b.state(false);
    let y4 = b.state(false); // ≥4 year digits; loops on digit
    let mon0 = b.state(false);
    let mon1 = b.state(false);
    let mon2 = b.state(false);
    let day0 = b.state(false);
    let day1 = b.state(false);
    let day2 = b.state(false);
    let h0 = b.state(false);
    let h1 = b.state(false);
    let h2 = b.state(false);
    let mi0 = b.state(false);
    let mi1 = b.state(false);
    let mi2 = b.state(false);
    let s0 = b.state(false);
    let s1 = b.state(false);
    let s2 = b.state(true); // complete without fraction/zone
    let fr0 = b.state(false);
    let fr1 = b.state(true); // fractional seconds
    let tz0 = b.state(false);
    let tzh1 = b.state(false);
    let tzh2 = b.state(false);
    let tzc = b.state(false);
    let tzm1 = b.state(false);
    let tzm2 = b.state(true);
    let zulu = b.state(true);
    let end_ws = b.state(true);

    b.edge(start, ws, start);
    b.edge(start, minus, neg);
    b.edge(start, digit, y1);
    b.edge(neg, digit, y1);
    b.edge(y1, digit, y2);
    b.edge(y2, digit, y3);
    b.edge(y3, digit, y4);
    b.edge(y4, digit, y4);
    b.edge(y4, minus, mon0);
    b.edge(mon0, digit, mon1);
    b.edge(mon1, digit, mon2);
    b.edge(mon2, minus, day0);
    b.edge(day0, digit, day1);
    b.edge(day1, digit, day2);
    b.edge(day2, tee, h0);
    b.edge(h0, digit, h1);
    b.edge(h1, digit, h2);
    b.edge(h2, colon, mi0);
    b.edge(mi0, digit, mi1);
    b.edge(mi1, digit, mi2);
    b.edge(mi2, colon, s0);
    b.edge(s0, digit, s1);
    b.edge(s1, digit, s2);

    b.edge(s2, dot, fr0);
    b.edge(s2, zee, zulu);
    b.edge(s2, plus, tz0);
    b.edge(s2, minus, tz0);
    b.edge(s2, ws, end_ws);

    b.edge(fr0, digit, fr1);
    b.edge(fr1, digit, fr1);
    b.edge(fr1, zee, zulu);
    b.edge(fr1, plus, tz0);
    b.edge(fr1, minus, tz0);
    b.edge(fr1, ws, end_ws);

    b.edge(tz0, digit, tzh1);
    b.edge(tzh1, digit, tzh2);
    b.edge(tzh2, colon, tzc);
    b.edge(tzc, digit, tzm1);
    b.edge(tzm1, digit, tzm2);
    b.edge(tzm2, ws, end_ws);

    b.edge(zulu, ws, end_ws);
    b.edge(end_ws, ws, end_ws);

    b.build()
}

/// Casts a complete dateTime to milliseconds since the epoch
/// (1970-01-01T00:00:00Z) as an `f64` ordering key. Returns `None` if
/// a field is out of range (month 13 etc.) — lexically valid but not a
/// value, so such nodes are not range-indexed.
pub fn cast(s: &str) -> Option<f64> {
    let t = s.trim_matches([' ', '\t', '\r', '\n']);
    let (neg_year, t) = match t.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, t),
    };

    // Split off the timezone first (Z or ±hh:mm at the very end).
    let (body, tz_offset_min) = if let Some(b) = t.strip_suffix('Z') {
        (b, 0i64)
    } else if t.len() > 6
        && (t.as_bytes()[t.len() - 6] == b'+' || t.as_bytes()[t.len() - 6] == b'-')
    {
        let (b, z) = t.split_at(t.len() - 6);
        let sign: i64 = if z.starts_with('-') { -1 } else { 1 };
        let hh: i64 = z[1..3].parse().ok()?;
        let mm: i64 = z[4..6].parse().ok()?;
        if hh > 14 || mm > 59 {
            return None;
        }
        (b, sign * (hh * 60 + mm))
    } else {
        (t, 0i64) // no timezone: treat as UTC, like the paper's engine
    };

    // body = yyyy-mm-ddThh:mm:ss(.fff)?
    let (date, time) = body.split_once('T')?;
    let mut dparts = date.splitn(3, '-');
    let year: i64 = dparts.next()?.parse().ok()?;
    let month: u32 = dparts.next()?.parse().ok()?;
    let day: u32 = dparts.next()?.parse().ok()?;
    let year = if neg_year { -year } else { year };

    let mut tparts = time.splitn(3, ':');
    let hour: u32 = tparts.next()?.parse().ok()?;
    let minute: u32 = tparts.next()?.parse().ok()?;
    let sec_str = tparts.next()?;
    let (sec_whole, millis) = match sec_str.split_once('.') {
        Some((w, f)) => {
            let frac: String = f.chars().chain("000".chars()).take(3).collect();
            (w, frac.parse::<u32>().ok()?)
        }
        None => (sec_str, 0),
    };
    let second: u32 = sec_whole.parse().ok()?;

    if !(1..=12).contains(&month)
        || day < 1
        || day > days_in_month(year, month)
        || hour > 24
        || (hour == 24 && (minute != 0 || second != 0 || millis != 0))
        || minute > 59
        || second > 60
    {
        return None;
    }

    let days = days_from_civil(year, month, day);
    let secs = days * 86_400 + i64::from(hour) * 3600 + i64::from(minute) * 60 + i64::from(second)
        - tz_offset_min * 60;
    Some(secs as f64 * 1000.0 + f64::from(millis))
}

/// Days from 1970-01-01 (Howard Hinnant's `days_from_civil`).
fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = y - i64::from(m <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = i64::from((m + 9) % 12); // March-based month
    let doy = (153 * mp + 2) / 5 + i64::from(d) - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe - 719_468
}

fn days_in_month(y: i64, m: u32) -> u32 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if (y % 4 == 0 && y % 100 != 0) || y % 400 == 0 {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexical_space() {
        let d = dfa();
        for s in [
            "1966-09-26T00:00:00",
            "2008-12-31T23:59:59Z",
            "2008-12-31T23:59:59.123+01:00",
            " 0001-01-01T00:00:00 ",
            "-0044-03-15T12:00:00",
            "12008-01-01T00:00:00", // 5-digit year
        ] {
            assert!(d.accepts(s), "{s:?} should be lexically valid");
        }
        for s in [
            "",
            "1966-09-26",            // date only
            "1966-9-26T00:00:00",    // short month
            "1966-09-26 00:00:00",   // missing T
            "1966-09-26T00:00",      // missing seconds
            "1966-09-26T00:00:00+1", // bad zone
            "christmas",
        ] {
            assert!(!d.accepts(s), "{s:?} should be rejected");
        }
    }

    #[test]
    fn epoch_is_zero() {
        assert_eq!(cast("1970-01-01T00:00:00Z"), Some(0.0));
        assert_eq!(cast("1970-01-01T00:00:00"), Some(0.0));
    }

    #[test]
    fn known_timestamps() {
        // 2000-01-01T00:00:00Z = 946684800 seconds.
        assert_eq!(cast("2000-01-01T00:00:00Z"), Some(946_684_800_000.0));
        // One hour east of UTC is one hour earlier in absolute time.
        assert_eq!(cast("2000-01-01T01:00:00+01:00"), Some(946_684_800_000.0));
        // Fractional seconds.
        assert_eq!(cast("1970-01-01T00:00:00.5Z"), Some(500.0));
    }

    #[test]
    fn ordering_is_chronological() {
        let times = [
            "-0044-03-15T12:00:00",
            "1907-01-01T00:00:00",
            "1966-09-26T00:00:00",
            "1970-01-01T00:00:01",
            "2008-12-31T23:59:59",
            "2108-01-01T00:00:00",
        ];
        let keys: Vec<f64> = times.iter().map(|t| cast(t).unwrap()).collect();
        for w in keys.windows(2) {
            assert!(w[0] < w[1], "{keys:?} must be increasing");
        }
    }

    #[test]
    fn range_violations_fail_cast_not_dfa() {
        let d = dfa();
        for s in [
            "2001-13-01T00:00:00",
            "2001-02-30T00:00:00",
            "2001-01-01T25:00:00",
        ] {
            assert!(d.accepts(s), "{s:?} is lexically fine");
            assert_eq!(cast(s), None, "{s:?} must fail the cast");
        }
    }

    #[test]
    fn leap_year_handling() {
        assert!(cast("2000-02-29T00:00:00").is_some()); // 400-year leap
        assert!(cast("1900-02-29T00:00:00").is_none()); // 100-year non-leap
        assert!(cast("2004-02-29T00:00:00").is_some());
        assert!(cast("2005-02-29T00:00:00").is_none());
    }
}
