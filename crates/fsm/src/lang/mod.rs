//! Lexical languages of the supported XML typed values.
//!
//! Each submodule defines a DFA for one type's lexical space (with the
//! paper's leading/trailing-whitespace allowance) plus a `cast`
//! function turning a complete lexical representation into an ordered
//! numeric key. Adding a type to the index family = adding a module
//! here; the SCT and all index machinery are derived automatically.

pub mod boolean;
pub mod date;
pub mod date_time;
pub mod decimal;
pub mod double;
pub mod integer;
pub mod time;

pub(crate) const WS: &[u8] = b" \t\r\n";
