//! `xs:date` — `ws* '-'? yyyy '-' mm '-' dd ( 'Z' | ('+'|'-') hh ':' mm )? ws*`.
//!
//! Same structural-lexical split as dateTime: the DFA bounds the
//! candidates, [`cast`] checks field ranges and produces the epoch-
//! millisecond key of the date's midnight (UTC, after applying any
//! timezone offset), so dates and dateTimes order consistently.

use crate::dfa::{Dfa, DfaBuilder};
use crate::lang::WS;

/// Builds the date DFA.
pub fn dfa() -> Dfa {
    let mut b = DfaBuilder::new();
    let ws = b.class(WS);
    let digit = b.class(b"0123456789");
    let minus = b.class(b"-");
    let plus = b.class(b"+");
    let colon = b.class(b":");
    let zee = b.class(b"Z");

    let start = b.state(false);
    let neg = b.state(false);
    let y1 = b.state(false);
    let y2 = b.state(false);
    let y3 = b.state(false);
    let y4 = b.state(false);
    let mon0 = b.state(false);
    let mon1 = b.state(false);
    let mon2 = b.state(false);
    let day0 = b.state(false);
    let day1 = b.state(false);
    let day2 = b.state(true); // complete without zone
    let tz0 = b.state(false);
    let tzh1 = b.state(false);
    let tzh2 = b.state(false);
    let tzc = b.state(false);
    let tzm1 = b.state(false);
    let tzm2 = b.state(true);
    let zulu = b.state(true);
    let end_ws = b.state(true);

    b.edge(start, ws, start);
    b.edge(start, minus, neg);
    b.edge(start, digit, y1);
    b.edge(neg, digit, y1);
    b.edge(y1, digit, y2);
    b.edge(y2, digit, y3);
    b.edge(y3, digit, y4);
    b.edge(y4, digit, y4);
    b.edge(y4, minus, mon0);
    b.edge(mon0, digit, mon1);
    b.edge(mon1, digit, mon2);
    b.edge(mon2, minus, day0);
    b.edge(day0, digit, day1);
    b.edge(day1, digit, day2);
    b.edge(day2, zee, zulu);
    b.edge(day2, plus, tz0);
    b.edge(day2, minus, tz0);
    b.edge(day2, ws, end_ws);
    b.edge(tz0, digit, tzh1);
    b.edge(tzh1, digit, tzh2);
    b.edge(tzh2, colon, tzc);
    b.edge(tzc, digit, tzm1);
    b.edge(tzm1, digit, tzm2);
    b.edge(tzm2, ws, end_ws);
    b.edge(zulu, ws, end_ws);
    b.edge(end_ws, ws, end_ws);

    b.build()
}

/// Casts a complete date to epoch milliseconds of its (zone-adjusted)
/// midnight. Returns `None` for out-of-range fields.
pub fn cast(s: &str) -> Option<f64> {
    let t = s.trim_matches([' ', '\t', '\r', '\n']);
    // Reuse the dateTime machinery by pinning midnight onto the date.
    let (date_part, zone) = split_zone(t);
    let datetime = format!("{date_part}T00:00:00{zone}");
    crate::lang::date_time::cast(&datetime)
}

/// Splits a trailing `Z` / `±hh:mm` zone off a date literal.
fn split_zone(t: &str) -> (&str, &str) {
    if let Some(stripped) = t.strip_suffix('Z') {
        return (stripped, "Z");
    }
    if t.len() > 6 {
        let tail = &t[t.len() - 6..];
        let b = tail.as_bytes();
        if (b[0] == b'+' || b[0] == b'-') && b[3] == b':' {
            return (&t[..t.len() - 6], tail);
        }
    }
    (t, "")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexical_space() {
        let d = dfa();
        for s in [
            "1966-09-26",
            "2008-12-31Z",
            " 0001-01-01 ",
            "-0044-03-15",
            "2000-01-01+05:30",
        ] {
            assert!(d.accepts(s), "{s:?}");
        }
        for s in [
            "",
            "1966-9-26",
            "1966-09-26T00:00:00",
            "26-09-1966",
            "1966/09/26",
        ] {
            assert!(!d.accepts(s), "{s:?}");
        }
    }

    #[test]
    fn casts_match_datetime_midnights() {
        assert_eq!(cast("1970-01-01"), Some(0.0));
        assert_eq!(cast("1970-01-02"), Some(86_400_000.0));
        assert_eq!(
            cast("2000-01-01Z"),
            crate::lang::date_time::cast("2000-01-01T00:00:00Z")
        );
        // One hour east: midnight local is 23:00 UTC the day before.
        assert_eq!(cast("1970-01-01+01:00"), Some(-3_600_000.0));
        assert_eq!(cast("2001-13-01"), None);
    }

    #[test]
    fn ordering() {
        let days = ["1907-01-01", "1966-09-26", "1970-01-01", "2008-12-31"];
        let keys: Vec<f64> = days.iter().map(|d| cast(d).unwrap()).collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }
}
