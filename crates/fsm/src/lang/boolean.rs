//! `xs:boolean` — `ws* ('true' | 'false' | '1' | '0') ws*`.

use crate::dfa::{Dfa, DfaBuilder};
use crate::lang::WS;

/// Builds the boolean DFA.
pub fn dfa() -> Dfa {
    let mut b = DfaBuilder::new();
    let ws = b.class(WS);
    let t = b.class(b"t");
    let r = b.class(b"r");
    let u = b.class(b"u");
    let e = b.class(b"e");
    let f = b.class(b"f");
    let a = b.class(b"a");
    let l = b.class(b"l");
    let s = b.class(b"s");
    let one = b.class(b"1");
    let zero = b.class(b"0");

    let start = b.state(false);
    let end = b.state(true); // accepted literal, trailing ws loops here

    // t r u e
    let st = b.state(false);
    let str_ = b.state(false);
    let stru = b.state(false);
    // f a l s e
    let sf = b.state(false);
    let sfa = b.state(false);
    let sfal = b.state(false);
    let sfals = b.state(false);

    b.edge(start, ws, start);
    b.edge(start, one, end);
    b.edge(start, zero, end);
    b.edge(start, t, st);
    b.edge(st, r, str_);
    b.edge(str_, u, stru);
    b.edge(stru, e, end);
    b.edge(start, f, sf);
    b.edge(sf, a, sfa);
    b.edge(sfa, l, sfal);
    b.edge(sfal, s, sfals);
    b.edge(sfals, e, end);
    b.edge(end, ws, end);

    b.build()
}

/// Casts a complete boolean to 1.0 / 0.0.
pub fn cast(s: &str) -> Option<f64> {
    match s.trim_matches([' ', '\t', '\r', '\n']) {
        "true" | "1" => Some(1.0),
        "false" | "0" => Some(0.0),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boolean_language() {
        let d = dfa();
        for s in ["true", "false", "1", "0", " true ", "\t0\n"] {
            assert!(d.accepts(s), "{s:?}");
        }
        for s in ["TRUE", "yes", "10", "tru", "truee", "", "2"] {
            assert!(!d.accepts(s), "{s:?}");
        }
    }

    #[test]
    fn casts() {
        assert_eq!(cast("true"), Some(1.0));
        assert_eq!(cast(" 0 "), Some(0.0));
        assert_eq!(cast("nope"), None);
    }
}
