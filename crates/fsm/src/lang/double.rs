//! `xs:double` — the paper's Figure 5 language:
//! `ws* sign? ( digits ('.' digits*)? | '.' digits ) ([eE] sign? digits)? ws*`.

use crate::dfa::{Dfa, DfaBuilder};
use crate::lang::WS;

/// Builds the double DFA.
pub fn dfa() -> Dfa {
    let mut b = DfaBuilder::new();
    let ws = b.class(WS);
    let digit = b.class(b"0123456789");
    let sign = b.class(b"+-");
    let dot = b.class(b".");
    let exp = b.class(b"eE");

    let start = b.state(false); // leading whitespace loop
    let signed = b.state(false); // after mantissa sign
    let int = b.state(true); // integer digits: "42"
    let dot_only = b.state(false); // "." with no digits yet
    let int_dot = b.state(true); // "42."
    let frac = b.state(true); // "42.5" or ".5"
    let e = b.state(false); // "42e"
    let e_sign = b.state(false); // "42e-"
    let e_digits = b.state(true); // "42e-1"
    let end_ws = b.state(true); // trailing whitespace loop

    b.edge(start, ws, start);
    b.edge(start, sign, signed);
    b.edge(start, digit, int);
    b.edge(start, dot, dot_only);

    b.edge(signed, digit, int);
    b.edge(signed, dot, dot_only);

    b.edge(int, digit, int);
    b.edge(int, dot, int_dot);
    b.edge(int, exp, e);
    b.edge(int, ws, end_ws);

    b.edge(dot_only, digit, frac);

    b.edge(int_dot, digit, frac);
    b.edge(int_dot, exp, e);
    b.edge(int_dot, ws, end_ws);

    b.edge(frac, digit, frac);
    b.edge(frac, exp, e);
    b.edge(frac, ws, end_ws);

    b.edge(e, sign, e_sign);
    b.edge(e, digit, e_digits);

    b.edge(e_sign, digit, e_digits);

    b.edge(e_digits, digit, e_digits);
    b.edge(e_digits, ws, end_ws);

    b.edge(end_ws, ws, end_ws);

    b.build()
}

/// Casts a complete lexical representation to its `f64` value.
///
/// Must only be called on strings the DFA accepts; returns `None`
/// otherwise (defensive, not a validation path).
pub fn cast(s: &str) -> Option<f64> {
    let t = s.trim_matches([' ', '\t', '\r', '\n']);
    // Rust's f64 parser accepts a superset ("inf", "NaN"); the DFA has
    // already confined us to the XML lexical space.
    let t = t.strip_suffix('.').unwrap_or(t); // "42." is valid XML, not valid Rust
    t.parse::<f64>().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_paper_examples() {
        let d = dfa();
        for s in [
            "42", "42.0", " +4.2E1", "78.230", "0", "-0.5", ".5", "42.", "1e10", "  7  ", "+.5E-3",
        ] {
            assert!(d.accepts(s), "{s:?} should be a valid double");
        }
    }

    #[test]
    fn rejects_non_doubles() {
        let d = dfa();
        for s in [
            "", " ", "42 text", "E+93 ", ".", "+", "4.2.3", "1e", "1e+", "--1", "1 2", "4 2",
        ] {
            assert!(!d.accepts(s), "{s:?} should not be a complete double");
        }
    }

    #[test]
    fn casts_match_values() {
        assert_eq!(cast("42").unwrap(), 42.0);
        assert_eq!(cast("42.0").unwrap(), 42.0);
        assert_eq!(cast(" +4.2E1").unwrap(), 42.0);
        assert_eq!(cast("78.230").unwrap(), 78.230);
        assert_eq!(cast("42.").unwrap(), 42.0);
        assert_eq!(cast("-1e-2").unwrap(), -0.01);
    }
}
