//! `xs:time` — `ws* hh ':' mm ':' ss ('.' digits+)?
//! ( 'Z' | ('+'|'-') hh ':' mm )? ws*`, keyed by milliseconds since
//! midnight (UTC after zone adjustment, wrapped into one day).

use crate::dfa::{Dfa, DfaBuilder};
use crate::lang::WS;

/// Builds the time DFA.
pub fn dfa() -> Dfa {
    let mut b = DfaBuilder::new();
    let ws = b.class(WS);
    let digit = b.class(b"0123456789");
    let minus = b.class(b"-");
    let plus = b.class(b"+");
    let colon = b.class(b":");
    let dot = b.class(b".");
    let zee = b.class(b"Z");

    let start = b.state(false);
    let h1 = b.state(false);
    let h2 = b.state(false);
    let mi0 = b.state(false);
    let mi1 = b.state(false);
    let mi2 = b.state(false);
    let s0 = b.state(false);
    let s1 = b.state(false);
    let s2 = b.state(true);
    let fr0 = b.state(false);
    let fr1 = b.state(true);
    let tz0 = b.state(false);
    let tzh1 = b.state(false);
    let tzh2 = b.state(false);
    let tzc = b.state(false);
    let tzm1 = b.state(false);
    let tzm2 = b.state(true);
    let zulu = b.state(true);
    let end_ws = b.state(true);

    b.edge(start, ws, start);
    b.edge(start, digit, h1);
    b.edge(h1, digit, h2);
    b.edge(h2, colon, mi0);
    b.edge(mi0, digit, mi1);
    b.edge(mi1, digit, mi2);
    b.edge(mi2, colon, s0);
    b.edge(s0, digit, s1);
    b.edge(s1, digit, s2);
    b.edge(s2, dot, fr0);
    b.edge(s2, zee, zulu);
    b.edge(s2, plus, tz0);
    b.edge(s2, minus, tz0);
    b.edge(s2, ws, end_ws);
    b.edge(fr0, digit, fr1);
    b.edge(fr1, digit, fr1);
    b.edge(fr1, zee, zulu);
    b.edge(fr1, plus, tz0);
    b.edge(fr1, minus, tz0);
    b.edge(fr1, ws, end_ws);
    b.edge(tz0, digit, tzh1);
    b.edge(tzh1, digit, tzh2);
    b.edge(tzh2, colon, tzc);
    b.edge(tzc, digit, tzm1);
    b.edge(tzm1, digit, tzm2);
    b.edge(tzm2, ws, end_ws);
    b.edge(zulu, ws, end_ws);
    b.edge(end_ws, ws, end_ws);

    b.build()
}

/// Casts a complete time to milliseconds since midnight (0 ≤ key <
/// 86,400,000 after zone wrapping). Returns `None` for out-of-range
/// fields.
pub fn cast(s: &str) -> Option<f64> {
    let t = s.trim_matches([' ', '\t', '\r', '\n']);
    let (body, tz_min) = if let Some(b) = t.strip_suffix('Z') {
        (b, 0i64)
    } else if t.len() > 6
        && (t.as_bytes()[t.len() - 6] == b'+' || t.as_bytes()[t.len() - 6] == b'-')
    {
        let (b, z) = t.split_at(t.len() - 6);
        let sign: i64 = if z.starts_with('-') { -1 } else { 1 };
        let hh: i64 = z[1..3].parse().ok()?;
        let mm: i64 = z[4..6].parse().ok()?;
        if hh > 14 || mm > 59 {
            return None;
        }
        (b, sign * (hh * 60 + mm))
    } else {
        (t, 0)
    };

    let mut parts = body.splitn(3, ':');
    let hour: u32 = parts.next()?.parse().ok()?;
    let minute: u32 = parts.next()?.parse().ok()?;
    let sec_str = parts.next()?;
    let (whole, millis) = match sec_str.split_once('.') {
        Some((w, f)) => {
            let frac: String = f.chars().chain("000".chars()).take(3).collect();
            (w, frac.parse::<u32>().ok()?)
        }
        None => (sec_str, 0),
    };
    let second: u32 = whole.parse().ok()?;
    if hour > 24 || (hour == 24 && (minute != 0 || second != 0 || millis != 0)) {
        return None;
    }
    if minute > 59 || second > 60 {
        return None;
    }

    let day_ms = 86_400_000i64;
    let mut ms = i64::from(hour) * 3_600_000
        + i64::from(minute) * 60_000
        + i64::from(second) * 1000
        + i64::from(millis)
        - tz_min * 60_000;
    ms = ms.rem_euclid(day_ms);
    Some(ms as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexical_space() {
        let d = dfa();
        for s in ["00:00:00", "23:59:59.999Z", " 12:30:00+01:00 ", "07:05:00"] {
            assert!(d.accepts(s), "{s:?}");
        }
        for s in ["", "7:05:00", "12:30", "12:30:00:00", "noon"] {
            assert!(!d.accepts(s), "{s:?}");
        }
    }

    #[test]
    fn casts() {
        assert_eq!(cast("00:00:00"), Some(0.0));
        assert_eq!(cast("01:00:00"), Some(3_600_000.0));
        assert_eq!(cast("00:00:00.250Z"), Some(250.0));
        // +01:00 zone: 01:00 local is midnight UTC.
        assert_eq!(cast("01:00:00+01:00"), Some(0.0));
        // Wrapping keeps keys inside one day: 00:30+01:00 = 23:30 UTC.
        assert_eq!(cast("00:30:00+01:00"), Some(84_600_000.0));
        assert_eq!(cast("25:00:00"), None);
        assert_eq!(cast("12:61:00"), None);
    }

    #[test]
    fn ordering_within_a_day() {
        let times = ["00:00:01", "06:30:00", "12:00:00", "23:59:59"];
        let keys: Vec<f64> = times.iter().map(|t| cast(t).unwrap()).collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }
}
