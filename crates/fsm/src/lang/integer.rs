//! `xs:integer` — `ws* sign? digits ws*`.

use crate::dfa::{Dfa, DfaBuilder};
use crate::lang::WS;

/// Builds the integer DFA.
pub fn dfa() -> Dfa {
    let mut b = DfaBuilder::new();
    let ws = b.class(WS);
    let digit = b.class(b"0123456789");
    let sign = b.class(b"+-");

    let start = b.state(false);
    let signed = b.state(false);
    let digits = b.state(true);
    let end_ws = b.state(true);

    b.edge(start, ws, start);
    b.edge(start, sign, signed);
    b.edge(start, digit, digits);
    b.edge(signed, digit, digits);
    b.edge(digits, digit, digits);
    b.edge(digits, ws, end_ws);
    b.edge(end_ws, ws, end_ws);

    b.build()
}

/// Casts a complete integer to an `f64` ordering key (exact up to
/// 2^53; larger literals degrade gracefully to the nearest double,
/// which preserves coarse ordering).
pub fn cast(s: &str) -> Option<f64> {
    let t = s.trim_matches([' ', '\t', '\r', '\n']);
    t.parse::<f64>().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_language() {
        let d = dfa();
        assert!(d.accepts("42"));
        assert!(d.accepts("-7"));
        assert!(d.accepts(" +0 "));
        assert!(!d.accepts("4.2"));
        assert!(!d.accepts("+"));
        assert!(!d.accepts(""));
    }
}
