//! `xs:decimal` — like double but without an exponent:
//! `ws* sign? ( digits ('.' digits*)? | '.' digits ) ws*`.

use crate::dfa::{Dfa, DfaBuilder};
use crate::lang::WS;

/// Builds the decimal DFA.
pub fn dfa() -> Dfa {
    let mut b = DfaBuilder::new();
    let ws = b.class(WS);
    let digit = b.class(b"0123456789");
    let sign = b.class(b"+-");
    let dot = b.class(b".");

    let start = b.state(false);
    let signed = b.state(false);
    let int = b.state(true);
    let dot_only = b.state(false);
    let int_dot = b.state(true);
    let frac = b.state(true);
    let end_ws = b.state(true);

    b.edge(start, ws, start);
    b.edge(start, sign, signed);
    b.edge(start, digit, int);
    b.edge(start, dot, dot_only);
    b.edge(signed, digit, int);
    b.edge(signed, dot, dot_only);
    b.edge(int, digit, int);
    b.edge(int, dot, int_dot);
    b.edge(int, ws, end_ws);
    b.edge(dot_only, digit, frac);
    b.edge(int_dot, digit, frac);
    b.edge(int_dot, ws, end_ws);
    b.edge(frac, digit, frac);
    b.edge(frac, ws, end_ws);
    b.edge(end_ws, ws, end_ws);

    b.build()
}

/// Casts a complete decimal to an `f64` ordering key.
pub fn cast(s: &str) -> Option<f64> {
    crate::lang::double::cast(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_decimals_rejects_exponents() {
        let d = dfa();
        assert!(d.accepts("3.14"));
        assert!(d.accepts(" -2 "));
        assert!(d.accepts(".5"));
        assert!(!d.accepts("1e5"));
        assert!(!d.accepts("."));
    }
}
