//! The state combination table: the DFA's transition monoid.
//!
//! Every string `w` over the DFA's alphabet induces a partial function
//! `f_w : Q → Q` mapping "state before reading `w`" to "state after".
//! The set of these functions, under composition, is the DFA's
//! *transition monoid* — a finite set because there are at most
//! `(|Q|+1)^|Q|` partial functions. The paper's "normalised FSM with
//! uniquely-identifying paths" (60 states for doubles) is an informal
//! description of exactly these equivalence classes.
//!
//! [`Sct::build`] enumerates the reachable monoid elements
//! breadth-first from the identity and tabulates
//!
//! * `char_step` — element × byte-class → element, used to assign a
//!   state to a text node in one pass over its bytes, and
//! * `table` — element × element → element (the SCT of the paper's
//!   Figure 6), used to combine sibling states during index creation
//!   and maintenance with a single array probe.
//!
//! The everywhere-undefined function is the absorbing **reject** state;
//! it is stored implicitly (as `None` / the `REJECT` sentinel), exactly
//! as the paper stores "no state" for rejected nodes.

use std::collections::HashMap;

use crate::dfa::{Dfa, DfaState, DFA_DEAD};

/// A monoid element id ("state" in the paper's terminology).
pub type StateId = u16;

/// Sentinel for the absorbing reject state inside the dense tables.
const REJECT: u16 = u16::MAX;

/// Upper bound on monoid size; beyond this the dense `m × m` table
/// would stop being "succinct" in the paper's sense.
const MAX_ELEMENTS: usize = 4096;

/// A state combination table for one lexical language.
#[derive(Debug)]
pub struct Sct {
    /// `elems[e]` = the partial function Q → Q (DFA_DEAD = undefined).
    elems: Vec<Box<[DfaState]>>,
    /// Identity element = state of the empty string.
    identity: StateId,
    /// `char_step[e * n_classes + c]` = element after feeding one byte
    /// of class `c` to a string with element `e`.
    char_step: Vec<u16>,
    /// Dense composition table `table[a * m + b]` = element of the
    /// concatenation `a ⧺ b`.
    table: Vec<u16>,
    /// `complete[e]`: does `e` map the start state to an accept state?
    complete: Vec<bool>,
    /// Byte classifier copied from the DFA.
    classes: Box<[u8; 256]>,
    n_classes: usize,
}

impl Sct {
    /// Builds the transition monoid and its tables for `dfa`.
    ///
    /// # Panics
    /// Panics if the monoid exceeds 4096 elements (`MAX_ELEMENTS`);
    /// the supported XML types stay well below this.
    pub fn build(dfa: &Dfa) -> Sct {
        let nq = dfa.n_states();
        let n_classes = dfa.n_classes();

        // Identity function.
        let identity_fn: Box<[DfaState]> = (0..nq as DfaState).collect();

        let mut index: HashMap<Box<[DfaState]>, StateId> = HashMap::new();
        let mut elems: Vec<Box<[DfaState]>> = Vec::new();
        let mut char_step: Vec<u16> = Vec::new();

        index.insert(identity_fn.clone(), 0);
        elems.push(identity_fn);

        // BFS over one-character extensions. Newly discovered elements
        // are appended to `elems`; `char_step` rows are filled as each
        // element is processed.
        let mut next_unprocessed = 0usize;
        while next_unprocessed < elems.len() {
            let e = next_unprocessed;
            next_unprocessed += 1;
            char_step.resize((e + 1) * n_classes, REJECT);
            for class in 0..n_classes as u8 {
                // Compose elems[e] with the one-character function.
                let f: Box<[DfaState]> = elems[e]
                    .iter()
                    .map(|&q| {
                        if q == DFA_DEAD {
                            DFA_DEAD
                        } else {
                            dfa.step(q, class)
                        }
                    })
                    .collect();
                if f.iter().all(|&q| q == DFA_DEAD) {
                    continue; // reject: leave the REJECT sentinel
                }
                let id = *index.entry(f.clone()).or_insert_with(|| {
                    elems.push(f);
                    assert!(
                        elems.len() <= MAX_ELEMENTS,
                        "transition monoid exceeds {MAX_ELEMENTS} elements"
                    );
                    (elems.len() - 1) as StateId
                });
                char_step[e * n_classes + class as usize] = id;
            }
        }

        // Dense composition table. Closure guarantees every composition
        // of reachable elements is reachable (it is the element of the
        // concatenated string).
        let m = elems.len();
        let mut table = vec![REJECT; m * m];
        for a in 0..m {
            for b in 0..m {
                let f: Box<[DfaState]> = elems[a]
                    .iter()
                    .map(|&q| {
                        if q == DFA_DEAD {
                            DFA_DEAD
                        } else {
                            elems[b][q as usize]
                        }
                    })
                    .collect();
                if f.iter().all(|&q| q == DFA_DEAD) {
                    continue;
                }
                let id = *index
                    .get(&f)
                    .expect("composition of reachable elements is reachable");
                table[a * m + b] = id;
            }
        }

        let start = dfa.start();
        let complete = elems
            .iter()
            .map(|f| {
                let q = f[start as usize];
                q != DFA_DEAD && dfa.is_accept(q)
            })
            .collect();

        Sct {
            elems,
            identity: 0,
            char_step,
            table,
            complete,
            classes: Box::new(std::array::from_fn(|b| dfa.class_of(b as u8))),
            n_classes,
        }
    }

    /// Number of non-reject states (the paper reports 60 for doubles,
    /// counting reject; see [`Sct::num_states_with_reject`]).
    pub fn num_states(&self) -> usize {
        self.elems.len()
    }

    /// Number of states including the implicit reject state.
    pub fn num_states_with_reject(&self) -> usize {
        self.elems.len() + 1
    }

    /// The state of the empty string.
    pub fn identity(&self) -> StateId {
        self.identity
    }

    /// Assigns a state to a text value — the paper's "feed the lexical
    /// value of each text node to the FSM". `None` is reject.
    pub fn state_of(&self, text: &str) -> Option<StateId> {
        let mut e = self.identity as usize;
        for &b in text.as_bytes() {
            let class = self.classes[b as usize] as usize;
            let next = self.char_step[e * self.n_classes + class];
            if next == REJECT {
                return None;
            }
            e = next as usize;
        }
        Some(e as StateId)
    }

    /// SCT probe: the state of the concatenation of two values with
    /// states `a` and `b`. Reject is absorbing, and combining with the
    /// state of `""` is the identity.
    #[inline]
    pub fn combine(&self, a: Option<StateId>, b: Option<StateId>) -> Option<StateId> {
        let (a, b) = (a?, b?);
        let v = self.table[a as usize * self.elems.len() + b as usize];
        (v != REJECT).then_some(v)
    }

    /// Whether state `s` denotes a *complete* lexical representation —
    /// i.e. a node in this state casts to the indexed type.
    #[inline]
    pub fn is_complete(&self, s: StateId) -> bool {
        self.complete[s as usize]
    }

    /// Approximate heap size of the tables, for storage accounting.
    pub fn table_bytes(&self) -> usize {
        let m = self.elems.len();
        m * m * 2 + self.char_step.len() * 2 + self.elems.iter().map(|e| e.len() * 2).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfa::DfaBuilder;

    /// DFA for `a+b*` again; small enough to reason about by hand.
    fn sample_dfa() -> Dfa {
        let mut b = DfaBuilder::new();
        let ca = b.class(b"a");
        let cb = b.class(b"b");
        let s0 = b.state(false);
        let s1 = b.state(true);
        let s2 = b.state(true);
        b.edge(s0, ca, s1);
        b.edge(s1, ca, s1);
        b.edge(s1, cb, s2);
        b.edge(s2, cb, s2);
        b.build()
    }

    #[test]
    fn identity_is_empty_string() {
        let sct = Sct::build(&sample_dfa());
        assert_eq!(sct.state_of(""), Some(sct.identity()));
        assert!(!sct.is_complete(sct.identity()), "\"\" is not in a+b*");
    }

    #[test]
    fn reject_is_none_and_absorbing() {
        let sct = Sct::build(&sample_dfa());
        assert_eq!(sct.state_of("xyz"), None);
        // "ba" is no infix of a+b*.
        assert_eq!(sct.state_of("ba"), None);
        let a = sct.state_of("a");
        assert_eq!(sct.combine(None, a), None);
        assert_eq!(sct.combine(a, None), None);
        assert_eq!(sct.combine(None, None), None);
    }

    #[test]
    fn combine_equals_concatenation() {
        let sct = Sct::build(&sample_dfa());
        let strings = ["", "a", "b", "aa", "ab", "bb", "aab", "abb", "ba"];
        for l in strings {
            for r in strings {
                let combined = sct.combine(sct.state_of(l), sct.state_of(r));
                let direct = sct.state_of(&format!("{l}{r}"));
                assert_eq!(combined, direct, "combine({l:?}, {r:?})");
            }
        }
    }

    #[test]
    fn completeness_matches_dfa_acceptance() {
        let dfa = sample_dfa();
        let sct = Sct::build(&dfa);
        for s in ["", "a", "b", "ab", "ba", "aabbb", "bba"] {
            let complete = sct
                .state_of(s)
                .map(|st| sct.is_complete(st))
                .unwrap_or(false);
            assert_eq!(complete, dfa.accepts(s), "completeness of {s:?}");
        }
    }

    #[test]
    fn infixes_are_potential_values() {
        let sct = Sct::build(&sample_dfa());
        // "b" is not a full value but is a valid suffix → not rejected.
        let b = sct.state_of("b").expect("b is an infix");
        assert!(!sct.is_complete(b));
        // Prepending "a" completes it.
        let a = sct.state_of("a").unwrap();
        let ab = sct.combine(Some(a), Some(b)).unwrap();
        assert!(sct.is_complete(ab));
    }

    #[test]
    fn associativity_of_combine() {
        let sct = Sct::build(&sample_dfa());
        let states: Vec<Option<StateId>> = ["", "a", "b", "ab", "bb", "zz"]
            .iter()
            .map(|s| sct.state_of(s))
            .collect();
        for &x in &states {
            for &y in &states {
                for &z in &states {
                    assert_eq!(
                        sct.combine(sct.combine(x, y), z),
                        sct.combine(x, sct.combine(y, z))
                    );
                }
            }
        }
    }
}
