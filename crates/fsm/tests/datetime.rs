//! Property tests for the dateTime analyzer: ordering, timezone
//! normalisation, and agreement between the DFA and the cast.

use proptest::prelude::*;
use xvi_fsm::{analyzer, XmlType};

fn fmt(y: i32, mo: u32, d: u32, h: u32, mi: u32, s: u32) -> String {
    format!("{y:04}-{mo:02}-{d:02}T{h:02}:{mi:02}:{s:02}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Chronological component order implies key order (days ≤ 28 so
    /// every generated date is valid in every month).
    #[test]
    fn keys_order_chronologically(
        y1 in 1i32..9999, mo1 in 1u32..=12, d1 in 1u32..=28,
        h1 in 0u32..24, mi1 in 0u32..60, s1 in 0u32..60,
        y2 in 1i32..9999, mo2 in 1u32..=12, d2 in 1u32..=28,
        h2 in 0u32..24, mi2 in 0u32..60, s2 in 0u32..60,
    ) {
        let a = (y1, mo1, d1, h1, mi1, s1);
        let b = (y2, mo2, d2, h2, mi2, s2);
        let ka = XmlType::DateTime.cast(&fmt(y1, mo1, d1, h1, mi1, s1)).unwrap();
        let kb = XmlType::DateTime.cast(&fmt(y2, mo2, d2, h2, mi2, s2)).unwrap();
        prop_assert_eq!(a.cmp(&b), ka.partial_cmp(&kb).unwrap(),
                        "{:?} vs {:?}", a, b);
    }

    /// A timezone-shifted literal denotes the same instant: shifting
    /// the clock forward by the offset yields an equal key.
    #[test]
    fn timezone_offsets_normalise(h in 1u32..23, off in 1u32..=12) {
        let base = format!("2005-06-15T{h:02}:30:00Z");
        let shifted_h = h + off.min(23 - h); // stay within the day
        let off = shifted_h - h;
        if off == 0 {
            return Ok(());
        }
        let shifted = format!("2005-06-15T{shifted_h:02}:30:00+{off:02}:00");
        prop_assert_eq!(
            XmlType::DateTime.cast(&base).unwrap(),
            XmlType::DateTime.cast(&shifted).unwrap()
        );
    }

    /// Whatever the DFA accepts with in-range fields must cast; what
    /// the DFA rejects must never cast via the analyzer pipeline.
    #[test]
    fn dfa_and_cast_agree(y in 1i32..9999, mo in 1u32..=12, d in 1u32..=28,
                          h in 0u32..24, mi in 0u32..60, s in 0u32..60,
                          ws_pre in 0usize..3, ws_post in 0usize..3) {
        let an = analyzer(XmlType::DateTime);
        let lit = format!("{}{}{}",
            " ".repeat(ws_pre), fmt(y, mo, d, h, mi, s), " ".repeat(ws_post));
        let st = an.state_of(&lit).expect("valid literal is not rejected");
        prop_assert!(an.is_complete(st), "{:?}", lit);
        prop_assert!(an.cast(&lit).is_some(), "{:?}", lit);
    }
}

/// The epoch sanity anchors, one per century of interest.
#[test]
fn epoch_anchors() {
    let cast = |s: &str| XmlType::DateTime.cast(s).unwrap();
    assert_eq!(cast("1970-01-01T00:00:00Z"), 0.0);
    assert_eq!(cast("1969-12-31T23:59:59Z"), -1000.0);
    assert_eq!(cast("2001-09-09T01:46:40Z"), 1.0e12); // 10^9 seconds
    assert!(cast("0001-01-01T00:00:00Z") < cast("1000-01-01T00:00:00Z"));
    assert!(cast("-0044-03-15T12:00:00") < cast("0033-04-03T12:00:00"));
}
