//! Property tests for the SCT: the monoid homomorphism that makes the
//! typed index updatable, checked against every supported type.

use proptest::prelude::*;
use xvi_fsm::{analyzer, XmlType};

/// Strings biased toward the numeric alphabet so that non-reject
/// states are actually exercised.
fn arb_numericish() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            8 => proptest::char::range('0', '9'),
            2 => Just('.'),
            2 => Just('+'),
            2 => Just('-'),
            2 => Just('e'),
            1 => Just('E'),
            2 => Just(' '),
            1 => Just('T'),
            1 => Just(':'),
            1 => Just('Z'),
            1 => proptest::char::range('a', 'z'),
        ],
        0..24,
    )
    .prop_map(|v| v.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// state(a ⧺ b) == SCT[state(a)][state(b)] for every type.
    #[test]
    fn sct_is_a_homomorphism(a in arb_numericish(), b in arb_numericish()) {
        for ty in XmlType::ALL {
            let an = analyzer(ty);
            let joined = format!("{a}{b}");
            prop_assert_eq!(
                an.combine(an.state_of(&a), an.state_of(&b)),
                an.state_of(&joined),
                "type {:?}, a={:?}, b={:?}", ty, a, b
            );
        }
    }

    /// Splitting at every position recombines to the whole-string state.
    #[test]
    fn all_splits_recombine(s in arb_numericish()) {
        for ty in XmlType::ALL {
            let an = analyzer(ty);
            let whole = an.state_of(&s);
            for (cut, _) in s.char_indices().chain(std::iter::once((s.len(), ' '))) {
                let (l, r) = s.split_at(cut);
                prop_assert_eq!(
                    an.combine(an.state_of(l), an.state_of(r)),
                    whole,
                    "type {:?}, split of {:?} at {}", ty, s, cut
                );
            }
        }
    }

    /// Completeness of the combined state == DFA acceptance of the
    /// concatenation (the property that makes mixed content like
    /// `78 ⧺ . ⧺ 230` indexable).
    #[test]
    fn completeness_equals_acceptance(parts in proptest::collection::vec(arb_numericish(), 1..5)) {
        for ty in XmlType::ALL {
            let an = analyzer(ty);
            let mut combined = Some(an.sct().identity());
            for p in &parts {
                combined = an.combine(combined, an.state_of(p));
            }
            let whole: String = parts.concat();
            let complete = combined.map(|s| an.is_complete(s)).unwrap_or(false);
            prop_assert_eq!(complete, an.dfa().accepts(&whole), "type {:?}, {:?}", ty, whole);
        }
    }

    /// Complete double states always cast; reject strings never do.
    #[test]
    fn complete_iff_castable_for_doubles(s in arb_numericish()) {
        let an = analyzer(XmlType::Double);
        match an.state_of(&s) {
            Some(st) if an.is_complete(st) => {
                prop_assert!(an.cast(&s).is_some(), "complete but uncastable: {:?}", s);
            }
            _ => {
                // Not complete: the paper stores no value for it.
            }
        }
    }
}

/// Monoid sizes are pinned so accidental language changes are caught.
/// The paper's hand-normalised double FSM has 60 states including
/// reject; the *minimal* normalisation (the transition monoid) needs
/// only 36 — both fit the paper's one-byte-per-state budget.
#[test]
fn monoid_sizes_are_stable() {
    let sizes: Vec<(XmlType, usize)> = XmlType::ALL
        .iter()
        .map(|&t| (t, analyzer(t).sct().num_states_with_reject()))
        .collect();
    assert_eq!(
        sizes,
        vec![
            (XmlType::Double, 36),
            (XmlType::Decimal, 16),
            (XmlType::Integer, 8),
            (XmlType::Boolean, 26),
            (XmlType::DateTime, 421),
            (XmlType::Date, 158),
            (XmlType::Time, 156),
        ]
    );
}
