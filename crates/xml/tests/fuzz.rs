//! Robustness: the parser must never panic — any byte soup either
//! parses into a document or returns a positioned `ParseError`.

use proptest::prelude::*;
use xvi_xml::Document;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary UTF-8 input: parse returns, never panics.
    #[test]
    fn parser_never_panics_on_strings(input in ".*") {
        let _ = Document::parse(&input);
    }

    /// Markup-flavoured soup: biased toward XML metacharacters so the
    /// tokenizer's state transitions actually get exercised.
    #[test]
    fn parser_never_panics_on_markup_soup(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("<".to_string()),
                Just(">".to_string()),
                Just("</".to_string()),
                Just("/>".to_string()),
                Just("<!--".to_string()),
                Just("-->".to_string()),
                Just("<![CDATA[".to_string()),
                Just("]]>".to_string()),
                Just("<?".to_string()),
                Just("?>".to_string()),
                Just("&".to_string()),
                Just(";".to_string()),
                Just("=".to_string()),
                Just("\"".to_string()),
                Just("'".to_string()),
                Just("<!DOCTYPE".to_string()),
                "[a-z]{1,4}".prop_map(|s| s),
                Just(" ".to_string()),
            ],
            0..40,
        )
    ) {
        let soup: String = parts.concat();
        let _ = Document::parse(&soup);
    }

    /// Anything that *does* parse must serialise and reparse to an
    /// equal-stat document (parse is idempotent through serialisation).
    #[test]
    fn successful_parses_roundtrip(input in "[ -~]{0,200}") {
        if let Ok(doc) = Document::parse(&input) {
            let text = xvi_xml::serialize::to_string(&doc);
            let doc2 = Document::parse(&text)
                .expect("serialised documents always reparse");
            prop_assert_eq!(doc.stats(), doc2.stats());
        }
    }
}
