//! Parse/serialise roundtrip properties over randomly generated trees.

use proptest::prelude::*;
use xvi_xml::{serialize, Document};

/// A recursive strategy producing random XML fragments as builder
/// instructions, then realised into a `Document`.
#[derive(Debug, Clone)]
enum Tree {
    Element {
        name: String,
        attrs: Vec<(String, String)>,
        children: Vec<Tree>,
    },
    Text(String),
    Comment(String),
}

fn arb_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_.-]{0,6}"
}

fn arb_text() -> impl Strategy<Value = String> {
    // Arbitrary printable content including XML-special characters that
    // must survive escaping, but no raw control characters.
    "[ -~αβγ一二]{1,20}"
}

fn arb_tree() -> impl Strategy<Value = Tree> {
    let leaf = prop_oneof![
        arb_text().prop_map(Tree::Text),
        // Comments may not contain `--`.
        "[a-z ]{0,10}".prop_map(Tree::Comment),
        (
            arb_name(),
            proptest::collection::vec((arb_name(), arb_text()), 0..3)
        )
            .prop_map(|(name, attrs)| Tree::Element {
                name,
                attrs,
                children: vec![],
            }),
    ];
    leaf.prop_recursive(4, 64, 6, |inner| {
        (
            arb_name(),
            proptest::collection::vec((arb_name(), arb_text()), 0..3),
            proptest::collection::vec(inner, 0..6),
        )
            .prop_map(|(name, attrs, children)| Tree::Element {
                name,
                attrs,
                children,
            })
    })
}

fn build(doc: &mut Document, parent: xvi_xml::NodeId, t: &Tree) {
    match t {
        Tree::Element {
            name,
            attrs,
            children,
        } => {
            let e = doc.append_element(parent, name);
            for (k, v) in attrs {
                doc.set_attribute(e, k, v);
            }
            for c in children {
                build(doc, e, c);
            }
        }
        Tree::Text(s) => {
            // Avoid creating adjacent text siblings: merge by hand like
            // the parser would.
            doc.append_text(parent, s);
        }
        Tree::Comment(c) => {
            let n = doc.create_comment(c);
            doc.append_child(parent, n);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// serialise → parse → serialise is a fixpoint, and the reparsed
    /// document has identical string values.
    #[test]
    fn roundtrip_fixpoint(name in arb_name(), kids in proptest::collection::vec(arb_tree(), 0..6)) {
        let mut doc = Document::new();
        let root = doc.append_element(doc.document_node(), &name);
        for k in &kids {
            build(&mut doc, root, k);
        }
        let text1 = serialize::to_string(&doc);
        let doc2 = Document::parse(&text1).unwrap();
        let text2 = serialize::to_string(&doc2);
        prop_assert_eq!(&text1, &text2);
        prop_assert_eq!(
            doc.string_value(doc.document_node()),
            doc2.string_value(doc2.document_node())
        );
        // Same node population (adjacent generated texts may merge on
        // reparse, so compare via the serialised form instead of counts).
        let doc3 = Document::parse(&text2).unwrap();
        prop_assert_eq!(doc2.stats(), doc3.stats());
    }
}
