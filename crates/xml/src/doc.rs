//! The arena document store.

use std::collections::HashMap;

use xvi_btree::PagedVec;

use crate::error::ParseError;
use crate::node::{NameId, NodeData, NodeId, NodeKind};

/// An updatable XML document, stored as an arena of linked nodes.
///
/// Slot 0 is always the document node. Structural children (elements,
/// text, comments, PIs) form one sibling chain; attributes form a
/// second chain reachable through [`Document::attributes`]. Both kinds
/// of nodes carry indexable values, but only descendant *text* nodes
/// contribute to an element's XDM string value.
///
/// The arena is paged with copy-on-write structural sharing
/// ([`PagedVec`]): `Clone` is O(pages) reference-count bumps, and a
/// clone that mutates (value updates, construction, deletion) detaches
/// only the pages it touches — so snapshot-style cloning of a large
/// document costs nothing proportional to the document size.
///
/// ```
/// use xvi_xml::Document;
/// let doc = Document::parse("<name><first>Arthur</first><family>Dent</family></name>").unwrap();
/// let root = doc.root_element().unwrap();
/// assert_eq!(doc.name(root), Some("name"));
/// assert_eq!(doc.string_value(root), "ArthurDent");
/// ```
#[derive(Debug, Clone)]
pub struct Document {
    nodes: PagedVec<NodeData>,
    names: Vec<String>,
    name_ids: HashMap<String, NameId>,
    free: Vec<NodeId>,
}

impl Default for Document {
    fn default() -> Self {
        Self::new()
    }
}

impl Document {
    /// Creates an empty document containing only the document node.
    pub fn new() -> Document {
        let mut nodes = PagedVec::new();
        nodes.push(NodeData::new(NodeKind::Document));
        Document {
            nodes,
            names: Vec::new(),
            name_ids: HashMap::new(),
            free: Vec::new(),
        }
    }

    /// A clone that shares no arena pages with `self`: every page is
    /// detached immediately instead of lazily on first write. Archival
    /// copies use this to avoid pinning the live document's pages; the
    /// COW benches use it as the pre-structural-sharing baseline.
    pub fn deep_clone(&self) -> Document {
        let mut c = self.clone();
        c.nodes = self.nodes.deep_clone();
        c
    }

    /// Number of arena pages currently shared with other clones of
    /// this document (copy-on-write sharing diagnostics).
    pub fn shared_pages(&self) -> usize {
        self.nodes.shared_pages()
    }

    /// Shreds XML text into a document (see [`crate::parser`]).
    pub fn parse(input: &str) -> Result<Document, ParseError> {
        crate::parser::parse(input)
    }

    /// The document node.
    #[inline]
    pub fn document_node(&self) -> NodeId {
        NodeId(0)
    }

    /// The root element, if the document has one.
    pub fn root_element(&self) -> Option<NodeId> {
        self.children(self.document_node())
            .find(|&c| matches!(self.kind(c), NodeKind::Element(_)))
    }

    // ----- name interning ------------------------------------------------

    /// Interns `name`, returning its id.
    pub fn intern(&mut self, name: &str) -> NameId {
        if let Some(&id) = self.name_ids.get(name) {
            return id;
        }
        let id = NameId(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.name_ids.insert(name.to_owned(), id);
        id
    }

    /// Resolves an interned name.
    pub fn resolve(&self, id: NameId) -> &str {
        &self.names[id.0 as usize]
    }

    /// Looks up a name id without interning.
    pub fn lookup_name(&self, name: &str) -> Option<NameId> {
        self.name_ids.get(name).copied()
    }

    // ----- node access ----------------------------------------------------

    #[inline]
    pub(crate) fn data(&self, id: NodeId) -> &NodeData {
        &self.nodes[id.index()]
    }

    #[inline]
    pub(crate) fn data_mut(&mut self, id: NodeId) -> &mut NodeData {
        &mut self.nodes[id.index()]
    }

    /// The payload of a node.
    #[inline]
    pub fn kind(&self, id: NodeId) -> &NodeKind {
        &self.data(id).kind
    }

    /// Whether `id` denotes a live (non-freed) node in this arena.
    pub fn is_live(&self, id: NodeId) -> bool {
        id.index() < self.nodes.len() && !matches!(self.kind(id), NodeKind::Free)
    }

    /// The element/attribute name of `id`, if it has one.
    pub fn name(&self, id: NodeId) -> Option<&str> {
        match self.kind(id) {
            NodeKind::Element(n) | NodeKind::Attribute { name: n, .. } => Some(self.resolve(*n)),
            _ => None,
        }
    }

    /// Parent node (attributes report their owning element).
    #[inline]
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.data(id).parent.get()
    }

    /// First structural child.
    #[inline]
    pub fn first_child(&self, id: NodeId) -> Option<NodeId> {
        self.data(id).first_child.get()
    }

    /// Last structural child.
    #[inline]
    pub fn last_child(&self, id: NodeId) -> Option<NodeId> {
        self.data(id).last_child.get()
    }

    /// Next sibling on the same chain (structural or attribute).
    #[inline]
    pub fn next_sibling(&self, id: NodeId) -> Option<NodeId> {
        self.data(id).next_sibling.get()
    }

    /// Previous sibling on the same chain.
    #[inline]
    pub fn prev_sibling(&self, id: NodeId) -> Option<NodeId> {
        self.data(id).prev_sibling.get()
    }

    /// Iterates the structural children of `id`.
    pub fn children(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let mut cur = self.first_child(id);
        std::iter::from_fn(move || {
            let out = cur?;
            cur = self.next_sibling(out);
            Some(out)
        })
    }

    /// Iterates the attribute nodes of `id` (empty for non-elements).
    pub fn attributes(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let mut cur = self.data(id).first_attr.get();
        std::iter::from_fn(move || {
            let out = cur?;
            cur = self.next_sibling(out);
            Some(out)
        })
    }

    /// Looks up an attribute of `id` by name.
    pub fn attribute(&self, id: NodeId, name: &str) -> Option<NodeId> {
        let name_id = self.lookup_name(name)?;
        self.attributes(id)
            .find(|&a| matches!(self.kind(a), NodeKind::Attribute { name: n, .. } if *n == name_id))
    }

    /// The value of an attribute of `id` by name.
    pub fn attribute_value(&self, id: NodeId, name: &str) -> Option<&str> {
        let attr = self.attribute(id, name)?;
        match self.kind(attr) {
            NodeKind::Attribute { value, .. } => Some(value),
            _ => None,
        }
    }

    /// Pre-order depth-first traversal of the subtree rooted at `id`
    /// (structural nodes only; attributes are not part of the DFS).
    pub fn descendants_or_self(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let mut next = Some(id);
        std::iter::from_fn(move || {
            let out = next?;
            // Advance: first child, else next sibling, else climb until
            // a next sibling exists — stopping at the traversal root.
            next = if let Some(c) = self.first_child(out) {
                Some(c)
            } else {
                let mut cur = out;
                loop {
                    if cur == id {
                        break None;
                    }
                    if let Some(s) = self.next_sibling(cur) {
                        break Some(s);
                    }
                    match self.parent(cur) {
                        Some(p) => cur = p,
                        None => break None,
                    }
                }
            };
            Some(out)
        })
    }

    /// Proper descendants of `id` in document order.
    pub fn descendants(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.descendants_or_self(id).skip(1)
    }

    /// Whether `anc` is a proper ancestor of `desc` (attribute nodes
    /// count their owning element chain).
    pub fn is_ancestor(&self, anc: NodeId, desc: NodeId) -> bool {
        let mut cur = self.parent(desc);
        while let Some(p) = cur {
            if p == anc {
                return true;
            }
            cur = self.parent(p);
        }
        false
    }

    /// Depth of a node (document node has depth 0).
    pub fn depth(&self, id: NodeId) -> usize {
        let mut d = 0;
        let mut cur = self.parent(id);
        while let Some(p) = cur {
            d += 1;
            cur = self.parent(p);
        }
        d
    }

    // ----- string values --------------------------------------------------

    /// The XDM string value of a node.
    ///
    /// * text node — its content;
    /// * attribute — its value;
    /// * comment / PI — its content/data;
    /// * element / document node — the concatenation of the string
    ///   values of all descendant text nodes, in document order.
    pub fn string_value(&self, id: NodeId) -> String {
        match self.kind(id) {
            NodeKind::Text(t) => t.clone(),
            NodeKind::Attribute { value, .. } => value.clone(),
            NodeKind::Comment(c) => c.clone(),
            NodeKind::Pi { data, .. } => data.clone(),
            NodeKind::Document | NodeKind::Element(_) => {
                let mut out = String::new();
                self.push_text(id, &mut out);
                out
            }
            NodeKind::Free => String::new(),
        }
    }

    fn push_text(&self, id: NodeId, out: &mut String) {
        for c in self.descendants_or_self(id) {
            if let NodeKind::Text(t) = self.kind(c) {
                out.push_str(t);
            }
        }
    }

    /// The directly stored value of a text or attribute node.
    pub fn direct_value(&self, id: NodeId) -> Option<&str> {
        match self.kind(id) {
            NodeKind::Text(t) => Some(t),
            NodeKind::Attribute { value, .. } => Some(value),
            _ => None,
        }
    }

    // ----- construction ---------------------------------------------------

    fn alloc(&mut self, kind: NodeKind) -> NodeId {
        if let Some(id) = self.free.pop() {
            self.nodes[id.index()] = NodeData::new(kind);
            id
        } else {
            self.nodes.push(NodeData::new(kind));
            NodeId((self.nodes.len() - 1) as u32)
        }
    }

    /// Creates a detached element node.
    pub fn create_element(&mut self, name: &str) -> NodeId {
        let n = self.intern(name);
        self.alloc(NodeKind::Element(n))
    }

    /// Creates a detached text node.
    pub fn create_text(&mut self, content: &str) -> NodeId {
        self.alloc(NodeKind::Text(content.to_owned()))
    }

    /// Creates a detached comment node.
    pub fn create_comment(&mut self, content: &str) -> NodeId {
        self.alloc(NodeKind::Comment(content.to_owned()))
    }

    /// Creates a detached processing-instruction node.
    pub fn create_pi(&mut self, target: &str, data: &str) -> NodeId {
        self.alloc(NodeKind::Pi {
            target: target.to_owned(),
            data: data.to_owned(),
        })
    }

    /// Appends detached node `child` as the last structural child of
    /// `parent`.
    ///
    /// # Panics
    /// Panics if `child` already has a parent.
    pub fn append_child(&mut self, parent: NodeId, child: NodeId) {
        assert_eq!(
            self.data(child).parent,
            NodeId::NONE,
            "append_child: node is already attached"
        );
        let old_last = self.data(parent).last_child;
        {
            let c = self.data_mut(child);
            c.parent = parent;
            c.prev_sibling = old_last;
        }
        if let Some(last) = old_last.get() {
            self.data_mut(last).next_sibling = child;
        } else {
            self.data_mut(parent).first_child = child;
        }
        self.data_mut(parent).last_child = child;
    }

    /// Adds an attribute to element `parent`. Returns the new node.
    ///
    /// # Panics
    /// Panics if `parent` is not an element.
    pub fn set_attribute(&mut self, parent: NodeId, name: &str, value: &str) -> NodeId {
        assert!(
            matches!(self.kind(parent), NodeKind::Element(_)),
            "attributes can only be set on elements"
        );
        // Replace in place if the attribute already exists.
        if let Some(existing) = self.attribute(parent, name) {
            if let NodeKind::Attribute { value: v, .. } = &mut self.data_mut(existing).kind {
                *v = value.to_owned();
            }
            return existing;
        }
        let name_id = self.intern(name);
        let attr = self.alloc(NodeKind::Attribute {
            name: name_id,
            value: value.to_owned(),
        });
        self.data_mut(attr).parent = parent;
        // Append at the tail of the attribute chain to keep document order.
        let mut tail = self.data(parent).first_attr;
        if tail == NodeId::NONE {
            self.data_mut(parent).first_attr = attr;
        } else {
            while let Some(next) = self.data(tail).next_sibling.get() {
                tail = next;
            }
            self.data_mut(tail).next_sibling = attr;
            self.data_mut(attr).prev_sibling = tail;
        }
        attr
    }

    /// Convenience: create an element, append it, return its id.
    pub fn append_element(&mut self, parent: NodeId, name: &str) -> NodeId {
        let e = self.create_element(name);
        self.append_child(parent, e);
        e
    }

    /// Convenience: create a text node, append it, return its id.
    pub fn append_text(&mut self, parent: NodeId, content: &str) -> NodeId {
        let t = self.create_text(content);
        self.append_child(parent, t);
        t
    }

    // ----- updates ----------------------------------------------------------

    /// Replaces the stored value of a text or attribute node, returning
    /// the previous value. This is the paper's primitive update: "the
    /// value of a text node is updated" (§5, Figure 8).
    ///
    /// # Panics
    /// Panics if the node is not a text or attribute node.
    pub fn set_value(&mut self, id: NodeId, new_value: &str) -> String {
        match &mut self.data_mut(id).kind {
            NodeKind::Text(t) => std::mem::replace(t, new_value.to_owned()),
            NodeKind::Attribute { value, .. } => std::mem::replace(value, new_value.to_owned()),
            other => panic!("set_value on non-valued node kind {other:?}"),
        }
    }

    /// Detaches and frees the subtree rooted at `id` (including its
    /// attributes). Returns the former parent. The paper handles this
    /// by re-running the update pass with the parent as an
    /// empty-valued context node.
    ///
    /// # Panics
    /// Panics on the document node.
    pub fn delete_subtree(&mut self, id: NodeId) -> Option<NodeId> {
        assert!(
            !matches!(self.kind(id), NodeKind::Document),
            "cannot delete the document node"
        );
        let parent = self.parent(id);
        // Unlink from the sibling chain.
        let (prev, next) = {
            let d = self.data(id);
            (d.prev_sibling, d.next_sibling)
        };
        if let Some(p) = prev.get() {
            self.data_mut(p).next_sibling = next;
        } else if let Some(par) = parent {
            // Head of either the child chain or the attribute chain.
            if self.data(par).first_child == id {
                self.data_mut(par).first_child = next;
            } else if self.data(par).first_attr == id {
                self.data_mut(par).first_attr = next;
            }
        }
        if let Some(n) = next.get() {
            self.data_mut(n).prev_sibling = prev;
        } else if let Some(par) = parent {
            if self.data(par).last_child == id {
                self.data_mut(par).last_child = prev;
            }
        }
        // Free the whole subtree.
        let subtree: Vec<NodeId> = self.descendants_or_self(id).collect();
        for n in subtree {
            let attrs: Vec<NodeId> = self.attributes(n).collect();
            for a in attrs {
                self.nodes[a.index()] = NodeData::new(NodeKind::Free);
                self.free.push(a);
            }
            self.nodes[n.index()] = NodeData::new(NodeKind::Free);
            self.free.push(n);
        }
        parent
    }

    // ----- statistics -------------------------------------------------------

    /// Upper bound on arena slots (live + freed); `NodeId::index()` is
    /// always below this.
    pub fn arena_size(&self) -> usize {
        self.nodes.len()
    }

    /// Counts and sizes for the paper's Table 1.
    pub fn stats(&self) -> DocStats {
        let mut s = DocStats::default();
        for n in self.nodes.iter() {
            match &n.kind {
                NodeKind::Free => continue,
                NodeKind::Document => {}
                NodeKind::Element(_) => {
                    s.element_nodes += 1;
                    s.total_nodes += 1;
                }
                NodeKind::Text(t) => {
                    s.text_nodes += 1;
                    s.total_nodes += 1;
                    s.text_bytes += t.len();
                }
                NodeKind::Attribute { value, .. } => {
                    s.attribute_nodes += 1;
                    s.total_nodes += 1;
                    s.text_bytes += value.len();
                }
                NodeKind::Comment(c) => {
                    s.other_nodes += 1;
                    s.total_nodes += 1;
                    s.text_bytes += c.len();
                }
                NodeKind::Pi { data, .. } => {
                    s.other_nodes += 1;
                    s.total_nodes += 1;
                    s.text_bytes += data.len();
                }
            }
        }
        s.arena_bytes = self.nodes.len() * std::mem::size_of::<NodeData>()
            + s.text_bytes
            + self.names.iter().map(|n| n.len()).sum::<usize>();
        s
    }

    /// Computes the pre/size/level range encoding of the current tree.
    pub fn pre_post_view(&self) -> PrePostView {
        PrePostView::build(self)
    }
}

/// Node counts and byte sizes (Table 1 columns).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DocStats {
    /// All live nodes except the document node.
    pub total_nodes: usize,
    /// Element nodes.
    pub element_nodes: usize,
    /// Text nodes.
    pub text_nodes: usize,
    /// Attribute nodes.
    pub attribute_nodes: usize,
    /// Comments and processing instructions.
    pub other_nodes: usize,
    /// Bytes of stored character data (text + attribute values + misc).
    pub text_bytes: usize,
    /// Approximate heap footprint of the document store.
    pub arena_bytes: usize,
}

/// The MonetDB/XQuery-style pre/size/level encoding: for every node its
/// pre-order rank, subtree size and depth. A consistent snapshot for
/// document-order comparisons and O(1) ancestry tests; rebuild after
/// structural updates.
#[derive(Debug)]
pub struct PrePostView {
    /// `pre[i]` = pre-order rank of the node with arena index `i`
    /// (`usize::MAX` for attributes/freed slots, which are outside the
    /// structural DFS).
    pre: Vec<usize>,
    /// In pre-order: (node, subtree size, level).
    table: Vec<(NodeId, usize, usize)>,
}

impl PrePostView {
    fn build(doc: &Document) -> PrePostView {
        let mut pre = vec![usize::MAX; doc.arena_size()];
        let mut table = Vec::new();
        // Iterative DFS computing subtree sizes via a finish stack.
        let root = doc.document_node();
        for (rank, node) in doc.descendants_or_self(root).enumerate() {
            pre[node.index()] = rank;
            table.push((node, 1, doc.depth(node)));
        }
        // Subtree sizes: accumulate child sizes in reverse pre-order.
        for i in (1..table.len()).rev() {
            let (node, size, _) = table[i];
            if let Some(parent) = doc.parent(node) {
                let p_rank = pre[parent.index()];
                table[p_rank].1 += size;
            }
        }
        PrePostView { pre, table }
    }

    /// Pre-order rank of `id`, if it participates in the structural DFS.
    pub fn pre(&self, id: NodeId) -> Option<usize> {
        let r = *self.pre.get(id.index())?;
        (r != usize::MAX).then_some(r)
    }

    /// Subtree size of `id` (including itself).
    pub fn size(&self, id: NodeId) -> Option<usize> {
        Some(self.table[self.pre(id)?].1)
    }

    /// Depth of `id` (document node = 0).
    pub fn level(&self, id: NodeId) -> Option<usize> {
        Some(self.table[self.pre(id)?].2)
    }

    /// O(1) ancestry test via the range encoding:
    /// `anc < desc <= anc + size(anc) - 1`.
    pub fn is_ancestor(&self, anc: NodeId, desc: NodeId) -> bool {
        match (self.pre(anc), self.pre(desc)) {
            (Some(a), Some(d)) => {
                let size = self.table[a].1;
                a < d && d < a + size
            }
            _ => false,
        }
    }

    /// Document-order comparison of two structural nodes.
    pub fn doc_order(&self, a: NodeId, b: NodeId) -> std::cmp::Ordering {
        self.pre(a).cmp(&self.pre(b))
    }

    /// Number of structural nodes in the snapshot.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the snapshot is empty (never true: the document node is
    /// always present).
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the paper's Figure 1 "person" document by hand.
    fn person_doc() -> Document {
        let mut d = Document::new();
        let person = d.append_element(d.document_node(), "person");
        let name = d.append_element(person, "name");
        let first = d.append_element(name, "first");
        d.append_text(first, "Arthur");
        let family = d.append_element(name, "family");
        d.append_text(family, "Dent");
        let birthday = d.append_element(person, "birthday");
        d.append_text(birthday, "1966-09-26");
        let age = d.append_element(person, "age");
        let decades = d.append_element(age, "decades");
        d.append_text(decades, "4");
        d.append_text(age, "2");
        d.append_element(age, "years");
        let weight = d.append_element(person, "weight");
        let kilos = d.append_element(weight, "kilos");
        d.append_text(kilos, "78");
        d.append_text(weight, ".");
        let grams = d.append_element(weight, "grams");
        d.append_text(grams, "230");
        d
    }

    #[test]
    fn figure1_string_values() {
        let d = person_doc();
        let person = d.root_element().unwrap();
        assert_eq!(d.string_value(person), "ArthurDent1966-09-264278.230");
        let name = d.children(person).next().unwrap();
        assert_eq!(d.string_value(name), "ArthurDent");
        let age = d
            .children(person)
            .find(|&c| d.name(c) == Some("age"))
            .unwrap();
        assert_eq!(d.string_value(age), "42");
        let weight = d
            .children(person)
            .find(|&c| d.name(c) == Some("weight"))
            .unwrap();
        assert_eq!(d.string_value(weight), "78.230");
    }

    #[test]
    fn attributes_do_not_contribute_to_string_value() {
        let mut d = Document::new();
        let e = d.append_element(d.document_node(), "e");
        d.set_attribute(e, "id", "attr-value");
        d.append_text(e, "text");
        assert_eq!(d.string_value(e), "text");
        let attr = d.attribute(e, "id").unwrap();
        assert_eq!(d.string_value(attr), "attr-value");
        assert_eq!(d.attribute_value(e, "id"), Some("attr-value"));
        assert_eq!(d.attribute_value(e, "missing"), None);
    }

    #[test]
    fn attribute_replacement_updates_in_place() {
        let mut d = Document::new();
        let e = d.append_element(d.document_node(), "e");
        let a1 = d.set_attribute(e, "k", "v1");
        let a2 = d.set_attribute(e, "k", "v2");
        assert_eq!(a1, a2);
        assert_eq!(d.attribute_value(e, "k"), Some("v2"));
        assert_eq!(d.attributes(e).count(), 1);
    }

    #[test]
    fn descendants_in_document_order() {
        let d = person_doc();
        let names: Vec<Option<&str>> = d
            .descendants_or_self(d.document_node())
            .map(|n| d.name(n))
            .collect();
        let elem_names: Vec<&str> = names.into_iter().flatten().collect();
        assert_eq!(
            elem_names,
            vec![
                "person", "name", "first", "family", "birthday", "age", "decades", "years",
                "weight", "kilos", "grams"
            ]
        );
    }

    #[test]
    fn ancestry_and_depth() {
        let d = person_doc();
        let person = d.root_element().unwrap();
        let age = d
            .descendants(person)
            .find(|&n| d.name(n) == Some("age"))
            .unwrap();
        let decades = d.first_child(age).unwrap();
        assert!(d.is_ancestor(person, decades));
        assert!(d.is_ancestor(age, decades));
        assert!(!d.is_ancestor(decades, age));
        assert!(!d.is_ancestor(age, age));
        assert_eq!(d.depth(d.document_node()), 0);
        assert_eq!(d.depth(person), 1);
        assert_eq!(d.depth(decades), 3);
    }

    #[test]
    fn pre_post_view_matches_tree_walks() {
        let d = person_doc();
        let v = d.pre_post_view();
        let person = d.root_element().unwrap();
        assert_eq!(v.pre(d.document_node()), Some(0));
        assert_eq!(v.pre(person), Some(1));
        // Subtree size of the whole document = all structural nodes.
        assert_eq!(v.size(d.document_node()), Some(v.len()));
        for a in d.descendants_or_self(d.document_node()) {
            for b in d.descendants_or_self(d.document_node()) {
                assert_eq!(
                    v.is_ancestor(a, b),
                    d.is_ancestor(a, b),
                    "range-encoding ancestry must match pointer chasing for {a:?},{b:?}"
                );
            }
            assert_eq!(v.level(a), Some(d.depth(a)));
        }
    }

    #[test]
    fn set_value_replaces_and_returns_old() {
        let mut d = person_doc();
        let person = d.root_element().unwrap();
        let family_text = d
            .descendants(person)
            .find(|&n| matches!(d.kind(n), NodeKind::Text(t) if t == "Dent"))
            .unwrap();
        let old = d.set_value(family_text, "Prefect");
        assert_eq!(old, "Dent");
        assert_eq!(d.string_value(person), "ArthurPrefect1966-09-264278.230");
    }

    #[test]
    #[should_panic(expected = "set_value on non-valued")]
    fn set_value_rejects_elements() {
        let mut d = person_doc();
        let person = d.root_element().unwrap();
        d.set_value(person, "nope");
    }

    #[test]
    fn delete_subtree_unlinks_and_frees() {
        let mut d = person_doc();
        let person = d.root_element().unwrap();
        let age = d
            .descendants(person)
            .find(|&n| d.name(n) == Some("age"))
            .unwrap();
        let before = d.stats().total_nodes;
        let parent = d.delete_subtree(age).unwrap();
        assert_eq!(parent, person);
        assert!(!d.is_live(age));
        assert_eq!(d.string_value(person), "ArthurDent1966-09-2678.230");
        // age + decades + "4" + "2" + years = 5 nodes freed
        assert_eq!(d.stats().total_nodes, before - 5);
        // Freed slots are recycled.
        let e = d.create_element("recycled");
        assert!(d.is_live(e));
    }

    #[test]
    fn delete_first_and_last_children() {
        let mut d = Document::new();
        let r = d.append_element(d.document_node(), "r");
        let a = d.append_element(r, "a");
        let b = d.append_element(r, "b");
        let c = d.append_element(r, "c");
        d.delete_subtree(a);
        assert_eq!(d.first_child(r), Some(b));
        d.delete_subtree(c);
        assert_eq!(d.last_child(r), Some(b));
        d.delete_subtree(b);
        assert_eq!(d.children(r).count(), 0);
        assert_eq!(d.first_child(r), None);
        assert_eq!(d.last_child(r), None);
    }

    #[test]
    fn stats_count_kinds() {
        let d = person_doc();
        let s = d.stats();
        assert_eq!(s.element_nodes, 11);
        assert_eq!(s.text_nodes, 8);
        assert_eq!(s.attribute_nodes, 0);
        assert_eq!(s.total_nodes, 19);
        assert!(s.text_bytes > 0);
        assert!(s.arena_bytes > s.text_bytes);
    }

    #[test]
    fn clone_shares_pages_until_written() {
        let mut big = Document::new();
        let root = big.append_element(big.document_node(), "r");
        for i in 0..2_000 {
            let e = big.append_element(root, "item");
            big.append_text(e, &format!("value-{i}"));
        }
        assert_eq!(big.shared_pages(), 0);
        let mut snap = big.clone();
        assert!(snap.shared_pages() > 0, "clone shares the arena pages");
        let text = snap
            .descendants(root)
            .find(|&n| matches!(snap.kind(n), NodeKind::Text(t) if t == "value-7"))
            .unwrap();
        snap.set_value(text, "rewritten");
        // Only the touched page detached; the original never moved.
        assert_eq!(big.string_value(text), "value-7");
        assert_eq!(snap.string_value(text), "rewritten");
        assert!(snap.shared_pages() > 0);
        let mut deep = big.deep_clone();
        drop(snap);
        assert_eq!(big.shared_pages(), 0);
        assert_eq!(deep.shared_pages(), 0);
        deep.set_value(text, "deep");
        assert_eq!(big.string_value(text), "value-7");
    }

    #[test]
    fn interning_is_stable() {
        let mut d = Document::new();
        let a = d.intern("item");
        let b = d.intern("item");
        assert_eq!(a, b);
        assert_eq!(d.resolve(a), "item");
        assert_eq!(d.lookup_name("item"), Some(a));
        assert_eq!(d.lookup_name("nope"), None);
    }
}
