//! # xvi-xml — the XML substrate
//!
//! The paper implements its indices inside MonetDB/XQuery, relying on a
//! document store that "permits efficient depth-first traversal" via a
//! range encoding of the nodes (§5). This crate is that substrate,
//! built from scratch:
//!
//! * [`parser`] — a hand-written, non-recursive XML parser (elements,
//!   attributes, text, CDATA, comments, processing instructions,
//!   character/entity references). *Shredding* a document = parsing it
//!   into a [`Document`].
//! * [`Document`] — an arena-allocated, **updatable** tree. Structural
//!   children (elements/text/comments/PIs) and attributes live on
//!   separate sibling chains because the XQuery Data Model excludes
//!   attributes from an element's string value while the paper still
//!   indexes attribute values.
//! * [`cursor`] — depth-first traversal: the `DFS.*` primitive set the
//!   paper's Figures 7 and 8 are written against, plus an event-based
//!   iterator.
//! * [`PrePostView`] — the pre/size/level range encoding used for
//!   document-order and ancestry predicates, as in MonetDB/XQuery.
//! * [`serialize`] — turning (sub)trees back into XML text.
//!
//! String values follow XDM: the string value of an element or the
//! document node is the concatenation of its descendant text nodes —
//! which is exactly the property the hash combination function `C` and
//! the state combination tables exploit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cursor;
mod doc;
mod error;
mod node;
pub mod parser;
pub mod serialize;

pub use cursor::{DfsCursor, DfsEvent};
pub use doc::{DocStats, Document, PrePostView};
pub use error::ParseError;
pub use node::{NameId, NodeId, NodeKind};
