//! Serialising (sub)trees back to XML text.

use crate::doc::Document;
use crate::node::{NodeId, NodeKind};

/// Serialises the whole document to XML text.
pub fn to_string(doc: &Document) -> String {
    let mut out = String::new();
    for child in doc.children(doc.document_node()) {
        write_node(doc, child, &mut out);
    }
    out
}

/// Serialises the subtree rooted at `node`.
pub fn node_to_string(doc: &Document, node: NodeId) -> String {
    let mut out = String::new();
    write_node(doc, node, &mut out);
    out
}

fn write_node(doc: &Document, node: NodeId, out: &mut String) {
    match doc.kind(node) {
        NodeKind::Document => {
            for child in doc.children(node) {
                write_node(doc, child, out);
            }
        }
        NodeKind::Element(name) => {
            out.push('<');
            out.push_str(doc.resolve(*name));
            for attr in doc.attributes(node) {
                if let NodeKind::Attribute { name, value } = doc.kind(attr) {
                    out.push(' ');
                    out.push_str(doc.resolve(*name));
                    out.push_str("=\"");
                    escape_into(value, true, out);
                    out.push('"');
                }
            }
            if doc.first_child(node).is_none() {
                out.push_str("/>");
            } else {
                out.push('>');
                // Children can be arbitrarily deep; recurse with an
                // explicit stack to stay iterative.
                let mut stack: Vec<(NodeId, bool)> = Vec::new();
                let kids: Vec<NodeId> = doc.children(node).collect();
                for k in kids.into_iter().rev() {
                    stack.push((k, false));
                }
                while let Some((n, closing)) = stack.pop() {
                    if closing {
                        out.push_str("</");
                        out.push_str(doc.name(n).expect("closing an element"));
                        out.push('>');
                        continue;
                    }
                    match doc.kind(n) {
                        NodeKind::Element(name) => {
                            out.push('<');
                            out.push_str(doc.resolve(*name));
                            for attr in doc.attributes(n) {
                                if let NodeKind::Attribute { name, value } = doc.kind(attr) {
                                    out.push(' ');
                                    out.push_str(doc.resolve(*name));
                                    out.push_str("=\"");
                                    escape_into(value, true, out);
                                    out.push('"');
                                }
                            }
                            if doc.first_child(n).is_none() {
                                out.push_str("/>");
                            } else {
                                out.push('>');
                                stack.push((n, true));
                                let kids: Vec<NodeId> = doc.children(n).collect();
                                for k in kids.into_iter().rev() {
                                    stack.push((k, false));
                                }
                            }
                        }
                        NodeKind::Text(t) => escape_into(t, false, out),
                        NodeKind::Comment(c) => {
                            out.push_str("<!--");
                            out.push_str(c);
                            out.push_str("-->");
                        }
                        NodeKind::Pi { target, data } => {
                            out.push_str("<?");
                            out.push_str(target);
                            if !data.is_empty() {
                                out.push(' ');
                                out.push_str(data);
                            }
                            out.push_str("?>");
                        }
                        NodeKind::Document | NodeKind::Attribute { .. } | NodeKind::Free => {}
                    }
                }
                out.push_str("</");
                out.push_str(doc.resolve(*name));
                out.push('>');
            }
        }
        NodeKind::Text(t) => escape_into(t, false, out),
        NodeKind::Comment(c) => {
            out.push_str("<!--");
            out.push_str(c);
            out.push_str("-->");
        }
        NodeKind::Pi { target, data } => {
            out.push_str("<?");
            out.push_str(target);
            if !data.is_empty() {
                out.push(' ');
                out.push_str(data);
            }
            out.push_str("?>");
        }
        NodeKind::Attribute { value, .. } => escape_into(value, true, out),
        NodeKind::Free => {}
    }
}

/// Escapes character data; `in_attr` additionally escapes quotes.
pub fn escape_into(s: &str, in_attr: bool, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' if in_attr => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        let src = "<a x=\"1\"><b>hi</b><c/>tail</a>";
        let doc = Document::parse(src).unwrap();
        assert_eq!(to_string(&doc), src);
    }

    #[test]
    fn roundtrip_escapes() {
        let doc = Document::parse("<a q=\"&quot;&amp;\">&lt;&amp;&gt;</a>").unwrap();
        let text = to_string(&doc);
        let doc2 = Document::parse(&text).unwrap();
        assert_eq!(
            doc.string_value(doc.document_node()),
            doc2.string_value(doc2.document_node())
        );
        assert_eq!(
            doc.attribute_value(doc.root_element().unwrap(), "q"),
            doc2.attribute_value(doc2.root_element().unwrap(), "q")
        );
    }

    #[test]
    fn roundtrip_preserves_structure_and_values() {
        let src = "<r><!--c--><?pi data?><e a=\"v\">text<f>nested</f>more</e></r>";
        let doc = Document::parse(src).unwrap();
        let out = to_string(&doc);
        let doc2 = Document::parse(&out).unwrap();
        assert_eq!(doc.stats(), doc2.stats());
        assert_eq!(out, to_string(&doc2), "serialisation is a fixpoint");
    }

    #[test]
    fn subtree_serialisation() {
        let doc = Document::parse("<r><a>1</a><b>2</b></r>").unwrap();
        let r = doc.root_element().unwrap();
        let b = doc.last_child(r).unwrap();
        assert_eq!(node_to_string(&doc, b), "<b>2</b>");
    }

    #[test]
    fn deep_tree_serialises_iteratively() {
        let depth = 50_000;
        let mut s = String::new();
        for _ in 0..depth {
            s.push_str("<d>");
        }
        s.push('x'); // keep the innermost element non-empty
        for _ in 0..depth {
            s.push_str("</d>");
        }
        let doc = Document::parse(&s).unwrap();
        assert_eq!(to_string(&doc), s);
    }
}
