//! A hand-written, iterative XML parser ("shredder").
//!
//! Supports the XML subset the paper's datasets need: elements,
//! attributes (single or double quoted), character data, CDATA
//! sections, comments, processing instructions, the XML declaration, a
//! (skipped) DOCTYPE, and the predefined entity and character
//! references. Namespaces are treated lexically (`a:b` is just a name).
//!
//! Design choices relevant to the indices:
//! * adjacent character data (text, CDATA, entity expansions) merges
//!   into one text node — the XDM normal form the combination
//!   functions assume;
//! * attribute values are entity-decoded at parse time, so indexed
//!   values are the *data model* values, not raw markup;
//! * parsing is iterative (explicit stack), so document depth is
//!   bounded by memory, not the call stack.

use crate::doc::Document;
use crate::error::ParseError;
use crate::node::NodeId;

/// Parses XML text into a [`Document`].
pub fn parse(input: &str) -> Result<Document, ParseError> {
    Parser::new(input).run()
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    doc: Document,
    /// Open element stack; the document node is the base.
    stack: Vec<NodeId>,
    /// Pending character data, merged until the next non-text event.
    text: String,
    seen_root: bool,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Parser<'a> {
        let bytes = input.strip_prefix('\u{feff}').unwrap_or(input).as_bytes();
        let doc = Document::new();
        Parser {
            bytes,
            pos: 0,
            stack: Vec::new(),
            text: String::new(),
            doc,
            seen_root: false,
        }
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError::new(self.pos, msg))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn bump(&mut self, n: usize) {
        self.pos += n;
    }

    fn expect(&mut self, s: &str) -> Result<(), ParseError> {
        if self.starts_with(s) {
            self.bump(s.len());
            Ok(())
        } else {
            self.err(format!("expected `{s}`"))
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump(1);
        }
    }

    fn run(mut self) -> Result<Document, ParseError> {
        let root = self.doc.document_node();
        self.stack.push(root);
        while self.pos < self.bytes.len() {
            if self.peek() == Some(b'<') {
                // CDATA merges with surrounding character data, so it
                // must not flush the pending text.
                if self.starts_with("<![CDATA[") {
                    self.cdata()?;
                } else {
                    self.flush_text()?;
                    self.markup()?;
                }
            } else {
                self.character_data()?;
            }
        }
        self.flush_text()?;
        if self.stack.len() != 1 {
            return self.err("unexpected end of input: unclosed element");
        }
        if !self.seen_root {
            return self.err("document has no root element");
        }
        Ok(self.doc)
    }

    /// Accumulates character data up to the next `<`, decoding
    /// references.
    fn character_data(&mut self) -> Result<(), ParseError> {
        while let Some(b) = self.peek() {
            match b {
                b'<' => break,
                b'&' => {
                    let c = self.reference()?;
                    self.text.push(c);
                }
                _ => {
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == b'<' || b == b'&' {
                            break;
                        }
                        self.bump(1);
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| ParseError::new(start, "invalid UTF-8 in text"))?;
                    self.text.push_str(chunk);
                }
            }
        }
        Ok(())
    }

    /// Emits accumulated character data as a text node (if any).
    fn flush_text(&mut self) -> Result<(), ParseError> {
        if self.text.is_empty() {
            return Ok(());
        }
        let parent = *self.stack.last().expect("stack never empty");
        if self.stack.len() == 1 {
            // Text directly under the document node: only whitespace is
            // well-formed there.
            if self.text.trim().is_empty() {
                self.text.clear();
                return Ok(());
            }
            return self.err("character data outside the root element");
        }
        let content = std::mem::take(&mut self.text);
        self.doc.append_text(parent, &content);
        Ok(())
    }

    fn markup(&mut self) -> Result<(), ParseError> {
        if self.starts_with("<!--") {
            self.comment()
        } else if self.starts_with("<!DOCTYPE") {
            self.doctype()
        } else if self.starts_with("<?") {
            self.pi()
        } else if self.starts_with("</") {
            self.end_tag()
        } else {
            self.start_tag()
        }
    }

    fn comment(&mut self) -> Result<(), ParseError> {
        self.expect("<!--")?;
        let start = self.pos;
        loop {
            if self.pos >= self.bytes.len() {
                return self.err("unterminated comment");
            }
            if self.starts_with("-->") {
                break;
            }
            self.bump(1);
        }
        let content = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| ParseError::new(start, "invalid UTF-8 in comment"))?
            .to_owned();
        self.bump(3);
        let parent = *self.stack.last().expect("stack never empty");
        let c = self.doc.create_comment(&content);
        self.doc.append_child(parent, c);
        Ok(())
    }

    fn cdata(&mut self) -> Result<(), ParseError> {
        if self.stack.len() == 1 {
            return self.err("CDATA outside the root element");
        }
        self.expect("<![CDATA[")?;
        let start = self.pos;
        loop {
            if self.pos >= self.bytes.len() {
                return self.err("unterminated CDATA section");
            }
            if self.starts_with("]]>") {
                break;
            }
            self.bump(1);
        }
        let content = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| ParseError::new(start, "invalid UTF-8 in CDATA"))?;
        self.text.push_str(content);
        self.bump(3);
        Ok(())
    }

    /// Skips a DOCTYPE declaration, including an internal subset.
    fn doctype(&mut self) -> Result<(), ParseError> {
        self.expect("<!DOCTYPE")?;
        let mut depth = 1usize;
        while depth > 0 {
            match self.peek() {
                None => return self.err("unterminated DOCTYPE"),
                Some(b'<') => depth += 1,
                Some(b'>') => depth -= 1,
                _ => {}
            }
            self.bump(1);
        }
        Ok(())
    }

    fn pi(&mut self) -> Result<(), ParseError> {
        self.expect("<?")?;
        let target = self.name()?;
        self.skip_ws();
        let start = self.pos;
        loop {
            if self.pos >= self.bytes.len() {
                return self.err("unterminated processing instruction");
            }
            if self.starts_with("?>") {
                break;
            }
            self.bump(1);
        }
        let data = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| ParseError::new(start, "invalid UTF-8 in PI"))?
            .trim_end()
            .to_owned();
        self.bump(2);
        // The XML declaration is not a node in the data model.
        if !target.eq_ignore_ascii_case("xml") {
            let parent = *self.stack.last().expect("stack never empty");
            let pi = self.doc.create_pi(&target, &data);
            self.doc.append_child(parent, pi);
        }
        Ok(())
    }

    fn start_tag(&mut self) -> Result<(), ParseError> {
        self.expect("<")?;
        let name = self.name()?;
        let parent = *self.stack.last().expect("stack never empty");
        if self.stack.len() == 1 {
            if self.seen_root {
                return self.err("multiple root elements");
            }
            self.seen_root = true;
        }
        let element = self.doc.append_element(parent, &name);

        loop {
            self.skip_ws();
            match self.peek() {
                None => return self.err("unterminated start tag"),
                Some(b'>') => {
                    self.bump(1);
                    self.stack.push(element);
                    return Ok(());
                }
                Some(b'/') => {
                    self.expect("/>")?;
                    return Ok(());
                }
                _ => {
                    let attr_name = self.name()?;
                    self.skip_ws();
                    self.expect("=")?;
                    self.skip_ws();
                    let value = self.attr_value()?;
                    if self.doc.attribute(element, &attr_name).is_some() {
                        return self.err(format!("duplicate attribute `{attr_name}`"));
                    }
                    self.doc.set_attribute(element, &attr_name, &value);
                }
            }
        }
    }

    fn end_tag(&mut self) -> Result<(), ParseError> {
        self.expect("</")?;
        let name = self.name()?;
        self.skip_ws();
        self.expect(">")?;
        if self.stack.len() <= 1 {
            return self.err(format!("closing tag `</{name}>` with no open element"));
        }
        let open = self.stack.pop().expect("checked above");
        let open_name = self.doc.name(open).expect("stack holds elements");
        if open_name != name {
            return self.err(format!(
                "mismatched closing tag: expected `</{open_name}>`, found `</{name}>`"
            ));
        }
        Ok(())
    }

    fn name(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            let is_name_byte =
                b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':') || b >= 0x80;
            if !is_name_byte {
                break;
            }
            self.bump(1);
        }
        if self.pos == start {
            return self.err("expected a name");
        }
        let first = self.bytes[start];
        if first.is_ascii_digit() || first == b'-' || first == b'.' {
            return Err(ParseError::new(start, "names cannot start with a digit"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map(|s| s.to_owned())
            .map_err(|_| ParseError::new(start, "invalid UTF-8 in name"))
    }

    fn attr_value(&mut self) -> Result<String, ParseError> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return self.err("attribute value must be quoted"),
        };
        self.bump(1);
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated attribute value"),
                Some(q) if q == quote => {
                    self.bump(1);
                    return Ok(out);
                }
                Some(b'<') => return self.err("`<` is not allowed in attribute values"),
                Some(b'&') => out.push(self.reference()?),
                Some(_) => {
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == quote || b == b'&' || b == b'<' {
                            break;
                        }
                        self.bump(1);
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| ParseError::new(start, "invalid UTF-8 in attribute"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    /// Decodes `&name;`, `&#ddd;` or `&#xhh;`.
    fn reference(&mut self) -> Result<char, ParseError> {
        self.expect("&")?;
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b';' {
                break;
            }
            if self.pos - start > 12 {
                return Err(ParseError::new(start, "entity reference too long"));
            }
            self.bump(1);
        }
        if self.peek() != Some(b';') {
            return Err(ParseError::new(start, "unterminated entity reference"));
        }
        let body = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| ParseError::new(start, "invalid UTF-8 in entity"))?;
        self.bump(1); // the `;`
        let c = match body {
            "amp" => '&',
            "lt" => '<',
            "gt" => '>',
            "apos" => '\'',
            "quot" => '"',
            _ if body.starts_with("#x") || body.starts_with("#X") => {
                let code = u32::from_str_radix(&body[2..], 16)
                    .map_err(|_| ParseError::new(start, "bad hex character reference"))?;
                char::from_u32(code)
                    .ok_or_else(|| ParseError::new(start, "invalid character code"))?
            }
            _ if body.starts_with('#') => {
                let code: u32 = body[1..]
                    .parse()
                    .map_err(|_| ParseError::new(start, "bad character reference"))?;
                char::from_u32(code)
                    .ok_or_else(|| ParseError::new(start, "invalid character code"))?
            }
            other => {
                return Err(ParseError::new(
                    start,
                    format!("unknown entity `&{other};`"),
                ))
            }
        };
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeKind;

    #[test]
    fn minimal_document() {
        let d = parse("<a/>").unwrap();
        let root = d.root_element().unwrap();
        assert_eq!(d.name(root), Some("a"));
        assert_eq!(d.children(root).count(), 0);
    }

    #[test]
    fn nested_elements_and_text() {
        let d = parse("<a><b>hello</b><c>world</c></a>").unwrap();
        let a = d.root_element().unwrap();
        assert_eq!(d.string_value(a), "helloworld");
        let kids: Vec<_> = d.children(a).collect();
        assert_eq!(kids.len(), 2);
        assert_eq!(d.name(kids[0]), Some("b"));
        assert_eq!(d.string_value(kids[1]), "world");
    }

    #[test]
    fn mixed_content_from_the_paper() {
        let d = parse("<age> <decades>4</decades>2<years/></age>").unwrap();
        let age = d.root_element().unwrap();
        assert_eq!(d.string_value(age), " 42");
        // " ", <decades>, "2", <years/> — whitespace is significant.
        assert_eq!(d.children(age).count(), 4);
    }

    #[test]
    fn attributes_parse_and_decode() {
        let d = parse(r#"<e a="1" b='two' c="a&amp;b &lt;x&gt;"/>"#).unwrap();
        let e = d.root_element().unwrap();
        assert_eq!(d.attribute_value(e, "a"), Some("1"));
        assert_eq!(d.attribute_value(e, "b"), Some("two"));
        assert_eq!(d.attribute_value(e, "c"), Some("a&b <x>"));
        assert_eq!(d.attributes(e).count(), 3);
    }

    #[test]
    fn entity_and_character_references_in_text() {
        let d = parse("<t>&lt;tag&gt; &amp; &quot;q&quot; &apos;a&apos; &#65;&#x42;</t>").unwrap();
        assert_eq!(
            d.string_value(d.root_element().unwrap()),
            "<tag> & \"q\" 'a' AB"
        );
    }

    #[test]
    fn cdata_merges_with_text() {
        let d = parse("<t>one<![CDATA[<two> & ]]>three</t>").unwrap();
        let t = d.root_element().unwrap();
        assert_eq!(d.string_value(t), "one<two> & three");
        // One merged text node, not three.
        assert_eq!(d.children(t).count(), 1);
    }

    #[test]
    fn comments_and_pis_become_nodes() {
        let d = parse("<t><!-- note --><?php echo ?>x</t>").unwrap();
        let t = d.root_element().unwrap();
        let kids: Vec<_> = d.children(t).collect();
        assert_eq!(kids.len(), 3);
        assert!(matches!(d.kind(kids[0]), NodeKind::Comment(c) if c == " note "));
        assert!(
            matches!(d.kind(kids[1]), NodeKind::Pi { target, data } if target == "php" && data == "echo")
        );
        // Comment/PI do not pollute the element string value.
        assert_eq!(d.string_value(t), "x");
    }

    #[test]
    fn prolog_and_doctype_are_skipped() {
        let d = parse(
            "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<!DOCTYPE r [ <!ELEMENT r (#PCDATA)> ]>\n<r>ok</r>",
        )
        .unwrap();
        assert_eq!(d.string_value(d.root_element().unwrap()), "ok");
    }

    #[test]
    fn bom_is_tolerated() {
        let d = parse("\u{feff}<r/>").unwrap();
        assert!(d.root_element().is_some());
    }

    #[test]
    fn unicode_content_roundtrips() {
        let d = parse("<t>καλημέρα — 你好 — 🚀</t>").unwrap();
        assert_eq!(
            d.string_value(d.root_element().unwrap()),
            "καλημέρα — 你好 — 🚀"
        );
    }

    #[test]
    fn deeply_nested_does_not_overflow_stack() {
        let depth = 100_000;
        let mut s = String::new();
        for _ in 0..depth {
            s.push_str("<d>");
        }
        s.push('x');
        for _ in 0..depth {
            s.push_str("</d>");
        }
        let d = parse(&s).unwrap();
        assert_eq!(d.stats().element_nodes, depth);
    }

    // ----- error cases ------------------------------------------------------

    #[test]
    fn rejects_mismatched_tags() {
        let e = parse("<a><b></a></b>").unwrap_err();
        assert!(e.message.contains("mismatched closing tag"), "{e}");
    }

    #[test]
    fn rejects_unclosed_element() {
        assert!(parse("<a><b>text").is_err());
    }

    #[test]
    fn rejects_multiple_roots() {
        let e = parse("<a/><b/>").unwrap_err();
        assert!(e.message.contains("multiple root"), "{e}");
    }

    #[test]
    fn rejects_text_outside_root() {
        assert!(parse("junk<a/>").is_err());
        assert!(parse("<a/>junk").is_err());
        // Whitespace outside the root is fine.
        assert!(parse("  <a/>  \n").is_ok());
    }

    #[test]
    fn rejects_unknown_entity() {
        let e = parse("<a>&nbsp;</a>").unwrap_err();
        assert!(e.message.contains("unknown entity"), "{e}");
    }

    #[test]
    fn rejects_duplicate_attributes() {
        let e = parse(r#"<a x="1" x="2"/>"#).unwrap_err();
        assert!(e.message.contains("duplicate attribute"), "{e}");
    }

    #[test]
    fn rejects_bad_attribute_syntax() {
        assert!(parse("<a x=unquoted/>").is_err());
        assert!(parse(r#"<a x="unterminated/>"#).is_err());
        assert!(parse(r#"<a x="a<b"/>"#).is_err());
    }

    #[test]
    fn rejects_empty_document() {
        assert!(parse("").is_err());
        assert!(parse("   ").is_err());
        assert!(parse("<!-- only a comment -->").is_err());
    }

    #[test]
    fn rejects_unterminated_constructs() {
        assert!(parse("<a><!-- no end").is_err());
        assert!(parse("<a><![CDATA[ no end").is_err());
        assert!(parse("<a><?pi no end").is_err());
        assert!(parse("<!DOCTYPE unfinished").is_err());
    }

    #[test]
    fn error_offsets_point_into_input() {
        let input = "<root>ok</root";
        let e = parse(input).unwrap_err();
        assert!(e.offset <= input.len());
        assert!(e.to_string().contains("byte"));
    }
}
