//! Parse errors with byte-offset positions.

/// An error encountered while parsing XML text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where the error was detected.
    pub offset: usize,
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl ParseError {
    pub(crate) fn new(offset: usize, message: impl Into<String>) -> ParseError {
        ParseError {
            offset,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "XML parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}
