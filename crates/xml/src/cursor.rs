//! Depth-first traversal: the paper's `DFS` module.
//!
//! Figures 7 and 8 of the paper drive index creation and maintenance
//! through a small set of primitives (`getRoot`, `nextChildNode`,
//! `nextSiblingNode`, `getFatherNode`, `hasSiblingNode`,
//! `leftMostSibling`), all evaluated against a *current node*.
//! [`DfsCursor`] is that interface. [`DfsEvent`] additionally offers an
//! enter/leave event stream, convenient for single-pass algorithms.

use crate::doc::Document;
use crate::node::NodeId;

/// A cursor over the structural tree, exposing the traversal
/// primitives the paper's algorithms are written against.
///
/// The cursor holds a position (`current`); every method mirrors one of
/// the paper's `DFS.*` calls.
#[derive(Debug, Clone, Copy)]
pub struct DfsCursor<'a> {
    doc: &'a Document,
    current: NodeId,
}

impl<'a> DfsCursor<'a> {
    /// Positions a cursor at the document root (`DFS.getRoot()`).
    pub fn at_root(doc: &'a Document) -> DfsCursor<'a> {
        DfsCursor {
            doc,
            current: doc.document_node(),
        }
    }

    /// Positions a cursor at an arbitrary node.
    pub fn at(doc: &'a Document, node: NodeId) -> DfsCursor<'a> {
        DfsCursor { doc, current: node }
    }

    /// The node the cursor is on.
    pub fn current(&self) -> NodeId {
        self.current
    }

    /// `DFS.nextChildNode()`: descends to the first child, returning
    /// the new position (or `None` at a leaf, cursor unchanged).
    pub fn next_child_node(&mut self) -> Option<NodeId> {
        let c = self.doc.first_child(self.current)?;
        self.current = c;
        Some(c)
    }

    /// `DFS.nextSiblingNode()`: moves right to the next sibling.
    pub fn next_sibling_node(&mut self) -> Option<NodeId> {
        let s = self.doc.next_sibling(self.current)?;
        self.current = s;
        Some(s)
    }

    /// `DFS.hasSiblingNode()`: whether a right sibling exists.
    pub fn has_sibling_node(&self) -> bool {
        self.doc.next_sibling(self.current).is_some()
    }

    /// `DFS.getFatherNode()`: the parent of the current node (cursor
    /// unchanged — the paper reads the father's fields, then continues
    /// from the current node).
    pub fn get_father_node(&self) -> Option<NodeId> {
        self.doc.parent(self.current)
    }

    /// `DFS.leftMostSibling()`: moves to the first sibling of the
    /// current node (possibly itself).
    pub fn left_most_sibling(&mut self) -> NodeId {
        if let Some(p) = self.doc.parent(self.current) {
            if let Some(first) = self.doc.first_child(p) {
                self.current = first;
            }
        }
        self.current
    }

    /// Moves the cursor to a specific node.
    pub fn jump(&mut self, node: NodeId) {
        self.current = node;
    }
}

/// One step of an enter/leave depth-first walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DfsEvent {
    /// First visit of a node (pre-order position).
    Enter(NodeId),
    /// All descendants of the node have been visited (post-order
    /// position). Leaves produce `Enter` immediately followed by
    /// `Leave`.
    Leave(NodeId),
}

/// Streams [`DfsEvent`]s for the subtree rooted at `root` (structural
/// nodes only — attributes are visited separately by index creation).
pub fn dfs_events(doc: &Document, root: NodeId) -> impl Iterator<Item = DfsEvent> + '_ {
    let mut stack: Vec<(NodeId, bool)> = vec![(root, false)];
    std::iter::from_fn(move || {
        let (node, expanded) = stack.pop()?;
        if expanded {
            return Some(DfsEvent::Leave(node));
        }
        stack.push((node, true));
        // Push children in reverse so the leftmost pops first.
        let children: Vec<NodeId> = doc.children(node).collect();
        for c in children.into_iter().rev() {
            stack.push((c, false));
        }
        Some(DfsEvent::Enter(node))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Document {
        Document::parse("<a><b><c>1</c><d>2</d></b><e>3</e></a>").unwrap()
    }

    #[test]
    fn cursor_walks_the_paper_route() {
        let doc = sample();
        let mut cur = DfsCursor::at_root(&doc);
        assert_eq!(cur.current(), doc.document_node());

        let a = cur.next_child_node().unwrap();
        assert_eq!(doc.name(a), Some("a"));
        let b = cur.next_child_node().unwrap();
        assert_eq!(doc.name(b), Some("b"));
        let c = cur.next_child_node().unwrap();
        assert_eq!(doc.name(c), Some("c"));
        let one = cur.next_child_node().unwrap();
        assert_eq!(doc.string_value(one), "1");
        assert_eq!(cur.next_child_node(), None); // leaf: cursor stays
        assert_eq!(cur.current(), one);
        assert!(!cur.has_sibling_node());
        assert_eq!(cur.get_father_node(), Some(c));

        cur.jump(c);
        assert!(cur.has_sibling_node());
        let d = cur.next_sibling_node().unwrap();
        assert_eq!(doc.name(d), Some("d"));
        assert_eq!(cur.left_most_sibling(), c);
        assert_eq!(cur.current(), c);
    }

    #[test]
    fn left_most_sibling_of_root_is_identity() {
        let doc = sample();
        let mut cur = DfsCursor::at_root(&doc);
        assert_eq!(cur.left_most_sibling(), doc.document_node());
    }

    #[test]
    fn events_are_properly_nested() {
        let doc = sample();
        let mut depth = 0i32;
        let mut enters = 0;
        let mut open = Vec::new();
        for ev in dfs_events(&doc, doc.document_node()) {
            match ev {
                DfsEvent::Enter(n) => {
                    depth += 1;
                    enters += 1;
                    open.push(n);
                }
                DfsEvent::Leave(n) => {
                    depth -= 1;
                    assert_eq!(open.pop(), Some(n), "leave order mirrors enter order");
                }
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
        // document + a,b,c,d,e + three text nodes = 9 structural nodes
        assert_eq!(enters, 9);
    }

    #[test]
    fn events_match_descendants_or_self_order() {
        let doc = sample();
        let pre: Vec<NodeId> = dfs_events(&doc, doc.document_node())
            .filter_map(|e| match e {
                DfsEvent::Enter(n) => Some(n),
                DfsEvent::Leave(_) => None,
            })
            .collect();
        let walk: Vec<NodeId> = doc.descendants_or_self(doc.document_node()).collect();
        assert_eq!(pre, walk);
    }

    #[test]
    fn subtree_events_stay_in_subtree() {
        let doc = sample();
        let a = doc.root_element().unwrap();
        let b = doc.first_child(a).unwrap();
        let nodes: Vec<NodeId> = dfs_events(&doc, b)
            .filter_map(|e| match e {
                DfsEvent::Enter(n) => Some(n),
                _ => None,
            })
            .collect();
        assert_eq!(nodes.len(), 5); // b, c, "1", d, "2"
        for n in nodes {
            assert!(n == b || doc.is_ancestor(b, n));
        }
    }
}
