//! Node identifiers and node payloads.

/// Index of a node inside a [`crate::Document`] arena.
///
/// `NodeId`s are stable across value updates and across deletions of
/// *other* subtrees (the arena recycles slots only after an explicit
/// delete), which is what lets the value indices reference nodes
/// directly, like the `node id` column of the paper's index tuples.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    pub(crate) const NONE: NodeId = NodeId(u32::MAX);

    /// The raw arena index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a `NodeId` from [`NodeId::index`]. The caller is
    /// responsible for it denoting a live node of the right document.
    #[inline]
    pub fn from_index(i: usize) -> NodeId {
        NodeId(i as u32)
    }

    #[inline]
    pub(crate) fn get(self) -> Option<NodeId> {
        (self != Self::NONE).then_some(self)
    }
}

impl std::fmt::Debug for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if *self == Self::NONE {
            write!(f, "NodeId(-)")
        } else {
            write!(f, "NodeId({})", self.0)
        }
    }
}

/// Interned element/attribute name.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct NameId(pub(crate) u32);

/// The payload of a document node.
#[derive(Clone, Debug, PartialEq)]
pub enum NodeKind {
    /// The document node (arena slot 0, exactly one per document).
    Document,
    /// An element node; its name is interned in the document.
    Element(NameId),
    /// An attribute node. Attributes hang off a separate chain and do
    /// not contribute to their element's string value.
    Attribute {
        /// Interned attribute name.
        name: NameId,
        /// Attribute value (already entity-decoded).
        value: String,
    },
    /// A text node. Adjacent text is merged during parsing, so no two
    /// text siblings are ever adjacent (XDM normal form).
    Text(String),
    /// A comment node (`<!-- … -->`).
    Comment(String),
    /// A processing instruction (`<?target data?>`).
    Pi {
        /// The PI target.
        target: String,
        /// The PI data (may be empty).
        data: String,
    },
    /// Recycled arena slot.
    Free,
}

impl NodeKind {
    /// Whether this node kind carries a directly stored string value
    /// (text or attribute), as opposed to deriving it from descendants.
    pub fn has_direct_value(&self) -> bool {
        matches!(self, NodeKind::Text(_) | NodeKind::Attribute { .. })
    }
}

/// Arena slot: tree links + payload.
#[derive(Clone, Debug)]
pub(crate) struct NodeData {
    pub(crate) parent: NodeId,
    pub(crate) first_child: NodeId,
    pub(crate) last_child: NodeId,
    pub(crate) next_sibling: NodeId,
    pub(crate) prev_sibling: NodeId,
    /// Head of the attribute chain (elements only).
    pub(crate) first_attr: NodeId,
    pub(crate) kind: NodeKind,
}

impl NodeData {
    pub(crate) fn new(kind: NodeKind) -> NodeData {
        NodeData {
            parent: NodeId::NONE,
            first_child: NodeId::NONE,
            last_child: NodeId::NONE,
            next_sibling: NodeId::NONE,
            prev_sibling: NodeId::NONE,
            first_attr: NodeId::NONE,
            kind,
        }
    }
}
