//! The hash function `H` (paper Figure 2).
//!
//! `H` consumes the characters of an XML string value left to right and
//! XOR-s the 7 low bits of each character into a 27-bit circular buffer
//! (the *c-array*), advancing the write offset by 5 bit positions per
//! character and wrapping at 27. Because `gcd(5, 27) = 1` the offset
//! visits all 27 positions before repeating, so consecutive characters
//! land on distinct, interleaved positions — this is what keeps
//! collisions low for typical text (see the paper's Figure 11 and the
//! [`crate::collisions`] module).

use crate::{HashValue, C_ARRAY_BITS};

const C_ARRAY_LOW_MASK: u32 = (1 << C_ARRAY_BITS) - 1;

/// Hashes a string value with the paper's hash function `H`.
///
/// Operates on the UTF-8 bytes of `s`; each byte contributes its 7 low
/// bits, exactly as the paper's C implementation does (`*str & 127`).
/// Hashing bytes (rather than code points) is essential for the
/// homomorphism `H(a ⧺ b) = C(H(a), H(b))` to hold for *byte*
/// concatenation, which is how XML string values concatenate.
///
/// ```
/// use xvi_hash::{combine, hash_str};
/// let h = combine(hash_str("Arthur"), hash_str("Dent"));
/// assert_eq!(h, hash_str("ArthurDent"));
/// ```
#[inline]
pub fn hash_str(s: &str) -> HashValue {
    hash_bytes(s.as_bytes())
}

/// Hashes a byte sequence with the paper's hash function `H`.
///
/// This is the workhorse behind [`hash_str`]; it is public because the
/// XML store hands out string values as byte slices during shredding.
pub fn hash_bytes(bytes: &[u8]) -> HashValue {
    let mut acc: u32 = 0; // c-array accumulator, LSB-aligned; bits >= 27 are junk
    let mut offset: u32 = 0;
    for &b in bytes {
        let c = u32::from(b & 127);
        // XOR the 7 bits of the character at the current offset. For
        // offsets > 20 the character straddles the end of the 27-bit
        // circle: the overflowing high bits wrap to the low positions.
        acc ^= c << offset;
        if offset > 20 {
            acc ^= c >> (C_ARRAY_BITS - offset);
        }
        offset += 5;
        if offset > 26 {
            offset -= 27;
        }
    }
    // The paper's final `hval <<= 5` on a 32-bit word silently discards
    // the junk accumulated above bit 26; masking achieves the same.
    HashValue::from_parts(acc & C_ARRAY_LOW_MASK, offset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combine;

    /// Paper Figure 3: the worked example `H("Arthur")`.
    ///
    /// The figure lists the resulting c-array MSB-first as
    /// `011011001011101111000011101` and the offc field as `00011`
    /// (offset 3 = 6 characters × 5 positions mod 27).
    #[test]
    fn figure3_arthur_worked_example() {
        let h = hash_str("Arthur");
        #[allow(clippy::unusual_byte_groupings)] // grouped as c-array | offc
        {
            assert_eq!(h.c_array(), 0b011011001011101111000011101);
            assert_eq!(h.offset(), 3);
            assert_eq!(h.raw(), 0b011011001011101111000011101_00011);
        }
    }

    #[test]
    fn offset_advances_five_positions_per_character_mod_27() {
        for len in 0..100usize {
            let s = "x".repeat(len);
            assert_eq!(
                hash_bytes(s.as_bytes()).offset(),
                (len as u32 * 5) % 27,
                "offset after {len} characters"
            );
        }
    }

    #[test]
    fn single_character_occupies_its_offset() {
        // One character at offset 0: c-array == the 7 low bits.
        assert_eq!(hash_str("A").c_array(), u32::from(b'A'));
        assert_eq!(hash_str("\x7f").c_array(), 127);
    }

    #[test]
    fn only_seven_low_bits_of_each_byte_contribute() {
        // 'A' (0x41) and 0xC1 share the same 7 low bits.
        assert_eq!(hash_bytes(&[0x41]), hash_bytes(&[0xC1]));
    }

    #[test]
    fn wraparound_region_is_exercised() {
        // 5 characters put the offset at 25; the 6th character straddles
        // the circle boundary. Verify against a split-and-combine.
        let s = "abcdef";
        let h = combine(hash_str("abcde"), hash_str("f"));
        assert_eq!(h, hash_str(s));
    }

    #[test]
    fn hash_distinguishes_order_for_most_strings() {
        assert_ne!(hash_str("ab"), hash_str("ba"));
        assert_ne!(hash_str("Arthur"), hash_str("ruhtrA"));
    }

    /// The documented pathology behind the paper's Figure 11 tail: the
    /// write offset has period 27 in the character count, so swapping
    /// two characters exactly 27 positions apart XORs the same values
    /// into the same positions and the hashes collide.
    #[test]
    fn period_27_character_swap_collides() {
        let filler = "w".repeat(26);
        let a = format!("A{filler}B-tail");
        let b = format!("B{filler}A-tail");
        assert_ne!(a, b);
        assert_eq!(hash_str(&a), hash_str(&b));
    }

    #[test]
    fn nearby_swaps_do_not_collide() {
        for dist in 1..27usize {
            let filler = "w".repeat(dist - 1);
            let a = format!("A{filler}B");
            let b = format!("B{filler}A");
            assert_ne!(
                hash_str(&a),
                hash_str(&b),
                "swap at distance {dist} must not collide"
            );
        }
    }

    #[test]
    fn long_input_stability() {
        // A megabyte of repeating text hashes deterministically and the
        // offset lands where the length predicts.
        let s = "lorem ipsum ".repeat(87_382);
        let h = hash_bytes(s.as_bytes());
        assert_eq!(h.offset(), (s.len() as u32 * 5) % 27);
        assert_eq!(h, hash_bytes(s.as_bytes()));
    }
}
