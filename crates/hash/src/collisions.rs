//! Hash-stability analysis (paper Figure 11).
//!
//! Figure 11 plots, per dataset, how many hash values are shared by
//! exactly *k* distinct strings. [`CollisionHistogram`] ingests string
//! values (deduplicating them first, as the paper counts *distinct*
//! strings) and produces that distribution plus the headline
//! collision-rate number quoted in §6.

use std::collections::{BTreeMap, HashMap, HashSet};

use crate::{hash_str, HashValue};

/// Accumulates the distinct-strings-per-hash-value distribution.
///
/// ```
/// use xvi_hash::collisions::CollisionHistogram;
/// let mut h = CollisionHistogram::new();
/// for s in ["a", "b", "a", "c"] {
///     h.observe(s);
/// }
/// assert_eq!(h.distinct_strings(), 3);
/// // With only three short strings nothing collides:
/// assert_eq!(h.distribution().get(&1), Some(&3));
/// assert_eq!(h.colliding_strings(), 0);
/// ```
#[derive(Debug, Default)]
pub struct CollisionHistogram {
    /// Distinct strings seen so far (the paper deduplicates inputs).
    seen: HashSet<String>,
    /// Number of distinct strings per hash value.
    per_hash: HashMap<HashValue, u64>,
}

impl CollisionHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one string value; duplicate strings are ignored.
    pub fn observe(&mut self, s: &str) {
        if self.seen.insert(s.to_owned()) {
            *self.per_hash.entry(hash_str(s)).or_insert(0) += 1;
        }
    }

    /// Number of distinct strings observed.
    pub fn distinct_strings(&self) -> u64 {
        self.seen.len() as u64
    }

    /// Number of distinct hash values observed.
    pub fn distinct_hashes(&self) -> u64 {
        self.per_hash.len() as u64
    }

    /// The Figure 11 series: for each collision multiplicity *k* (the
    /// x-axis), the number of hash values shared by exactly *k*
    /// distinct strings (the y-axis, log scale in the paper).
    pub fn distribution(&self) -> BTreeMap<u64, u64> {
        let mut dist = BTreeMap::new();
        for &count in self.per_hash.values() {
            *dist.entry(count).or_insert(0) += 1;
        }
        dist
    }

    /// Number of distinct strings that share their hash value with at
    /// least one other distinct string (the paper's "<1% of the total
    /// string values collide" metric counts these).
    pub fn colliding_strings(&self) -> u64 {
        self.per_hash.values().filter(|&&c| c > 1).sum()
    }

    /// Fraction of distinct strings involved in a collision, in `0..=1`.
    pub fn collision_rate(&self) -> f64 {
        if self.seen.is_empty() {
            return 0.0;
        }
        self.colliding_strings() as f64 / self.distinct_strings() as f64
    }

    /// The largest number of distinct strings sharing one hash value
    /// (the paper observes up to 9 on the Wiki dataset's URLs).
    pub fn max_multiplicity(&self) -> u64 {
        self.per_hash.values().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = CollisionHistogram::new();
        assert_eq!(h.distinct_strings(), 0);
        assert_eq!(h.distinct_hashes(), 0);
        assert_eq!(h.collision_rate(), 0.0);
        assert_eq!(h.max_multiplicity(), 0);
        assert!(h.distribution().is_empty());
    }

    #[test]
    fn duplicates_are_counted_once() {
        let mut h = CollisionHistogram::new();
        h.observe("same");
        h.observe("same");
        h.observe("same");
        assert_eq!(h.distinct_strings(), 1);
        assert_eq!(h.distinct_hashes(), 1);
        assert_eq!(h.colliding_strings(), 0);
    }

    #[test]
    fn url_pathology_shows_up_in_distribution() {
        // URLs whose distinguishing characters repeat 27 positions apart
        // collide pairwise (the Wiki anomaly of §6).
        let filler = "w".repeat(26);
        let mut h = CollisionHistogram::new();
        h.observe(&format!("http://A{filler}B.org"));
        h.observe(&format!("http://B{filler}A.org"));
        h.observe("http://unrelated.example.org");
        assert_eq!(h.distinct_strings(), 3);
        assert_eq!(h.distinct_hashes(), 2);
        assert_eq!(h.max_multiplicity(), 2);
        assert_eq!(h.colliding_strings(), 2);
        let dist = h.distribution();
        assert_eq!(dist.get(&1), Some(&1));
        assert_eq!(dist.get(&2), Some(&1));
    }

    #[test]
    fn distribution_totals_are_consistent() {
        let mut h = CollisionHistogram::new();
        for i in 0..500 {
            h.observe(&format!("value-{i}"));
        }
        let dist = h.distribution();
        let strings: u64 = dist.iter().map(|(k, v)| k * v).sum();
        let hashes: u64 = dist.values().sum();
        assert_eq!(strings, h.distinct_strings());
        assert_eq!(hashes, h.distinct_hashes());
    }
}
