//! # xvi-hash — the string-value hash `H` and combination function `C`
//!
//! This crate implements the two functions at the heart of the paper's
//! *string equi-lookup index* (Section 3 of Sidirourgos & Boncz, EDBT'09):
//!
//! * [`hash_str`] / [`hash_bytes`] — the hash function `H` of Figure 2.
//!   It maps an arbitrary-length XML string value to a 32-bit
//!   [`HashValue`] whose 27 most significant bits (the *c-array*) are a
//!   circular XOR of the input characters, stepped 5 bit positions per
//!   character, and whose 5 least significant bits (the *offc* field)
//!   record where in the circle the next character would land.
//! * [`combine`] — the associative combination function `C` of Figure 4,
//!   designed so that for all strings `a`, `b`:
//!
//!   ```text
//!   H(a ⧺ b) = C(H(a), H(b))
//!   ```
//!
//!   This property is what makes the index *updatable*: the hash of an
//!   element node (the concatenation of its descendant text nodes, per
//!   the XQuery data model) can be recomputed from the already-stored
//!   hashes of its children without touching any string data.
//!
//! `(HashValue, combine)` forms a **monoid** with identity
//! [`HashValue::EMPTY`] (= `H("")`); associativity and the homomorphism
//! property are exercised by the property tests in this crate.
//!
//! The [`collisions`] module provides the histogram machinery used to
//! reproduce the paper's hash-stability experiment (Figure 11).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod combine;
mod hasher;

pub mod collisions;

pub use combine::{combine, combine_all};
pub use hasher::{hash_bytes, hash_str};

/// Number of bits in the c-array (character circle) of a hash value.
pub const C_ARRAY_BITS: u32 = 27;

/// Number of low bits reserved for the `offc` (offset) field.
pub const OFFC_BITS: u32 = 5;

/// Bit mask selecting the `offc` field of a raw hash value (`mask5`).
pub const OFFC_MASK: u32 = (1 << OFFC_BITS) - 1; // 0b11111

/// Bit mask selecting the c-array of a raw hash value (`mask27`).
pub const C_ARRAY_MASK: u32 = !OFFC_MASK;

/// A 32-bit XML string-value hash in the paper's `C27..1|OFFC` format.
///
/// The 27 most significant bits hold the circular-XOR c-array; the 5
/// least significant bits hold the offset (mod 27) at which the *next*
/// character of the string would be XOR-ed. Values are only constructed
/// through [`hash_str`], [`hash_bytes`], [`combine`] or the checked
/// [`HashValue::from_raw`], so the invariant `offc < 27` always holds.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct HashValue(u32);

impl HashValue {
    /// The hash of the empty string; the identity element of [`combine`].
    pub const EMPTY: HashValue = HashValue(0);

    /// Returns the raw 32-bit representation (`c-array << 5 | offc`).
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Reconstructs a hash value from its raw representation.
    ///
    /// Returns `None` if the `offc` field is not a valid offset
    /// (i.e. not in `0..27`); every such raw word is unreachable from
    /// the hash function and would break [`combine`]'s rotation.
    #[inline]
    pub const fn from_raw(raw: u32) -> Option<HashValue> {
        if raw & OFFC_MASK < C_ARRAY_BITS {
            Some(HashValue(raw))
        } else {
            None
        }
    }

    /// The 27-bit character circle, aligned to the least significant bit.
    #[inline]
    pub const fn c_array(self) -> u32 {
        self.0 >> OFFC_BITS
    }

    /// The offset (in `0..27`) where the next character would be XOR-ed.
    #[inline]
    pub const fn offset(self) -> u32 {
        self.0 & OFFC_MASK
    }

    /// Internal constructor from a LSB-aligned c-array and an offset.
    #[inline]
    pub(crate) fn from_parts(c_array: u32, offset: u32) -> HashValue {
        debug_assert!(offset < C_ARRAY_BITS);
        debug_assert!(c_array >> C_ARRAY_BITS == 0);
        HashValue(c_array << OFFC_BITS | offset)
    }
}

impl std::fmt::Debug for HashValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Mirrors the paper's Figure 3 layout: c-array MSB-first, then offc.
        write!(f, "H({:027b}|{:05b})", self.c_array(), self.offset())
    }
}

impl std::fmt::Display for HashValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#010x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_roundtrip() {
        let h = hash_str("hello world");
        assert_eq!(HashValue::from_raw(h.raw()), Some(h));
    }

    #[test]
    fn from_raw_rejects_invalid_offsets() {
        for offc in 27..=31u32 {
            assert_eq!(HashValue::from_raw(0xdead_bee0 | offc), None);
        }
        for offc in 0..27u32 {
            assert!(HashValue::from_raw(offc).is_some());
        }
    }

    #[test]
    fn empty_hash_is_all_zero() {
        assert_eq!(hash_str(""), HashValue::EMPTY);
        assert_eq!(HashValue::EMPTY.raw(), 0);
        assert_eq!(HashValue::EMPTY.c_array(), 0);
        assert_eq!(HashValue::EMPTY.offset(), 0);
    }

    #[test]
    fn parts_agree_with_masks() {
        let h = hash_str("Arthur Dent");
        assert_eq!(h.c_array(), (h.raw() & C_ARRAY_MASK) >> OFFC_BITS);
        assert_eq!(h.offset(), h.raw() & OFFC_MASK);
    }

    #[test]
    fn debug_format_matches_figure_layout() {
        let s = format!("{:?}", hash_str("Arthur"));
        assert_eq!(s, "H(011011001011101111000011101|00011)");
    }
}
