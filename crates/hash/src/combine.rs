//! The associative combination function `C` (paper Figure 4).
//!
//! `C` combines the hashes of two adjacent string values into the hash
//! of their concatenation without looking at any character data: the
//! right operand's c-array is rotated left (within the 27-bit circle)
//! by the left operand's offset and XOR-ed in, and the offsets add
//! modulo 27. Correctness rests on XOR's associativity/commutativity —
//! rotating first or XOR-ing first does not change the outcome — which
//! is also what makes deferred, commutative index maintenance possible
//! (paper §5.1).

use crate::{HashValue, C_ARRAY_BITS, C_ARRAY_MASK, OFFC_MASK};

/// Combines two hash values: `combine(H(a), H(b)) == H(a ⧺ b)`.
///
/// `(HashValue, combine)` is a monoid with identity [`HashValue::EMPTY`]:
///
/// ```
/// use xvi_hash::{combine, hash_str, HashValue};
/// let (a, b, c) = (hash_str("x"), hash_str("yy"), hash_str("zzz"));
/// assert_eq!(combine(combine(a, b), c), combine(a, combine(b, c)));
/// assert_eq!(combine(HashValue::EMPTY, a), a);
/// assert_eq!(combine(a, HashValue::EMPTY), a);
/// ```
#[inline]
pub fn combine(left: HashValue, right: HashValue) -> HashValue {
    let off_l = left.raw() & OFFC_MASK;
    let off_r = right.raw() & OFFC_MASK;
    let ca_l = left.raw() & C_ARRAY_MASK;
    let ca_r = right.raw() & C_ARRAY_MASK;

    // Circular left shift of the right c-array by `off_l` positions,
    // carried out on the MSB-aligned representation exactly as in the
    // paper: bits pushed past bit 31 are re-inserted just above the
    // offc field, and anything that leaked into the offc bits is masked.
    let rotated = (ca_r << off_l) | ((ca_r >> (C_ARRAY_BITS - off_l)) & C_ARRAY_MASK);

    let mut comb = ca_l ^ rotated;
    comb |= (off_l + off_r) % C_ARRAY_BITS;
    // Unchecked construction is fine: both inputs carry offc < 27 by
    // invariant, and the sum mod 27 stays < 27.
    HashValue::from_raw(comb).expect("combine preserves the offc < 27 invariant")
}

/// Folds [`combine`] over a sequence of hash values, left to right.
///
/// Returns [`HashValue::EMPTY`] for an empty sequence. Because `C` is
/// associative the fold direction does not affect the result; left to
/// right matches document order, which is how the index-creation pass
/// (paper Figure 7) accumulates element hashes.
pub fn combine_all<I: IntoIterator<Item = HashValue>>(values: I) -> HashValue {
    values.into_iter().fold(HashValue::EMPTY, combine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash_str;

    #[test]
    fn homomorphism_on_the_paper_example() {
        // Section 3: h<name> = C(h<first>, h<family>).
        let h_name = combine(hash_str("Arthur"), hash_str("Dent"));
        assert_eq!(h_name, hash_str("ArthurDent"));

        // h<person> = C(h<name>, C(h<birthday>, C(h<age>, h<weight>))).
        let h_age = hash_str("42");
        let h_weight = hash_str("78.230");
        let h_birthday = hash_str("1966-09-26");
        let h_person = combine(h_name, combine(h_birthday, combine(h_age, h_weight)));
        assert_eq!(h_person, hash_str("ArthurDent1966-09-264278.230"));
    }

    #[test]
    fn identity_element() {
        for s in ["", "a", "Arthur", "mixed content with spaces", "\u{1F600}"] {
            let h = hash_str(s);
            assert_eq!(combine(HashValue::EMPTY, h), h);
            assert_eq!(combine(h, HashValue::EMPTY), h);
        }
    }

    #[test]
    fn offsets_add_mod_27() {
        let a = hash_str(&"x".repeat(13)); // offset 65 % 27 = 11
        let b = hash_str(&"y".repeat(20)); // offset 100 % 27 = 19
        assert_eq!(combine(a, b).offset(), (11 + 19) % 27);
    }

    #[test]
    fn combine_all_matches_nested_combines() {
        let parts = ["Arthur", "Dent", "1966-09-26", "42", "78.230"];
        let hashes: Vec<_> = parts.iter().map(|p| hash_str(p)).collect();
        let whole = parts.concat();
        assert_eq!(combine_all(hashes.iter().copied()), hash_str(&whole));
    }

    #[test]
    fn combine_all_empty_is_identity() {
        assert_eq!(combine_all(std::iter::empty()), HashValue::EMPTY);
    }

    #[test]
    fn update_scenario_from_section3() {
        // "Dent" -> "Prefect": only the changed leaf is re-hashed, the
        // ancestors are recombined from stored sibling hashes.
        let h_first = hash_str("Arthur");
        let h_family_new = hash_str("Prefect");
        let h_name = combine(h_first, h_family_new);
        assert_eq!(h_name, hash_str("ArthurPrefect"));

        let h_person = combine(
            h_name,
            combine(
                hash_str("1966-09-26"),
                combine(hash_str("42"), hash_str("78.230")),
            ),
        );
        assert_eq!(h_person, hash_str("ArthurPrefect1966-09-264278.230"));
    }

    #[test]
    fn full_rotation_boundary_offsets() {
        // Left operands whose offsets cover every residue class 0..27,
        // including the off_l = 0 edge (rotation by zero).
        for left_len in 0..27usize {
            let left = "L".repeat(left_len);
            let right = "the quick brown fox";
            assert_eq!(
                combine(hash_str(&left), hash_str(right)),
                hash_str(&format!("{left}{right}")),
                "left length {left_len}"
            );
        }
    }
}
