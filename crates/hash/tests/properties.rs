//! Property-based tests for the hash monoid.
//!
//! These pin down the algebraic contract the paper's index maintenance
//! relies on: `C` is an associative operation with identity `H("")`,
//! and `H` is a monoid homomorphism from byte strings under
//! concatenation to `(HashValue, C)`.

use proptest::prelude::*;
use xvi_hash::{combine, combine_all, hash_bytes, HashValue};

/// Arbitrary *valid* hash values: any 27-bit c-array with any offset in
/// `0..27`. `combine` must be closed and associative over this whole
/// set, not just over hashes of actual strings.
fn arb_hash() -> impl Strategy<Value = HashValue> {
    (0u32..(1 << 27), 0u32..27)
        .prop_map(|(ca, off)| HashValue::from_raw(ca << 5 | off).expect("offset < 27"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// H(a ⧺ b) = C(H(a), H(b)) for arbitrary byte strings.
    #[test]
    fn homomorphism(a in proptest::collection::vec(any::<u8>(), 0..200),
                    b in proptest::collection::vec(any::<u8>(), 0..200)) {
        let joined: Vec<u8> = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(combine(hash_bytes(&a), hash_bytes(&b)), hash_bytes(&joined));
    }

    /// Splitting a string at *every* position combines back to its hash.
    #[test]
    fn all_split_points_recombine(s in proptest::collection::vec(any::<u8>(), 0..80)) {
        let whole = hash_bytes(&s);
        for cut in 0..=s.len() {
            let (l, r) = s.split_at(cut);
            prop_assert_eq!(combine(hash_bytes(l), hash_bytes(r)), whole);
        }
    }

    /// Associativity over the full domain of valid hash values.
    #[test]
    fn associativity(a in arb_hash(), b in arb_hash(), c in arb_hash()) {
        prop_assert_eq!(combine(combine(a, b), c), combine(a, combine(b, c)));
    }

    /// H("") is a two-sided identity over the full domain.
    #[test]
    fn identity(h in arb_hash()) {
        prop_assert_eq!(combine(HashValue::EMPTY, h), h);
        prop_assert_eq!(combine(h, HashValue::EMPTY), h);
    }

    /// combine stays inside the valid domain (offc < 27).
    #[test]
    fn closure(a in arb_hash(), b in arb_hash()) {
        let c = combine(a, b);
        prop_assert!(c.offset() < 27);
        prop_assert_eq!(HashValue::from_raw(c.raw()), Some(c));
    }

    /// Left fold equals right fold (a consequence of associativity the
    /// commutative-commit transaction layer depends on).
    #[test]
    fn fold_direction_is_irrelevant(parts in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..30), 0..10)) {
        let hashes: Vec<HashValue> = parts.iter().map(|p| hash_bytes(p)).collect();
        let left = combine_all(hashes.iter().copied());
        let right = hashes
            .iter()
            .rev()
            .fold(HashValue::EMPTY, |acc, &h| combine(h, acc));
        prop_assert_eq!(left, right);
        let flat: Vec<u8> = parts.concat();
        prop_assert_eq!(left, hash_bytes(&flat));
    }

    /// Appending a single byte changes the hash (no trivial fixpoints
    /// on the 5-bit-step circle: the offset always moves).
    #[test]
    fn appending_byte_changes_offset(s in proptest::collection::vec(any::<u8>(), 0..50),
                                     b in any::<u8>()) {
        let mut t = s.clone();
        t.push(b);
        prop_assert_ne!(hash_bytes(&s).offset(), hash_bytes(&t).offset());
    }
}
