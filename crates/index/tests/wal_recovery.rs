//! Crash-recovery properties of the per-shard write-ahead log.
//!
//! The central oracle (the acceptance criterion of the WAL work): a
//! service killed at **any** byte prefix of its log tail must recover
//! to a state *byte-identical* to a serial replay of the durable
//! prefix of its commit history — torn final records are truncated,
//! whole records are replayed exactly once on top of the last
//! checkpoint.

use std::path::{Path, PathBuf};

use proptest::prelude::*;

use xvi_index::{Document, IndexConfig, IndexManager, IndexService, NodeId, ServiceConfig};
use xvi_xml::NodeKind;

/// A scratch directory under the system temp dir, removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> ScratchDir {
        let dir = std::env::temp_dir().join(format!("xvi-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn wal_config(dir: &Path) -> ServiceConfig {
    // One shard: one log file, deterministic frame order — the shape
    // the byte-prefix sweep needs.
    ServiceConfig::with_shards(1)
        .with_index(IndexConfig::default().with_substring_index())
        .with_wal(dir)
}

/// The byte-identity fingerprint of a whole service: every document's
/// `(id, version, serialized XML, index image bytes)`, id-sorted. Two
/// services with equal prints are indistinguishable down to the
/// persisted representation.
fn state_bytes(service: &IndexService) -> Vec<(String, u64, String, Vec<u8>)> {
    let mut out = Vec::new();
    for (id, snap) in service.snapshot_all().iter() {
        let mut image = Vec::new();
        snap.index().save_to(snap.document(), &mut image).unwrap();
        out.push((
            id.to_string(),
            snap.version(),
            xvi_xml::serialize::to_string(snap.document()),
            image,
        ));
    }
    out
}

fn text_nodes(doc: &Document) -> Vec<NodeId> {
    doc.descendants(doc.document_node())
        .filter(|&n| matches!(doc.kind(n), NodeKind::Text(_)))
        .collect()
}

const DOC: &str = "<r><g><v>alpha</v><v>17</v></g><g><v>beta</v><v>42</v></g></r>";

/// Frame boundaries of a log file: byte offsets where each whole
/// record ends (frame = 8-byte header + payload of the header's
/// length). The file was written cleanly, so walking the lengths is
/// exact.
fn frame_ends(bytes: &[u8]) -> Vec<usize> {
    let mut ends = Vec::new();
    let mut off = 0;
    while off + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
        off += 8 + len;
        assert!(off <= bytes.len(), "clean log walks exactly");
        ends.push(off);
    }
    assert_eq!(*ends.last().unwrap(), bytes.len());
    ends
}

#[test]
fn commits_survive_reopen_without_checkpoint() {
    let scratch = ScratchDir::new("reopen");
    let before = {
        let service = IndexService::new(wal_config(&scratch.0));
        service.insert_document("doc", Document::parse(DOC).unwrap());
        let nodes = service.read("doc", |doc, _| text_nodes(doc)).unwrap();
        for (i, value) in ["one", "two", "three"].iter().enumerate() {
            let mut txn = service.begin();
            txn.set_value(nodes[i], *value);
            service.commit("doc", txn).unwrap();
        }
        state_bytes(&service)
    };
    // No save_catalog, no checkpoint: the log alone restores the state.
    let recovered = IndexService::open(wal_config(&scratch.0)).unwrap();
    assert_eq!(state_bytes(&recovered), before);
    assert_eq!(recovered.version_of("doc"), Some(3));
    recovered
        .read("doc", |doc, idx| idx.verify_against(doc).unwrap())
        .unwrap();
    // And the recovered service keeps committing at the right version.
    let nodes = recovered.read("doc", |doc, _| text_nodes(doc)).unwrap();
    let mut txn = recovered.begin();
    txn.set_value(nodes[3], "four");
    assert_eq!(recovered.commit("doc", txn).unwrap().version, 4);
}

/// THE acceptance criterion: kill the writer at every byte prefix of
/// the WAL tail; recovery must land on the serial replay of exactly
/// the records that are whole in the prefix — never a torn half-batch,
/// never a panic.
#[test]
fn kill_at_every_byte_prefix_recovers_the_durable_prefix() {
    let scratch = ScratchDir::new("prefix");
    let values = ["one", "two", "three"];
    {
        let service = IndexService::new(wal_config(&scratch.0));
        service.insert_document("doc", Document::parse(DOC).unwrap());
        let nodes = service.read("doc", |doc, _| text_nodes(doc)).unwrap();
        for (i, value) in values.iter().enumerate() {
            let mut txn = service.begin();
            txn.set_value(nodes[i], *value);
            service.commit("doc", txn).unwrap();
        }
    }
    let log_path = scratch.0.join("wal0.log");
    let bytes = std::fs::read(&log_path).unwrap();
    let ends = frame_ends(&bytes);
    assert_eq!(
        ends.len(),
        1 + values.len(),
        "insert + one frame per commit"
    );

    // Reference states: serial replay of the first r records through a
    // fresh ephemeral service.
    let reference: Vec<_> = (0..=ends.len())
        .map(|r| {
            let service = IndexService::new(
                ServiceConfig::with_shards(1)
                    .with_index(IndexConfig::default().with_substring_index()),
            );
            if r >= 1 {
                service.insert_document("doc", Document::parse(DOC).unwrap());
                let nodes = service.read("doc", |doc, _| text_nodes(doc)).unwrap();
                for (i, value) in values.iter().take(r - 1).enumerate() {
                    let mut txn = service.begin();
                    txn.set_value(nodes[i], *value);
                    service.commit("doc", txn).unwrap();
                }
            }
            state_bytes(&service)
        })
        .collect();

    for cut in 0..=bytes.len() {
        let dir = ScratchDir::new(&format!("prefix-cut{cut}"));
        std::fs::write(dir.0.join("wal0.log"), &bytes[..cut]).unwrap();
        let recovered = IndexService::open(wal_config(&dir.0)).unwrap();
        let durable = ends.iter().filter(|&&e| e <= cut).count();
        assert_eq!(
            state_bytes(&recovered),
            reference[durable],
            "cut at byte {cut} must recover exactly {durable} records"
        );
    }
}

#[test]
fn checkpoint_truncates_the_log_and_recovery_stacks_replay_on_it() {
    let scratch = ScratchDir::new("checkpoint");
    let before = {
        let service = IndexService::new(wal_config(&scratch.0));
        service.insert_document("doc", Document::parse(DOC).unwrap());
        let nodes = service.read("doc", |doc, _| text_nodes(doc)).unwrap();
        let commit = |node: usize, value: &str| {
            let mut txn = service.begin();
            txn.set_value(nodes[node], value);
            service.commit("doc", txn).unwrap();
        };
        commit(0, "pre-checkpoint");
        commit(1, "also-pre");
        let grown = std::fs::metadata(scratch.0.join("wal0.log")).unwrap().len();
        service.checkpoint().unwrap();
        let truncated = std::fs::metadata(scratch.0.join("wal0.log")).unwrap().len();
        assert!(
            truncated < grown,
            "checkpoint must truncate the log ({truncated} >= {grown})"
        );
        assert_eq!(truncated, 0, "every record was covered by the images");
        commit(2, "post-checkpoint");
        state_bytes(&service)
    };
    let recovered = IndexService::open(wal_config(&scratch.0)).unwrap();
    assert_eq!(state_bytes(&recovered), before);
    assert_eq!(recovered.version_of("doc"), Some(3));
}

/// The global commit total is part of the durable state: the manifest
/// persists it at checkpoint/save time and recovery seeds the counter
/// from it before replaying post-checkpoint records — so the count
/// stays monotonic across restarts instead of resetting to the
/// post-checkpoint replay length.
#[test]
fn commit_count_survives_checkpoint_and_restart() {
    let scratch = ScratchDir::new("commit-count");
    {
        let service = IndexService::new(wal_config(&scratch.0));
        service.insert_document("doc", Document::parse(DOC).unwrap());
        let nodes = service.read("doc", |doc, _| text_nodes(doc)).unwrap();
        for (i, value) in ["one", "two", "three"].iter().enumerate() {
            let mut txn = service.begin();
            txn.set_value(nodes[i], *value);
            service.commit("doc", txn).unwrap();
        }
        assert_eq!(service.commit_count(), 3);
        service.checkpoint().unwrap();
        let mut txn = service.begin();
        txn.set_value(nodes[3], "four");
        service.commit("doc", txn).unwrap();
        assert_eq!(service.commit_count(), 4);
    }
    // 3 commits live only in the checkpoint images, 1 only in the log.
    let recovered = IndexService::open(wal_config(&scratch.0)).unwrap();
    assert_eq!(recovered.commit_count(), 4);
    // A further checkpoint folds everything into the manifest; the
    // total still survives a restart off an empty log.
    recovered.checkpoint().unwrap();
    drop(recovered);
    let again = IndexService::open(wal_config(&scratch.0)).unwrap();
    assert_eq!(again.commit_count(), 4);
}

/// Checkpoints racing each other (and racing live commits) must never
/// leave the directory in a state that loses acked commits: whole
/// checkpoint cycles are serialized, so the manifest on disk always
/// covers at least the log suffix that was truncated away.
#[test]
fn concurrent_checkpoints_and_commits_recover_every_acked_commit() {
    use std::sync::Arc;

    let scratch = ScratchDir::new("ckpt-race");
    let commits_per_writer = 30usize;
    let writers = 3usize;
    {
        let service = Arc::new(IndexService::new(wal_config(&scratch.0)));
        service.insert_document("doc", Document::parse(DOC).unwrap());
        let nodes = service.read("doc", |doc, _| text_nodes(doc)).unwrap();
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let checkpointers: Vec<_> = (0..2)
            .map(|_| {
                let service = Arc::clone(&service);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        service.checkpoint().unwrap();
                    }
                })
            })
            .collect();
        let committers: Vec<_> = (0..writers)
            .map(|w| {
                let service = Arc::clone(&service);
                let nodes = nodes.clone();
                std::thread::spawn(move || {
                    for c in 0..commits_per_writer {
                        let mut txn = service.begin();
                        txn.set_value(nodes[w], format!("w{w}c{c}"));
                        service.commit("doc", txn).unwrap();
                    }
                })
            })
            .collect();
        for h in committers {
            h.join().unwrap();
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for h in checkpointers {
            h.join().unwrap();
        }
        assert_eq!(
            service.commit_count(),
            (writers * commits_per_writer) as u64
        );
    }
    // Every acked commit must be recoverable from checkpoint + log.
    let recovered = IndexService::open(wal_config(&scratch.0)).unwrap();
    assert_eq!(
        recovered.commit_count(),
        (writers * commits_per_writer) as u64
    );
    assert_eq!(
        recovered.version_of("doc"),
        Some((writers * commits_per_writer) as u64)
    );
    // Each writer owned one leaf and wrote its final value last.
    recovered
        .read("doc", |doc, idx| {
            idx.verify_against(doc).unwrap();
            for w in 0..writers {
                let wanted = format!("w{w}c{}", commits_per_writer - 1);
                assert!(
                    !idx.query(doc, &xvi_index::Lookup::equi(wanted.as_str()))
                        .unwrap()
                        .is_empty(),
                    "writer {w}'s final value {wanted:?} must survive recovery"
                );
            }
        })
        .unwrap();
}

#[test]
fn insert_and_remove_records_replay() {
    let scratch = ScratchDir::new("insert-remove");
    let before = {
        let service = IndexService::new(wal_config(&scratch.0));
        service.insert_document("keep", Document::parse(DOC).unwrap());
        service.insert_document("drop", Document::parse("<x><y>1</y></x>").unwrap());
        let nodes = service.read("keep", |doc, _| text_nodes(doc)).unwrap();
        let mut txn = service.begin();
        txn.set_value(nodes[0], "updated");
        service.commit("keep", txn).unwrap();
        assert!(service.remove_document("drop").is_some());
        state_bytes(&service)
    };
    let recovered = IndexService::open(wal_config(&scratch.0)).unwrap();
    assert_eq!(state_bytes(&recovered), before);
    assert!(!recovered.contains_document("drop"));
    assert_eq!(recovered.version_of("keep"), Some(1));
}

#[test]
fn reopening_a_checkpointed_catalog_overrides_the_passed_shape() {
    let scratch = ScratchDir::new("shape");
    {
        let service = IndexService::new(wal_config(&scratch.0).with_max_group(7));
        service.insert_document("doc", Document::parse(DOC).unwrap());
        service.checkpoint().unwrap();
    }
    // A different shard count in the passed config must lose to the
    // checkpoint's: the logs are sharded by the persisted count.
    let reopened = IndexService::open(
        ServiceConfig::with_shards(4)
            .with_index(IndexConfig::default().with_substring_index())
            .with_wal(&scratch.0),
    )
    .unwrap();
    assert_eq!(reopened.config().shards, 1);
    assert_eq!(reopened.config().max_group, 7);
    assert!(reopened.contains_document("doc"));
}

// ---------------------------------------------------------------------------
// Property: checkpoint + replay under random batch boundaries is
// byte-identical to a serial replay of the same transactions.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Case {
    leaves: Vec<String>,
    /// Transactions in commit order: `txns[t]` holds `(leaf, value)`.
    txns: Vec<Vec<(usize, String)>>,
    /// Checkpoint after this many transactions (may be 0 or all).
    checkpoint_after: usize,
}

fn value_strategy() -> impl Strategy<Value = String> {
    prop_oneof!["[a-z]{1,8}", "[0-9]{1,5}", "[a-z0-9 ]{2,10}"]
}

fn case_strategy() -> impl Strategy<Value = Case> {
    (
        proptest::collection::vec(value_strategy(), 2..10),
        proptest::collection::vec((0..10usize, value_strategy()), 1..12),
        any::<u64>(),
    )
        .prop_map(|(leaves, raw_writes, seed)| {
            // Random batch boundaries: split the write stream into
            // transactions at seed-driven points.
            let mut txns: Vec<Vec<(usize, String)>> = vec![Vec::new()];
            let mut s = seed;
            for (leaf, value) in raw_writes {
                txns.last_mut().unwrap().push((leaf % leaves.len(), value));
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                if s % 3 == 0 {
                    txns.push(Vec::new());
                }
            }
            txns.retain(|t| !t.is_empty());
            let checkpoint_after = (seed % (txns.len() as u64 + 1)) as usize;
            Case {
                leaves,
                txns,
                checkpoint_after,
            }
        })
}

fn build_doc(leaves: &[String]) -> Document {
    let mut xml = String::from("<r>");
    for (i, chunk) in leaves.chunks(3).enumerate() {
        xml.push_str(&format!("<g{i}>"));
        for v in chunk {
            let v = if v.trim().is_empty() { "x" } else { v.trim() };
            xml.push_str(&format!("<v>{v}</v>"));
        }
        xml.push_str(&format!("</g{i}>"));
    }
    xml.push_str("</r>");
    Document::parse(&xml).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Commit a random transaction stream with a checkpoint at a random
    /// position, kill the service, recover — the result must be
    /// byte-identical to the same transactions replayed serially on an
    /// ephemeral service, and to a plain `IndexManager` replay.
    #[test]
    fn checkpoint_and_replay_match_serial_replay(case in case_strategy()) {
        let scratch = ScratchDir::new(&format!(
            "prop-{:x}",
            case.txns.len() * 1000 + case.checkpoint_after * 10 + case.leaves.len()
        ));
        let run = |config: ServiceConfig, checkpoint_after: Option<usize>| {
            let service = IndexService::new(config);
            service.insert_document("doc", build_doc(&case.leaves));
            let nodes = service
                .read("doc", |doc, _| text_nodes(doc))
                .unwrap();
            for (t, txn_writes) in case.txns.iter().enumerate() {
                if checkpoint_after == Some(t) {
                    service.checkpoint().unwrap();
                }
                let mut txn = service.begin();
                for (leaf, value) in txn_writes {
                    txn.set_value(nodes[*leaf], value.clone());
                }
                service.commit("doc", txn).unwrap();
            }
            if checkpoint_after == Some(case.txns.len()) {
                service.checkpoint().unwrap();
            }
            service
        };

        // Durable run: WAL on, checkpoint at the random position, then
        // "crash" (drop) and recover.
        let expected = {
            let service = run(wal_config(&scratch.0), Some(case.checkpoint_after));
            state_bytes(&service)
        };
        let recovered = IndexService::open(wal_config(&scratch.0)).unwrap();
        prop_assert_eq!(&state_bytes(&recovered), &expected);

        // Serial oracle 1: the same stream on an ephemeral service.
        let serial = run(
            ServiceConfig::with_shards(1)
                .with_index(IndexConfig::default().with_substring_index()),
            None,
        );
        prop_assert_eq!(&state_bytes(&serial), &expected);

        // Serial oracle 2: a bare IndexManager replay, one
        // update_values call per transaction.
        let mut doc = build_doc(&case.leaves);
        let nodes = text_nodes(&doc);
        let mut idx = IndexManager::build(
            &doc,
            IndexConfig::default().with_substring_index(),
        );
        for txn_writes in &case.txns {
            let writes: Vec<(NodeId, &str)> = txn_writes
                .iter()
                .map(|(leaf, v)| (nodes[*leaf], v.as_str()))
                .collect();
            idx.update_values(&mut doc, writes).unwrap();
        }
        let mut image = Vec::new();
        idx.save_to(&doc, &mut image).unwrap();
        let (_, _, rec_xml, rec_image) = &state_bytes(&recovered)[0];
        prop_assert_eq!(rec_xml, &xvi_xml::serialize::to_string(&doc));
        prop_assert_eq!(rec_image, &image);

        recovered
            .read("doc", |doc, idx| idx.verify_against(doc).unwrap())
            .unwrap();
    }
}
