//! Observability must be free of observer effects: the same workload
//! run with the tracer disabled and at sample rate 1.0 must produce
//! byte-identical results, receipts and persisted state — and a
//! traced query's recorded stages must tile its end-to-end latency.

use xvi_index::{Document, IndexConfig, IndexService, Lookup, NodeId, ServiceConfig};
use xvi_xml::NodeKind;

fn people_doc(n: usize) -> Document {
    let mut xml = String::from("<site><people>");
    for i in 0..n {
        xml.push_str(&format!(
            "<person><name>name{i}</name><profile>\
             <education>Graduate School</education>\
             <age>{}</age></profile></person>",
            18 + (i % 60)
        ));
    }
    xml.push_str("</people></site>");
    Document::parse(&xml).unwrap()
}

fn text_nodes(doc: &Document) -> Vec<NodeId> {
    doc.descendants(doc.document_node())
        .filter(|&n| matches!(doc.kind(n), NodeKind::Text(_)))
        .collect()
}

fn lookups() -> Vec<Lookup> {
    vec![
        Lookup::equi("name7"),
        Lookup::equi("Graduate School"),
        Lookup::range_f64(20.0..30.0),
        Lookup::contains("ame1"),
        Lookup::xpath("//person[.//age = 42]").unwrap(),
        Lookup::xpath("//person[name = \"name3\"]").unwrap(),
        Lookup::xpath("//person[.//age >= 18][education = \"Graduate School\"]").unwrap(),
        Lookup::xpath("//person").unwrap(),
    ]
}

/// Runs the canonical mixed workload and returns every observable
/// output: commit receipts, query results, and the final state
/// fingerprint `(id, version, serialized XML, index image bytes)`.
#[allow(clippy::type_complexity)]
fn run_workload(
    service: &IndexService,
) -> (
    Vec<(u64, usize)>,
    Vec<Vec<NodeId>>,
    Vec<(u64, String, Vec<u8>)>,
) {
    service.insert_document("doc", people_doc(40));
    let nodes = service.read("doc", |doc, _| text_nodes(doc)).unwrap();

    let mut receipts = Vec::new();
    let mut results = Vec::new();
    for round in 0..6 {
        let mut txn = service.begin();
        txn.set_value(nodes[round * 3 % nodes.len()], format!("edit{round}"));
        txn.set_value(
            nodes[(round * 7 + 1) % nodes.len()],
            format!("{}", 30 + round),
        );
        let receipt = service.commit("doc", txn).unwrap();
        receipts.push((receipt.version, receipt.applied));

        for lookup in lookups() {
            results.push(service.query("doc", &lookup).unwrap());
        }
    }

    let mut state = Vec::new();
    for (_, snap) in service.snapshot_all().iter() {
        let mut image = Vec::new();
        snap.index().save_to(snap.document(), &mut image).unwrap();
        state.push((
            snap.version(),
            xvi_xml::serialize::to_string(snap.document()),
            image,
        ));
    }
    (receipts, results, state)
}

fn config() -> ServiceConfig {
    ServiceConfig::with_shards(2).with_index(IndexConfig::default().with_substring_index())
}

/// Sampling every request must not perturb a single byte of output:
/// tracing observes the pipeline, it never participates in it.
#[test]
fn traced_run_is_byte_identical_to_untraced() {
    let untraced = IndexService::new(config());
    assert!(!untraced.obs().tracer.enabled());
    let baseline = run_workload(&untraced);

    let traced = IndexService::new(config());
    traced.obs().tracer.set_sample_rate(1.0);
    let observed = run_workload(&traced);

    assert_eq!(baseline, observed);
    // The traced run actually exercised the tracer.
    assert!(traced.obs().tracer.recorder().finished_count() > 0);
    assert!(untraced.obs().tracer.recorder().finished_count() == 0);
}

/// A traced query's stage breakdown (plan, probe, verify-walk) must
/// account for its end-to-end latency to within 10% — the flight
/// recorder's numbers have to be trustworthy before they are used to
/// explain slow requests.
#[test]
fn traced_query_stages_tile_total_latency() {
    let service = IndexService::new(config());
    service.obs().tracer.set_sample_rate(1.0);
    // Large enough that the traced stages (probe + verify walk over
    // every person) dominate the untimed prologue by orders of
    // magnitude.
    service.insert_document("doc", people_doc(4000));

    let lookup = Lookup::xpath("//person[.//age >= 18]").unwrap();
    let hits = service.query("doc", &lookup).unwrap();
    assert_eq!(hits.len(), 4000);

    let slowest = service
        .obs()
        .tracer
        .recorder()
        .slowest()
        .into_iter()
        .filter(|t| t.kind == "query")
        .max_by_key(|t| t.total_ns)
        .expect("query trace recorded");
    assert!(slowest.total_ns > 0);
    let sum = slowest.stage_sum_ns();
    let gap = slowest.total_ns.abs_diff(sum);
    assert!(
        gap * 10 <= slowest.total_ns,
        "stage sum {}ns must tile total {}ns within 10% (gap {}ns)\n{}",
        sum,
        slowest.total_ns,
        gap,
        slowest.render()
    );
}
