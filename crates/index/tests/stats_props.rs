//! Statistics maintenance as a property: after *any* interleaving of
//! insert/delete/update operations, every cardinality estimate stays
//! within its guaranteed `[lower, upper]` bounds of the true candidate
//! count computed by brute force — for equality probes (string index)
//! and range probes (double index) alike.
//!
//! The mutations run through the exact maintenance entry points the
//! service's group-commit leader drives (`update_values`,
//! `delete_subtree`, `index_new_subtree` — see
//! `IndexService::apply_group`), so the bounds checked here are the
//! bounds commits preserve. A drifting histogram that misses an insert
//! or double-counts a delete breaks them immediately, which is what
//! this suite hunts.

use proptest::prelude::*;

use xvi_index::{Bounds, Document, IndexConfig, IndexManager, Lookup};
use xvi_xml::{NodeId, NodeKind};

/// One generated scenario: initial leaf values plus a mutation script.
#[derive(Debug, Clone)]
struct Case {
    leaves: Vec<String>,
    ops: Vec<Op>,
}

#[derive(Debug, Clone)]
enum Op {
    /// Commit a new value into leaf `i % live leaves`.
    Update(usize, String),
    /// Delete the subtree of wrapper element `i % live leaves`.
    DeleteLeaf(usize),
    /// Append a fresh `<x>value</x>` child under the root.
    Insert(String),
}

/// Values drawn from a small pool so hash multiplicities actually
/// climb past the heavy-hitter threshold, mixed with numerics so the
/// double histogram sees inserts and removals too.
fn value_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        3 => prop_oneof![
            Just("alpha".to_string()),
            Just("beta".to_string()),
            Just("gamma".to_string()),
        ],
        2 => (0u32..20).prop_map(|n| n.to_string()),
        1 => (0u32..10, 0u32..100).prop_map(|(a, b)| format!("{a}.{b:02}")),
        1 => "[a-f]{1,6}",
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (any::<u64>().prop_map(|i| i as usize), value_strategy())
            .prop_map(|(i, v)| Op::Update(i, v)),
        1 => any::<u64>().prop_map(|i| Op::DeleteLeaf(i as usize)),
        2 => value_strategy().prop_map(Op::Insert),
    ]
}

fn case_strategy() -> impl Strategy<Value = Case> {
    (
        proptest::collection::vec(value_strategy(), 3..24),
        proptest::collection::vec(op_strategy(), 0..40),
    )
        .prop_map(|(leaves, ops)| Case { leaves, ops })
}

fn build_doc(leaves: &[String]) -> Document {
    let mut xml = String::from("<root>");
    for v in leaves {
        xml.push_str(&format!("<x>{v}</x>"));
    }
    xml.push_str("</root>");
    Document::parse(&xml).expect("escaping-free values")
}

/// Live `<x>` wrapper elements under the root, in document order.
fn wrappers(doc: &Document) -> Vec<NodeId> {
    let root = doc.root_element().expect("root element");
    doc.children(root)
        .filter(|&n| matches!(doc.kind(n), NodeKind::Element(_)))
        .collect()
}

/// Applies the script through the real maintenance paths.
fn run_script(case: &Case) -> (Document, IndexManager) {
    let mut doc = build_doc(&case.leaves);
    let mut idx = IndexManager::build(&doc, IndexConfig::default());
    for op in &case.ops {
        match op {
            Op::Update(i, value) => {
                let w = wrappers(&doc);
                let text = doc
                    .children(w[i % w.len()])
                    .find(|&c| matches!(doc.kind(c), NodeKind::Text(_)));
                if let Some(text) = text {
                    idx.update_value(&mut doc, text, value).expect("live text");
                }
            }
            Op::DeleteLeaf(i) => {
                let w = wrappers(&doc);
                // Keep at least two wrappers alive so updates always
                // have targets.
                if w.len() > 2 {
                    idx.delete_subtree(&mut doc, w[i % w.len()])
                        .expect("live element");
                }
            }
            Op::Insert(value) => {
                let root = doc.root_element().expect("root element");
                let elem = doc.append_element(root, "x");
                doc.append_text(elem, value);
                idx.index_new_subtree(&doc, elem);
            }
        }
    }
    (doc, idx)
}

/// Equality probes to check: the value pool plus absent strings.
fn equi_probes() -> Vec<String> {
    let mut v: Vec<String> = vec![
        "alpha".into(),
        "beta".into(),
        "gamma".into(),
        "absent".into(),
        "zz".into(),
    ];
    for n in 0..20u32 {
        v.push(n.to_string());
    }
    v
}

/// Range probes to check, covering full, half-open, narrow and point
/// shapes.
fn range_probes() -> Vec<Bounds> {
    vec![
        Bounds::all(),
        Bounds::from_range(0.0..10.0),
        Bounds::from_range(5.0..),
        Bounds::from_range(..7.5),
        Bounds::from_range(3.0..=4.0),
        Bounds::eq(7.0),
        Bounds::eq(19.0),
        Bounds::from_range(100.0..200.0),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// After any interleaving of insert/delete/update operations,
    /// every estimate stays within its guaranteed bounds of the
    /// brute-force candidate count.
    #[test]
    fn estimates_bound_truth_under_maintenance(case in case_strategy()) {
        let (doc, idx) = run_script(&case);
        idx.verify_against(&doc).expect("maintenance stays exact");

        for value in equi_probes() {
            // Brute force: candidate count of an equality probe is the
            // number of hash-matching entries.
            let truth = idx.equi_candidates(&value).len();
            let est = idx.estimate(&Lookup::equi(value.clone())).unwrap();
            prop_assert!(
                est.lower <= truth && truth <= est.upper,
                "equi({value:?}): truth {truth} outside [{}, {}] (est {})",
                est.lower, est.upper, est.estimate
            );
            prop_assert!(
                est.lower <= est.estimate && est.estimate <= est.upper,
                "equi({value:?}): estimate {} outside its own bounds", est.estimate
            );
        }

        for bounds in range_probes() {
            // The typed index has no false positives: the range result
            // *is* the candidate set.
            let truth = idx.query(&doc, &Lookup::RangeF64(bounds)).unwrap().len();
            let est = idx.estimate(&Lookup::RangeF64(bounds)).unwrap();
            prop_assert!(
                est.lower <= truth && truth <= est.upper,
                "range({bounds}): truth {truth} outside [{}, {}] (est {})",
                est.lower, est.upper, est.estimate
            );
            prop_assert!(
                est.lower <= est.estimate && est.estimate <= est.upper,
                "range({bounds}): estimate {} outside its own bounds", est.estimate
            );
        }
    }
}
