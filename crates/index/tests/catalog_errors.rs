//! Error paths of the catalog persistence: corrupt, truncated,
//! version-skewed and incomplete catalogs must come back as typed
//! errors — never panics, never a mis-parsed service.

use std::io::Write as _;
use std::path::PathBuf;

use xvi_index::{Document, IndexError, IndexService, ServiceConfig};

/// A scratch directory under the system temp dir, removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> ScratchDir {
        let dir = std::env::temp_dir().join(format!("xvi-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn saved_catalog(tag: &str) -> ScratchDir {
    let scratch = ScratchDir::new(tag);
    let service = IndexService::new(ServiceConfig::with_shards(2));
    service.insert_document(
        "alpha",
        Document::parse("<person><name>Arthur</name><age>42</age></person>").unwrap(),
    );
    service.insert_document(
        "beta",
        Document::parse("<log><n>17</n><n>18</n></log>").unwrap(),
    );
    service.save_catalog(&scratch.0).unwrap();
    scratch
}

#[test]
fn truncated_manifest_is_a_typed_error_not_a_panic() {
    let scratch = saved_catalog("catalog-truncated");
    let manifest = scratch.0.join("catalog.xvi");
    let bytes = std::fs::read(&manifest).unwrap();
    // Cut the manifest at every prefix length: each truncation must
    // surface as an io::Error (UnexpectedEof or InvalidData), and
    // never panic or return Ok.
    for len in 0..bytes.len() {
        std::fs::write(&manifest, &bytes[..len]).unwrap();
        let err = IndexService::load_catalog(&scratch.0)
            .expect_err(&format!("truncation at {len} bytes must fail"));
        assert!(
            matches!(
                err.kind(),
                std::io::ErrorKind::UnexpectedEof | std::io::ErrorKind::InvalidData
            ),
            "truncation at {len}: unexpected kind {:?}",
            err.kind()
        );
    }
}

#[test]
fn unknown_catalog_version_is_rejected_with_a_typed_error() {
    let scratch = saved_catalog("catalog-version");
    let manifest = scratch.0.join("catalog.xvi");
    let mut bytes = std::fs::read(&manifest).unwrap();
    // The version field sits right after the 4-byte magic.
    bytes[4..8].copy_from_slice(&999u32.to_le_bytes());
    std::fs::write(&manifest, &bytes).unwrap();

    let err = IndexService::load_catalog(&scratch.0).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    let source = err
        .get_ref()
        .and_then(|e| e.downcast_ref::<IndexError>())
        .expect("the error source is the typed IndexError");
    assert!(
        matches!(
            source,
            IndexError::CatalogVersion {
                found: 999,
                supported: _
            }
        ),
        "{source:?}"
    );
    assert!(err.to_string().contains("version 999"), "{err}");
}

/// A version-1 catalog (the old magic, no version field) is rejected
/// with the typed version error — its shard count must never alias as
/// a format version.
#[test]
fn version_one_magic_is_rejected_with_a_typed_error() {
    let scratch = saved_catalog("catalog-v1-magic");
    let manifest = scratch.0.join("catalog.xvi");
    let mut bytes = std::fs::read(&manifest).unwrap();
    // Rewrite as the old layout: v1 magic, then the fields that used
    // to follow it directly (drop the version word). shards == 2 here,
    // which would alias as "version 2" if only the word were checked.
    bytes.splice(0..8, *b"XVC1");
    std::fs::write(&manifest, &bytes).unwrap();

    let err = IndexService::load_catalog(&scratch.0).unwrap_err();
    let source = err
        .get_ref()
        .and_then(|e| e.downcast_ref::<IndexError>())
        .expect("typed source");
    assert!(
        matches!(source, IndexError::CatalogVersion { found: 1, .. }),
        "{source:?}"
    );
}

#[test]
fn missing_per_doc_index_image_is_a_typed_error() {
    let scratch = saved_catalog("catalog-missing-idx");
    // Two documents were saved as doc0/doc1; removing either image
    // must fail the load with NotFound, not panic.
    std::fs::remove_file(scratch.0.join("doc1.idx")).unwrap();
    let err = IndexService::load_catalog(&scratch.0).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::NotFound, "{err}");
}

#[test]
fn missing_per_doc_document_is_a_typed_error() {
    let scratch = saved_catalog("catalog-missing-xml");
    std::fs::remove_file(scratch.0.join("doc0.xml")).unwrap();
    let err = IndexService::load_catalog(&scratch.0).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::NotFound, "{err}");
}

#[test]
fn truncated_index_image_is_a_typed_error() {
    let scratch = saved_catalog("catalog-torn-idx");
    let image = scratch.0.join("doc0.idx");
    let bytes = std::fs::read(&image).unwrap();
    let mut f = std::fs::File::create(&image).unwrap();
    f.write_all(&bytes[..bytes.len() / 2]).unwrap();
    drop(f);
    let err = IndexService::load_catalog(&scratch.0).unwrap_err();
    assert!(
        matches!(
            err.kind(),
            std::io::ErrorKind::UnexpectedEof | std::io::ErrorKind::InvalidData
        ),
        "{err}"
    );
}

#[test]
fn garbage_document_xml_is_a_typed_error() {
    let scratch = saved_catalog("catalog-bad-xml");
    std::fs::write(scratch.0.join("doc0.xml"), "<oops>").unwrap();
    let err = IndexService::load_catalog(&scratch.0).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{err}");
}

/// Stranded `*.tmp` siblings — what a crash between a temp write and
/// its rename leaves behind — are swept by the next save **and** by a
/// load, so they cannot accumulate forever.
#[test]
fn stranded_tmp_files_are_swept_on_save_and_load() {
    let scratch = saved_catalog("catalog-tmp-sweep");
    std::fs::write(scratch.0.join("doc7.xml.tmp"), b"torn").unwrap();
    std::fs::write(scratch.0.join("catalog.xvi.tmp"), b"torn").unwrap();
    let loaded = IndexService::load_catalog(&scratch.0).unwrap();
    assert!(!scratch.0.join("doc7.xml.tmp").exists(), "load sweeps");
    assert!(!scratch.0.join("catalog.xvi.tmp").exists(), "load sweeps");

    std::fs::write(scratch.0.join("doc9.idx.tmp"), b"torn again").unwrap();
    loaded.save_catalog(&scratch.0).unwrap();
    assert!(!scratch.0.join("doc9.idx.tmp").exists(), "save sweeps");
}

/// Re-saving a shrunk catalog into the same directory must delete the
/// `docN.*` files beyond the new manifest's count — otherwise stale
/// pairs from the larger save stay paired with the new manifest.
#[test]
fn shrinking_resave_removes_orphaned_doc_files() {
    let scratch = saved_catalog("catalog-orphans");
    assert!(scratch.0.join("doc1.xml").exists());
    assert!(scratch.0.join("doc1.idx").exists());

    let service = IndexService::load_catalog(&scratch.0).unwrap();
    assert!(service.remove_document("beta").is_some());
    service.save_catalog(&scratch.0).unwrap();
    for orphan in ["doc1.xml", "doc1.idx"] {
        assert!(
            !scratch.0.join(orphan).exists(),
            "{orphan} must be deleted by the shrinking re-save"
        );
    }
    // The shrunk directory loads cleanly and holds exactly one doc.
    let reloaded = IndexService::load_catalog(&scratch.0).unwrap();
    assert_eq!(reloaded.doc_ids(), vec!["alpha"]);
}

/// The version field round-trips: a freshly saved catalog loads, and
/// the loaded service still answers and commits.
#[test]
fn current_version_round_trips() {
    let scratch = saved_catalog("catalog-roundtrip-v");
    let loaded = IndexService::load_catalog(&scratch.0).unwrap();
    assert_eq!(loaded.doc_ids(), vec!["alpha", "beta"]);
    for id in loaded.doc_ids() {
        loaded
            .read(&id, |doc, idx| idx.verify_against(doc).unwrap())
            .unwrap();
    }
}
