//! Integration tests of the cost-based planner: plan shapes driven by
//! real selectivity differences on a generated document, equivalence
//! of every plan shape with the scan baseline, and the estimate
//! surface across the manager/snapshot/service layers.

use xvi_index::{
    Document, IndexConfig, IndexManager, IndexService, Lookup, Plan, PlannerConfig, QueryEngine,
    ServiceConfig,
};

/// A synthetic "people" document with controlled selectivities:
/// every person shares `<education>` (unselective), ages spread over
/// 18..=77 (moderately selective per value), and each `<name>` is
/// unique (maximally selective).
fn people_doc(n: usize) -> Document {
    let mut xml = String::from("<site><people>");
    for i in 0..n {
        xml.push_str(&format!(
            "<person><name>name{i}</name><profile>\
             <education>Graduate School</education>\
             <age>{}</age></profile></person>",
            18 + (i % 60)
        ));
    }
    xml.push_str("</people></site>");
    Document::parse(&xml).unwrap()
}

fn setup(n: usize) -> (Document, IndexManager) {
    let doc = people_doc(n);
    let idx = IndexManager::build(&doc, IndexConfig::default());
    (doc, idx)
}

/// The paper-motivated adversarial case: the *last* predicate is the
/// least selective one, and the cost-based planner must not fall for
/// it.
#[test]
fn least_selective_last_predicate_is_not_chosen() {
    let (doc, idx) = setup(120);
    let q =
        QueryEngine::parse("//person[.//age = 42][.//education = \"Graduate School\"]").unwrap();
    let probes = QueryEngine::candidate_probes(&idx, &q);
    assert_eq!(probes.len(), 2, "both predicates enumerated");

    let plan = QueryEngine::plan(&idx, &q);
    let Plan::Index(probe) = &plan else {
        panic!("expected a single index probe, got {plan}");
    };
    assert!(
        matches!(probe.lookup, Lookup::RangeF64(_)),
        "the selective age probe must win, got {}",
        probe.lookup
    );

    // The education probe's actual candidate count dwarfs the age
    // probe's — the selectivity gap the planner exploited.
    let edu = idx
        .query(&doc, &Lookup::equi("Graduate School"))
        .unwrap()
        .len();
    let age = idx.query(&doc, &probe.lookup).unwrap().len();
    assert!(
        edu >= 10 * age.max(1),
        "education candidates ({edu}) should dwarf age candidates ({age})"
    );

    let fast = QueryEngine::evaluate(&doc, &idx, &q);
    assert_eq!(fast, QueryEngine::evaluate_scan(&doc, &q));
    assert_eq!(fast.len(), 2, "ages cycle every 60 persons");
}

/// The heavy-hitter table makes the unselective predicate's estimate
/// *exact*, so the planner's ranking rests on real numbers.
#[test]
fn heavy_hitter_estimate_is_exact() {
    let (doc, idx) = setup(120);
    let est = idx.estimate(&Lookup::equi("Graduate School")).unwrap();
    let actual = idx
        .query(&doc, &Lookup::equi("Graduate School"))
        .unwrap()
        .len();
    assert_eq!(est.estimate, actual, "heavy hitters are tracked exactly");
    assert_eq!(est.lower, est.upper);
}

/// Every plan shape the planner can emit agrees with the scan
/// baseline on the same query.
#[test]
fn all_plan_shapes_agree_with_scan() {
    let (doc, idx) = setup(60);
    let q =
        QueryEngine::parse("//person[.//age = 40][.//education = \"Graduate School\"]").unwrap();
    let scan = QueryEngine::evaluate_scan(&doc, &q);
    let probes = QueryEngine::candidate_probes(&idx, &q);
    assert_eq!(probes.len(), 2);
    // Forced single-probe plans, one per predicate.
    for p in &probes {
        let plan = Plan::Index(p.clone());
        assert_eq!(
            QueryEngine::evaluate_with_plan(&doc, &idx, &q, &plan),
            scan,
            "probe {} diverged",
            p.lookup
        );
    }
    // Forced intersection.
    let plan = Plan::Intersect(probes[0].clone(), probes[1].clone());
    assert_eq!(QueryEngine::evaluate_with_plan(&doc, &idx, &q, &plan), scan);
    // Forced scan.
    assert_eq!(
        QueryEngine::evaluate_with_plan(&doc, &idx, &q, &Plan::Scan),
        scan
    );
    // And whatever the planner actually picks.
    assert_eq!(QueryEngine::evaluate(&doc, &idx, &q), scan);
}

/// A forced plan that does not address this query — a probe with an
/// out-of-range step or predicate index, or an intersection whose
/// probes sit on different steps — degrades to the scan answer
/// instead of panicking or intersecting unrelated anchor sets.
#[test]
fn malformed_forced_plans_degrade_to_scan() {
    let (doc, idx) = setup(30);
    let q =
        QueryEngine::parse("//person[.//age = 40][.//education = \"Graduate School\"]").unwrap();
    let scan = QueryEngine::evaluate_scan(&doc, &q);
    let probes = QueryEngine::candidate_probes(&idx, &q);

    let mut beyond_step = probes[0].clone();
    beyond_step.step = 99;
    let mut beyond_pred = probes[0].clone();
    beyond_pred.pred = 99;
    // Servable lookup, but not the addressed predicate's lowering:
    // evaluating it would silently drop the real matches.
    let mut forged_lookup = probes[0].clone();
    forged_lookup.lookup = Lookup::equi("no such value");
    for plan in [
        Plan::Index(beyond_step.clone()),
        Plan::Index(beyond_pred.clone()),
        Plan::Index(forged_lookup),
        Plan::Intersect(probes[0].clone(), beyond_step),
    ] {
        assert_eq!(
            QueryEngine::evaluate_with_plan(&doc, &idx, &q, &plan),
            scan,
            "{plan}"
        );
    }
    // An intersection across *different* steps of another query shape
    // is likewise rejected (the plan cannot mean anything sound).
    let q2 = QueryEngine::parse("//person[.//age = 40]/profile[.//age = 40]").unwrap();
    let probes2 = QueryEngine::candidate_probes(&idx, &q2);
    assert_eq!(probes2.len(), 2);
    assert_ne!(probes2[0].step, probes2[1].step);
    let cross = Plan::Intersect(probes2[0].clone(), probes2[1].clone());
    assert_eq!(
        QueryEngine::evaluate_with_plan(&doc, &idx, &q2, &cross),
        QueryEngine::evaluate_scan(&doc, &q2)
    );
}

/// The scan-threshold knob governs whether an unselective lone
/// predicate is probed at all.
#[test]
fn scan_threshold_governs_unselective_probe() {
    let (_, idx) = setup(120);
    let q = QueryEngine::parse("//person[.//education = \"Graduate School\"]").unwrap();
    // The education probe covers every person — about a quarter of
    // the document's nodes, exactly as its (heavy-hitter, exact)
    // estimate says.
    let est = idx.estimate(&Lookup::equi("Graduate School")).unwrap();
    assert_eq!(est.estimate, 240);
    // Under the default fraction (0.5) the probe still wins …
    assert!(matches!(QueryEngine::plan(&idx, &q), Plan::Index(_)));
    // … but a stricter threshold tips it into a scan.
    let cfg = PlannerConfig {
        scan_fraction: 0.1,
        ..PlannerConfig::default()
    };
    assert_eq!(QueryEngine::plan_with(&idx, &q, &cfg), Plan::Scan);
}

/// Estimates are served identically by the manager, the document
/// snapshot, the service entry point, and (summed) the catalog-wide
/// snapshot.
#[test]
fn estimate_surface_agrees_across_layers() {
    let doc = people_doc(40);
    let service = IndexService::new(ServiceConfig::with_shards(2));
    service.insert_document("a", doc.clone());
    service.insert_document("b", doc.clone());
    let idx = IndexManager::build(&doc, IndexConfig::default());

    for lookup in [
        Lookup::equi("Graduate School"),
        Lookup::equi("name7"),
        Lookup::range_f64(30.0..40.0),
    ] {
        let direct = idx.estimate(&lookup).unwrap();
        let snap = service.snapshot("a").unwrap().estimate(&lookup).unwrap();
        let svc = service.estimate("a", &lookup).unwrap();
        assert_eq!(direct, snap, "{lookup}");
        assert_eq!(direct, svc, "{lookup}");
        let fanout = service.snapshot_all().estimate(&lookup);
        assert_eq!(fanout, direct.sum(direct), "{lookup}: two identical docs");
    }
    assert!(service.estimate("nope", &Lookup::equi("x")).is_err());

    // Estimates stay aligned with truth across commits.
    let node = service
        .read("a", |doc, idx| {
            idx.query(doc, &Lookup::equi("name7"))
                .unwrap()
                .into_iter()
                .find(|&n| doc.direct_value(n).is_some())
                .unwrap()
        })
        .unwrap();
    let mut txn = service.begin();
    txn.set_value(node, "Graduate School");
    service.commit("a", txn).unwrap();
    let est = service.estimate("a", &Lookup::equi("name7")).unwrap();
    let actual = service.query("a", &Lookup::equi("name7")).unwrap().len();
    assert!(est.lower <= actual && actual <= est.upper);
}

/// `Lookup::XPath` estimates report the chosen plan's expected work
/// (probe cardinality, or the document scale for scans) — with
/// deliberately vacuous bounds, since a query's result count is not
/// bounded by its probe's candidates.
#[test]
fn xpath_lookup_estimates() {
    let (doc, idx) = setup(60);
    let probe = idx
        .estimate(&Lookup::xpath("//person[.//age = 42]").unwrap())
        .unwrap();
    assert!(probe.estimate < idx.approx_node_count());
    let scan = idx
        .estimate(&Lookup::xpath("//person[years]").unwrap())
        .unwrap();
    assert_eq!(scan.estimate, idx.approx_node_count());
    // The bounds must hold for the actual result count — including
    // queries whose trailing steps fan out far beyond the probe, and
    // the no-index configuration where every plan is a scan.
    for q in ["//person[.//age = 40]//*", "//person[.//age = 42]"] {
        let lookup = Lookup::xpath(q).unwrap();
        let est = idx.estimate(&lookup).unwrap();
        let results = idx.query(&doc, &lookup).unwrap().len();
        assert!(
            est.lower <= results && results <= est.upper,
            "{q}: {results} outside [{}, {}]",
            est.lower,
            est.upper
        );
    }
    let bare = IndexManager::build(&doc, IndexConfig::typed_only(&[]));
    let lookup = Lookup::xpath("//person").unwrap();
    let est = bare.estimate(&lookup).unwrap();
    let results = bare.query(&doc, &lookup).unwrap().len();
    assert!(results > 0 && est.lower <= results && results <= est.upper);
}

/// Two moderately selective same-step predicates intersect under the
/// default configuration once their cardinalities are real (not just
/// toy counts), and the intersection still answers exactly.
#[test]
fn default_config_intersects_mid_selectivity_predicates() {
    // 2400 persons: an age probe matches ~40 persons × 2 nodes ≈ 80
    // candidates (past intersect_min), and a month probe is within the
    // intersect factor of that, so the two-sided plan wins.
    let mut xml = String::from("<people>");
    for i in 0..2400 {
        xml.push_str(&format!(
            "<person><age>{}</age><month>m{}</month></person>",
            18 + (i % 60),
            i % 12
        ));
    }
    xml.push_str("</people>");
    let doc = Document::parse(&xml).unwrap();
    let idx = IndexManager::build(&doc, IndexConfig::default());
    let q = QueryEngine::parse("//person[.//age = 42][.//month = \"m3\"]").unwrap();
    let plan = QueryEngine::plan(&idx, &q);
    // With ~80 vs ~400 candidates inside the 8x factor, the default
    // config intersects — and the intersection still answers exactly.
    assert!(matches!(plan, Plan::Intersect(_, _)), "got {plan}");
    let fast = QueryEngine::evaluate_with_plan(&doc, &idx, &q, &plan);
    assert_eq!(fast, QueryEngine::evaluate_scan(&doc, &q));
}
