//! The §5.1 commutativity claim as a property: disjoint transactions
//! yield byte-identical indices under *every* commit order — serial in
//! the given order, serial in random permutations, and concurrently
//! from real threads through the service's group-commit pipeline.

use std::sync::{Arc, Barrier};

use proptest::prelude::*;

use xvi_index::{Document, IndexConfig, IndexManager, IndexService, NodeId, ServiceConfig};
use xvi_xml::NodeKind;

/// One generated scenario: a document (as leaf values) plus disjoint
/// transactions over its text nodes.
#[derive(Debug, Clone)]
struct Case {
    leaves: Vec<String>,
    /// Disjoint write batches: `txns[t]` holds `(leaf index, value)`.
    txns: Vec<Vec<(usize, String)>>,
    perm_seed: u64,
}

fn case_strategy() -> impl Strategy<Value = Case> {
    (
        proptest::collection::vec(value_strategy(), 2..12),
        2..5usize,
        proptest::collection::vec(value_strategy(), 12),
        any::<u64>(),
    )
        .prop_map(|(leaves, txn_count, fresh, perm_seed)| {
            // Partition the leaves round-robin over the transactions;
            // every leaf is written by at most one transaction, so the
            // batches are disjoint by construction (the paper's
            // commuting case).
            let txn_count = txn_count.min(leaves.len());
            let mut txns: Vec<Vec<(usize, String)>> = vec![Vec::new(); txn_count];
            for (i, value) in fresh.into_iter().enumerate().take(leaves.len()) {
                txns[i % txn_count].push((i, value));
            }
            txns.retain(|t| !t.is_empty());
            Case {
                leaves,
                txns,
                perm_seed,
            }
        })
}

fn value_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-z]{1,8}",
        "[0-9]{1,5}",
        "-?[0-9]{1,3}\\.[0-9]{1,2}",
        "[a-z0-9 ]{2,10}",
    ]
}

/// Builds a small two-level document whose text leaves carry the
/// generated values (groups of three leaves share an ancestor, so
/// different transactions do touch common ancestors — the interesting
/// case for commutativity).
fn build_doc(leaves: &[String]) -> Document {
    let mut xml = String::from("<r>");
    for (i, chunk) in leaves.chunks(3).enumerate() {
        xml.push_str(&format!("<g{i}>"));
        for v in chunk {
            // A whitespace-only leaf would parse to an empty element
            // and break the leaf-index ↔ text-node mapping.
            let v = if v.trim().is_empty() { "x" } else { v.trim() };
            xml.push_str(&format!("<v>{v}</v>"));
        }
        xml.push_str(&format!("</g{i}>"));
    }
    xml.push_str("</r>");
    Document::parse(&xml).unwrap_or_else(|e| panic!("generated doc parses: {e}\n{xml}"))
}

fn text_nodes(doc: &Document) -> Vec<NodeId> {
    doc.descendants(doc.document_node())
        .filter(|&n| matches!(doc.kind(n), NodeKind::Text(_)))
        .collect()
}

fn config() -> IndexConfig {
    IndexConfig::default().with_substring_index()
}

/// Byte-level identity of all three index families: per-node string
/// hash, double state and typed value, plus the structural sizes of
/// the string and trigram indices.
fn fingerprint(doc: &Document, idx: &IndexManager) -> Vec<(Option<u32>, Option<u16>, Option<u64>)> {
    use xvi_index::XmlType;
    let mut fp: Vec<(Option<u32>, Option<u16>, Option<u64>)> = doc
        .descendants_or_self(doc.document_node())
        .map(|n| {
            (
                idx.hash_of(n).map(|h| h.raw()),
                idx.state_of(XmlType::Double, n),
                idx.typed_index(XmlType::Double)
                    .and_then(|t| t.value_of(n))
                    .map(f64::to_bits),
            )
        })
        .collect();
    let sub = idx.substring_index().expect("substring index configured");
    fp.push((
        Some(idx.string_index().expect("string index").len() as u32),
        None,
        Some(((sub.postings() as u64) << 32) | sub.indexed_nodes() as u64),
    ));
    fp
}

/// Serial replay with `IndexManager::update_values`, one call per
/// transaction, in the given order.
fn serial_replay(case: &Case, order: &[usize]) -> Vec<(Option<u32>, Option<u16>, Option<u64>)> {
    let mut doc = build_doc(&case.leaves);
    let nodes = text_nodes(&doc);
    let mut idx = IndexManager::build(&doc, config());
    for &t in order {
        let writes: Vec<(NodeId, &str)> = case.txns[t]
            .iter()
            .map(|(leaf, v)| (nodes[*leaf], v.as_str()))
            .collect();
        idx.update_values(&mut doc, writes).unwrap();
    }
    fingerprint(&doc, &idx)
}

/// A deterministic permutation of `0..n` from a seed (xorshift-driven
/// Fisher-Yates; avoids depending on `rand` here).
fn permutation(n: usize, mut seed: u64) -> Vec<usize> {
    let mut p: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        p.swap(i, (seed % (i as u64 + 1)) as usize);
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any serial permutation of disjoint transactions produces the
    /// same final string, typed and substring indices.
    #[test]
    fn serial_permutations_commute(case in case_strategy()) {
        let n = case.txns.len();
        let baseline = serial_replay(&case, &(0..n).collect::<Vec<_>>());
        for round in 0..3u64 {
            let order = permutation(n, case.perm_seed.wrapping_add(round));
            let fp = serial_replay(&case, &order);
            prop_assert_eq!(&fp, &baseline, "order {:?} diverged", order);
        }
    }

    /// Real threads committing the same disjoint transactions through
    /// the service's group-commit pipeline converge to the serial
    /// replay, and the maintained indices match a fresh rebuild.
    #[test]
    fn concurrent_commits_match_serial_replay(case in case_strategy()) {
        let n = case.txns.len();
        let baseline = serial_replay(&case, &(0..n).collect::<Vec<_>>());

        let doc = build_doc(&case.leaves);
        let nodes = text_nodes(&doc);
        let service = Arc::new(IndexService::new(
            ServiceConfig::with_shards(2).with_max_group(4).with_index(config()),
        ));
        service.insert_document("doc", doc);

        let barrier = Arc::new(Barrier::new(n));
        let handles: Vec<_> = (0..n)
            .map(|t| {
                let service = Arc::clone(&service);
                let barrier = Arc::clone(&barrier);
                let writes: Vec<(NodeId, String)> = case.txns[t]
                    .iter()
                    .map(|(leaf, v)| (nodes[*leaf], v.clone()))
                    .collect();
                std::thread::spawn(move || {
                    let mut txn = service.begin();
                    for (node, value) in writes {
                        txn.set_value(node, value);
                    }
                    barrier.wait();
                    service.commit("doc", txn).unwrap()
                })
            })
            .collect();
        let mut applied = 0usize;
        for h in handles {
            applied += h.join().expect("committer panicked").applied;
        }
        prop_assert_eq!(
            applied,
            case.txns.iter().map(Vec::len).sum::<usize>()
        );
        prop_assert_eq!(service.commit_count(), n as u64);

        let snap = service.snapshot("doc").unwrap();
        let fp = fingerprint(snap.document(), snap.index());
        prop_assert_eq!(&fp, &baseline, "concurrent run diverged from serial replay");
        snap.index()
            .verify_against(snap.document())
            .map_err(proptest::test_runner::TestCaseError::fail)?;
    }

    /// `submit` + deferred `wait` must be observably identical to the
    /// old blocking `commit` (which is now literally `submit().wait()`):
    /// pipelining every transaction before reaping any ticket yields
    /// the same receipts, commit count and byte-identical indices as
    /// committing one by one.
    #[test]
    fn pipelined_submit_equals_blocking_commit(case in case_strategy()) {
        let run = |pipelined: bool| {
            let doc = build_doc(&case.leaves);
            let nodes = text_nodes(&doc);
            let service = IndexService::new(
                ServiceConfig::with_shards(1).with_max_group(2).with_index(config()),
            );
            service.insert_document("doc", doc);
            let make_txn = |t: usize| {
                let mut txn = service.begin();
                for (leaf, v) in &case.txns[t] {
                    txn.set_value(nodes[*leaf], v.clone());
                }
                txn
            };
            let mut receipts = Vec::new();
            if pipelined {
                let tickets: Vec<_> = (0..case.txns.len())
                    .map(|t| service.submit("doc", make_txn(t)))
                    .collect();
                for ticket in tickets {
                    receipts.push(ticket.wait().unwrap());
                }
            } else {
                for t in 0..case.txns.len() {
                    receipts.push(service.commit("doc", make_txn(t)).unwrap());
                }
            }
            let applied: Vec<usize> = receipts.iter().map(|r| r.applied).collect();
            let snap = service.snapshot("doc").unwrap();
            (applied, service.commit_count(), fingerprint(snap.document(), snap.index()))
        };
        let (applied_p, count_p, fp_p) = run(true);
        let (applied_b, count_b, fp_b) = run(false);
        prop_assert_eq!(applied_p, applied_b);
        prop_assert_eq!(count_p, count_b);
        prop_assert_eq!(fp_p, fp_b, "pipelined submits diverged from blocking commits");
    }
}
