//! The exact-estimate contract, end to end: every tree-backed lookup
//! flavor (`Equi`, `RangeF64`, `TypedEq`, `TypedRange`) now answers
//! `estimate()` **exactly** — `lower == estimate == upper` — straight
//! from the B+trees' interior monoid summaries, and the number must
//! agree with what actually evaluating the lookup returns. The
//! agreement is checked at the manager level, through the service's
//! threaded group-commit pipeline, and across copy-on-write pinned
//! snapshots that outlive later commits.
//!
//! Non-tree-backed flavors are regression-pinned to their PR 5
//! semantics: substring estimates keep guaranteed (not necessarily
//! tight) `[lower, upper]` bounds around the truth, and XPath keeps
//! its deliberately vacuous `[0, usize::MAX]`.

use std::sync::{Arc, Barrier};

use xvi_hash::hash_str;
use xvi_index::{
    Document, IndexConfig, IndexManager, IndexService, Lookup, NodeId, ServiceConfig, XmlType,
};
use xvi_xml::NodeKind;

fn config() -> IndexConfig {
    IndexConfig::default().with_substring_index()
}

fn build_doc(n: usize) -> Document {
    let mut xml = String::from("<r>");
    for i in 0..n {
        // A mix of doubles (i, with repeats every 10) and non-numeric
        // strings, so both the typed and string trees have content.
        if i % 3 == 0 {
            xml.push_str(&format!("<v>word{}</v>", i % 7));
        } else {
            xml.push_str(&format!("<v>{}</v>", i % 10));
        }
    }
    xml.push_str("</r>");
    Document::parse(&xml).unwrap()
}

fn text_nodes(doc: &Document) -> Vec<NodeId> {
    doc.descendants(doc.document_node())
        .filter(|&n| matches!(doc.kind(n), NodeKind::Text(_)))
        .collect()
}

/// The tree-backed lookups the exactness contract covers.
fn tree_backed_lookups() -> Vec<Lookup> {
    vec![
        Lookup::equi("3"),
        Lookup::equi("word2"),
        Lookup::equi("no such value"),
        Lookup::range_f64(2.0..7.0),
        Lookup::range_f64(..),
        Lookup::range_f64(100.0..200.0),
        Lookup::typed_eq(XmlType::Double, 4.0),
        Lookup::typed_range(XmlType::Double, 3.0..=8.0),
    ]
}

/// Asserts the exactness contract for one tree-backed lookup against
/// a manager: collapsed bounds, and agreement with evaluation. For
/// `Equi` the population is the *candidate* set (hash matches before
/// string verification) — the same contract `query` filters down from.
fn assert_exact(idx: &IndexManager, doc: &Document, lookup: &Lookup) {
    let est = idx.estimate(lookup).unwrap();
    assert_eq!(est.lower, est.estimate, "collapsed bounds for {lookup:?}");
    assert_eq!(est.upper, est.estimate, "collapsed bounds for {lookup:?}");
    let truth = match lookup {
        Lookup::Equi(v) => idx
            .string_index()
            .expect("string index configured")
            .candidates(hash_str(v))
            .len(),
        _ => idx.query(doc, lookup).unwrap().len(),
    };
    assert_eq!(est.estimate, truth, "estimate != evaluation for {lookup:?}");
}

#[test]
fn manager_estimates_are_exact_for_tree_backed_lookups() {
    let doc = build_doc(120);
    let idx = IndexManager::build(&doc, config());
    for lookup in tree_backed_lookups() {
        assert_exact(&idx, &doc, &lookup);
    }
}

#[test]
fn estimates_stay_exact_across_threaded_commits() {
    let doc = build_doc(90);
    let nodes = text_nodes(&doc);
    let service = Arc::new(IndexService::new(
        ServiceConfig::with_shards(2)
            .with_max_group(4)
            .with_index(config()),
    ));
    service.insert_document("doc", doc);

    // Eight threads rewrite disjoint slices of the leaves through the
    // group-commit pipeline.
    let threads = 8usize;
    let barrier = Arc::new(Barrier::new(threads));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let service = Arc::clone(&service);
            let barrier = Arc::clone(&barrier);
            let mine: Vec<NodeId> = nodes
                .iter()
                .enumerate()
                .filter(|(i, _)| i % threads == t)
                .map(|(_, &n)| n)
                .collect();
            std::thread::spawn(move || {
                let mut txn = service.begin();
                for (j, node) in mine.into_iter().enumerate() {
                    if j % 2 == 0 {
                        txn.set_value(node, format!("{}", (t + j) % 12));
                    } else {
                        txn.set_value(node, format!("word{}", (t + j) % 5));
                    }
                }
                barrier.wait();
                service.commit("doc", txn).unwrap()
            })
        })
        .collect();
    for h in handles {
        h.join().expect("committer panicked");
    }

    let snap = service.snapshot("doc").unwrap();
    for lookup in tree_backed_lookups() {
        assert_exact(snap.index(), snap.document(), &lookup);
    }
}

#[test]
fn pinned_snapshot_keeps_its_own_exact_counts() {
    let doc = build_doc(60);
    let nodes = text_nodes(&doc);
    let service = IndexService::new(ServiceConfig::with_shards(1).with_index(config()));
    service.insert_document("doc", doc);

    let pinned = service.snapshot("doc").unwrap();
    let pinned_counts: Vec<usize> = tree_backed_lookups()
        .iter()
        .map(|l| pinned.estimate(l).unwrap().estimate)
        .collect();

    // Rewrite every leaf to a value none of the probes match; the
    // copy-on-write pages under the pinned snapshot must keep serving
    // its original, still-exact counts.
    let mut txn = service.begin();
    for &n in &nodes {
        txn.set_value(n, "drifted".to_string());
    }
    service.commit("doc", txn).unwrap();

    for (lookup, &before) in tree_backed_lookups().iter().zip(&pinned_counts) {
        let est = pinned.estimate(lookup).unwrap();
        assert_eq!(est.estimate, before, "pinned count drifted for {lookup:?}");
        assert_exact(pinned.index(), pinned.document(), lookup);
    }

    // The new committed version sees the rewrite — and is exact on it.
    // (Both the text node and its `<v>` parent hash to "drifted", so
    // the candidate population is twice the leaf count.)
    let fresh = service.snapshot("doc").unwrap();
    assert_eq!(
        fresh.estimate(&Lookup::equi("drifted")).unwrap().estimate,
        2 * nodes.len()
    );
    for lookup in tree_backed_lookups() {
        assert_exact(fresh.index(), fresh.document(), &lookup);
    }
    assert_eq!(
        fresh
            .estimate(&Lookup::range_f64(2.0..7.0))
            .unwrap()
            .estimate,
        0,
        "no numeric leaves remain"
    );
}

#[test]
fn non_tree_backed_flavors_keep_their_bounded_contract() {
    let doc = build_doc(120);
    let idx = IndexManager::build(&doc, config());

    // Substring: guaranteed bounds around the truth, not exactness.
    for lookup in [Lookup::contains("word"), Lookup::wildcard("*ord*")] {
        let est = idx.estimate(&lookup).unwrap();
        let truth = idx.query(&doc, &lookup).unwrap().len();
        assert!(
            est.lower <= truth && truth <= est.upper,
            "{lookup:?}: {truth} outside [{}, {}]",
            est.lower,
            est.upper
        );
    }

    // An absent trigram is provably absent: upper bound zero.
    let absent = idx.estimate(&Lookup::contains("zzqqxx")).unwrap();
    assert_eq!(absent.upper, 0);

    // XPath keeps its vacuous plan-work bounds.
    let xpath = idx
        .estimate(&Lookup::xpath("//v[. = \"3\"]").unwrap())
        .unwrap();
    assert_eq!(xpath.lower, 0);
    assert_eq!(xpath.upper, usize::MAX);
}
