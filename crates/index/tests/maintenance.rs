//! Maintenance-equals-rebuild: after any sequence of value updates,
//! subtree deletions and subtree insertions, the incrementally
//! maintained index must be indistinguishable from an index built
//! from scratch on the final document. This is the invariant that
//! makes the paper's Figure 10 measurements meaningful — fast updates
//! are worthless if they drift.

use proptest::prelude::*;
use xvi_index::{IndexConfig, IndexManager, Lookup, XmlType};
use xvi_xml::{Document, NodeId, NodeKind};

/// Values that exercise all interesting FSM transitions: numbers,
/// fragments ("potential" values), text, and whitespace forms.
fn arb_value() -> impl Strategy<Value = String> {
    prop_oneof![
        3 => "[0-9]{1,4}",
        2 => "[0-9]{1,3}\\.[0-9]{1,3}",
        1 => Just(".".to_string()),
        1 => Just("E+9".to_string()),
        1 => Just(" +4.2E1".to_string()),
        1 => Just("".to_string()),
        2 => "[a-zA-Z ]{1,12}",
        1 => Just("42 text".to_string()),
        1 => "-?[0-9]{1,3}e-?[0-9]",
    ]
}

/// A small random document with nested elements, mixed content and
/// attributes.
#[derive(Debug, Clone)]
enum Gen {
    Elem(String, Vec<(String, String)>, Vec<Gen>),
    Text(String),
}

fn arb_doc_tree() -> impl Strategy<Value = Gen> {
    let leaf = prop_oneof![
        arb_value().prop_map(Gen::Text),
        (
            "[a-f]{1,3}",
            proptest::collection::vec(("[g-k]{1,3}", arb_value()), 0..2)
        )
            .prop_map(|(n, a)| Gen::Elem(n, a, vec![])),
    ];
    leaf.prop_recursive(4, 40, 5, |inner| {
        (
            "[a-f]{1,3}",
            proptest::collection::vec(("[g-k]{1,3}", arb_value()), 0..2),
            proptest::collection::vec(inner, 0..5),
        )
            .prop_map(|(n, a, c)| Gen::Elem(n, a, c))
    })
}

fn realize(doc: &mut Document, parent: NodeId, g: &Gen) {
    match g {
        Gen::Text(t) => {
            doc.append_text(parent, t);
        }
        Gen::Elem(name, attrs, children) => {
            let e = doc.append_element(parent, name);
            for (k, v) in attrs {
                doc.set_attribute(e, k, v);
            }
            for c in children {
                realize(doc, e, c);
            }
        }
    }
}

/// Editable nodes: text and attribute nodes of the current document.
fn value_nodes(doc: &Document) -> Vec<NodeId> {
    let mut out = Vec::new();
    for n in doc.descendants(doc.document_node()) {
        if matches!(doc.kind(n), NodeKind::Text(_)) {
            out.push(n);
        }
        for a in doc.attributes(n) {
            out.push(a);
        }
    }
    out
}

fn elements(doc: &Document) -> Vec<NodeId> {
    doc.descendants(doc.document_node())
        .filter(|&n| matches!(doc.kind(n), NodeKind::Element(_)))
        .collect()
}

#[derive(Debug, Clone)]
enum Op {
    Update(usize, String),
    BatchUpdate(Vec<(usize, String)>),
    Delete(usize),
    Insert(usize, String, String),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (any::<usize>(), arb_value()).prop_map(|(i, v)| Op::Update(i, v)),
        2 => proptest::collection::vec((any::<usize>(), arb_value()), 1..5)
            .prop_map(Op::BatchUpdate),
        1 => any::<usize>().prop_map(Op::Delete),
        2 => (any::<usize>(), "[a-f]{1,3}", arb_value())
            .prop_map(|(i, n, v)| Op::Insert(i, n, v)),
    ]
}

fn config() -> IndexConfig {
    IndexConfig::with_types(&[XmlType::Double, XmlType::Integer]).with_substring_index()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn incremental_maintenance_matches_rebuild(
        tree in arb_doc_tree(),
        ops in proptest::collection::vec(arb_op(), 0..12),
    ) {
        let mut doc = Document::new();
        let root = doc.document_node();
        realize(&mut doc, root, &tree);
        let mut idx = IndexManager::build(&doc, config());

        for op in ops {
            match op {
                Op::Update(i, v) => {
                    let nodes = value_nodes(&doc);
                    if nodes.is_empty() { continue; }
                    let n = nodes[i % nodes.len()];
                    idx.update_value(&mut doc, n, &v).unwrap();
                }
                Op::BatchUpdate(batch) => {
                    let nodes = value_nodes(&doc);
                    if nodes.is_empty() { continue; }
                    // Deduplicate targets: last write wins either way,
                    // but keep the test deterministic.
                    let mut used = std::collections::HashSet::new();
                    let updates: Vec<(NodeId, &str)> = batch
                        .iter()
                        .filter_map(|(i, v)| {
                            let n = nodes[i % nodes.len()];
                            used.insert(n).then_some((n, v.as_str()))
                        })
                        .collect();
                    idx.update_values(&mut doc, updates).unwrap();
                }
                Op::Delete(i) => {
                    let elems = elements(&doc);
                    if elems.is_empty() { continue; }
                    let n = elems[i % elems.len()];
                    idx.delete_subtree(&mut doc, n).unwrap();
                }
                Op::Insert(i, name, value) => {
                    let mut targets = elements(&doc);
                    targets.push(doc.document_node());
                    let parent = targets[i % targets.len()];
                    let e = doc.append_element(parent, &name);
                    doc.append_text(e, &value);
                    idx.index_new_subtree(&doc, e);
                }
            }
            idx.verify_against(&doc).map_err(|e| {
                TestCaseError::fail(format!("index drifted from document: {e}"))
            })?;
        }
    }

    /// Every equi-lookup answer is exact (verification removes all
    /// false positives) and complete (every node with that string
    /// value is returned).
    #[test]
    fn equi_lookup_is_exact_and_complete(tree in arb_doc_tree(), needle in arb_value()) {
        let mut doc = Document::new();
        let root = doc.document_node();
        realize(&mut doc, root, &tree);
        let idx = IndexManager::build(&doc, IndexConfig::default());

        let hits: std::collections::HashSet<NodeId> =
            idx.query(&doc, &Lookup::equi(&needle)).unwrap().into_iter().collect();
        let mut expected = std::collections::HashSet::new();
        for n in doc.descendants_or_self(doc.document_node()) {
            if matches!(doc.kind(n), NodeKind::Comment(_) | NodeKind::Pi { .. }) {
                continue;
            }
            if doc.string_value(n) == needle {
                expected.insert(n);
            }
            for a in doc.attributes(n) {
                if doc.string_value(a) == needle {
                    expected.insert(a);
                }
            }
        }
        prop_assert_eq!(hits, expected);
    }

    /// Range lookups return exactly the nodes whose string value casts
    /// to a double inside the range.
    #[test]
    fn range_lookup_is_exact_and_complete(tree in arb_doc_tree(),
                                          a in -500.0f64..500.0, b in -500.0f64..500.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let mut doc = Document::new();
        let root = doc.document_node();
        realize(&mut doc, root, &tree);
        let idx = IndexManager::build(&doc, IndexConfig::default());

        let hits: std::collections::HashSet<NodeId> =
            idx.query(&doc, &Lookup::range_f64(lo..=hi)).unwrap().into_iter().collect();
        let mut expected = std::collections::HashSet::new();
        for n in doc.descendants_or_self(doc.document_node()) {
            if matches!(doc.kind(n), NodeKind::Comment(_) | NodeKind::Pi { .. }) {
                continue;
            }
            let mut check = |m: NodeId| {
                let sv = doc.string_value(m);
                // The index only stores nodes the *lexical* FSM accepts.
                let an = xvi_fsm::analyzer(XmlType::Double);
                let complete = an
                    .state_of(&sv)
                    .map(|s| an.is_complete(s))
                    .unwrap_or(false);
                if complete {
                    if let Some(v) = XmlType::Double.cast(&sv) {
                        if v >= lo && v <= hi {
                            expected.insert(m);
                        }
                    }
                }
            };
            check(n);
            for attr in doc.attributes(n) {
                check(attr);
            }
        }
        prop_assert_eq!(hits, expected);
    }
}
