//! The index-accelerated query plan must agree with the full-scan
//! baseline on randomly generated documents and randomly generated
//! queries — the evaluator-level analogue of maintenance-equals-
//! rebuild.

use proptest::prelude::*;
use xvi_index::query::{Axis, CmpOp, Literal, Predicate, Query, Step, Test};
use xvi_index::{IndexConfig, IndexManager, QueryEngine};
use xvi_xml::Document;

/// Random small documents over a tiny tag alphabet so that generated
/// queries actually hit something.
fn arb_doc() -> impl Strategy<Value = String> {
    let value = prop_oneof![
        2 => (0u32..100).prop_map(|n| n.to_string()),
        1 => (0u32..80, 0u32..100).prop_map(|(a, b)| format!("{a}.{b:02}")),
        2 => "[a-d]{1,6}".prop_map(|s| s),
    ];
    let leaf = ("[abc]", value.clone()).prop_map(|(t, v)| format!("<{t}>{v}</{t}>"));
    leaf.prop_recursive(3, 24, 4, move |inner| {
        (
            "[abc]",
            proptest::collection::vec(inner, 0..4),
            value.clone(),
        )
            .prop_map(|(t, kids, v)| {
                let body: String = kids.concat();
                // Half the elements get a mixed-content tail.
                format!("<{t} k=\"{v}\">{body}{v}</{t}>")
            })
    })
    .prop_map(|inner| format!("<root>{inner}</root>"))
}

fn arb_query() -> impl Strategy<Value = Query> {
    let test = prop_oneof![Just(Test::Any), "[abc]".prop_map(Test::Name),];
    let lit = prop_oneof![
        (0u32..100).prop_map(|n| Literal::Num(f64::from(n))),
        "[a-d]{1,4}".prop_map(Literal::Str),
    ];
    let op = prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
        Just(CmpOp::Ne),
    ];
    let pred_path = prop_oneof![
        // .//x
        "[abc]".prop_map(|n| vec![Step {
            axis: Axis::Descendant,
            test: Test::Name(n),
            preds: Vec::new()
        }]),
        // x (child)
        "[abc]".prop_map(|n| vec![Step {
            axis: Axis::Child,
            test: Test::Name(n),
            preds: Vec::new()
        }]),
        // @k
        Just(vec![Step {
            axis: Axis::Child,
            test: Test::Attr("k".into()),
            preds: Vec::new()
        }]),
        // . (self)
        Just(vec![Step {
            axis: Axis::SelfAxis,
            test: Test::Any,
            preds: Vec::new()
        }]),
    ];
    let pred = (pred_path, op, lit).prop_map(|(path, op, lit)| Predicate {
        path,
        cmp: Some((op, lit)),
    });
    // Zero, one, or two predicates on the step — the cost-based
    // planner enumerates them all and must stay scan-equivalent for
    // any choice it makes.
    (test, proptest::collection::vec(pred, 0..3)).prop_map(|(test, preds)| Query {
        steps: vec![Step {
            axis: Axis::Descendant,
            test,
            preds,
        }],
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn index_plan_agrees_with_scan(xml in arb_doc(), query in arb_query()) {
        let doc = Document::parse(&xml).expect("generated XML is well-formed");
        let idx = IndexManager::build(&doc, IndexConfig::default());
        let fast = QueryEngine::evaluate(&doc, &idx, &query);
        let slow = QueryEngine::evaluate_scan(&doc, &query);
        prop_assert_eq!(fast, slow, "query {:?} on {}", query, xml);
    }
}
