//! Per-index cardinality statistics — the planner's eyes.
//!
//! Every index maintains a small statistics structure incrementally
//! (through the same `set`/`remove` paths that [`Transaction`] commits
//! drive) and rebuilds it on bulk creation and catalog load:
//!
//! * [`EquiHistogram`] — for the string equi-index: an equi-width
//!   histogram over the 32-bit hash space (per-bucket entry and
//!   distinct-hash counts) plus an exact **heavy-hitter** table for
//!   hashes whose multiplicity reaches [`EquiHistogram::HEAVY_MIN`].
//!   Any hash *not* in the heavy table therefore has multiplicity
//!   `< HEAVY_MIN` — a guarantee the estimator turns into a hard upper
//!   bound.
//! * [`ValueHistogram`] — for a typed range index: an equi-depth
//!   histogram over the stored `f64` keys. Bucket fences are frozen at
//!   (re)build time; per-bucket entry and distinct counts stay exact
//!   under maintenance because values are bucketed by the frozen
//!   fences, and the histogram rebuilds itself once enough drift
//!   accumulates.
//! * [`QGramTable`] — for the trigram substring index: a frequency
//!   table `trigram → posting count`, stored in a copy-on-write
//!   [`BPlusTree`] so service snapshots share it structurally.
//!
//! Every estimator returns a [`CardinalityEstimate`] carrying a point
//! estimate **and guaranteed bounds**: the true candidate count of the
//! corresponding probe always lies in `[lower, upper]`. The bounds are
//! what the maintenance property tests pin down, and the gap between
//! `estimate` and the actual count is what
//! [`QueryEngine::explain`](crate::QueryEngine::explain) surfaces.
//!
//! [`Transaction`]: crate::Transaction

use xvi_btree::{BPlusTree, PagedVec};

use crate::lookup::Bounds;
use crate::util::OrdF64;

/// A cardinality estimate with guaranteed bounds: the true candidate
/// count of the estimated probe lies in `[lower, upper]`, and
/// `estimate` is the planner's point guess inside that interval.
///
/// ```
/// use xvi_index::{Document, IndexConfig, IndexManager, Lookup};
///
/// let doc = Document::parse("<r><a>7</a><a>7</a><b>hi</b></r>").unwrap();
/// let idx = IndexManager::build(&doc, IndexConfig::default());
/// let est = idx.estimate(&Lookup::range_f64(0.0..10.0)).unwrap();
/// // Four candidates hold the value 7: both <a> elements and their
/// // text nodes. The bounds are guarantees, the estimate a guess.
/// assert!(est.lower <= 4 && 4 <= est.upper);
/// assert!(est.lower <= est.estimate && est.estimate <= est.upper);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CardinalityEstimate {
    /// Point estimate of the candidate count.
    pub estimate: usize,
    /// Guaranteed lower bound on the candidate count.
    pub lower: usize,
    /// Guaranteed upper bound on the candidate count.
    pub upper: usize,
}

impl CardinalityEstimate {
    /// An exactly known cardinality (`lower == estimate == upper`).
    pub fn exact(n: usize) -> CardinalityEstimate {
        CardinalityEstimate {
            estimate: n,
            lower: n,
            upper: n,
        }
    }

    /// The empty estimate (exactly zero candidates).
    pub fn empty() -> CardinalityEstimate {
        CardinalityEstimate::exact(0)
    }

    /// An estimate whose bounds carry no information: anything from
    /// zero to everything. Used where a sound finite bound cannot be
    /// derived (e.g. whole-query estimates, whose results can fan out
    /// beyond any value probe's candidates).
    pub fn unbounded(estimate: usize) -> CardinalityEstimate {
        CardinalityEstimate {
            estimate,
            lower: 0,
            upper: usize::MAX,
        }
    }

    /// Component-wise (saturating) sum — the estimate of a fan-out
    /// over independent indexes (e.g. one per document of a
    /// [`ServiceSnapshot`](crate::ServiceSnapshot)).
    pub fn sum(self, other: CardinalityEstimate) -> CardinalityEstimate {
        CardinalityEstimate {
            estimate: self.estimate.saturating_add(other.estimate),
            lower: self.lower.saturating_add(other.lower),
            upper: self.upper.saturating_add(other.upper),
        }
    }
}

impl std::fmt::Display for CardinalityEstimate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.lower == self.upper {
            write!(f, "={}", self.estimate)
        } else if self.upper == usize::MAX {
            write!(f, "~{} [{}, ∞)", self.estimate, self.lower)
        } else {
            write!(f, "~{} [{}, {}]", self.estimate, self.lower, self.upper)
        }
    }
}

// ----- string equi-index ---------------------------------------------------

/// Statistics of the string equi-index: an equi-width histogram over
/// the hash space plus an exact heavy-hitter table.
///
/// Both parts live in copy-on-write storage (paged bucket columns, a
/// COW B+tree for the heavy table), so cloning the histogram — part of
/// every service copy-on-write publish — is O(pages) pointer bumps and
/// a mutated clone detaches only the touched pages, matching the index
/// trees it describes.
///
/// The maintenance contract (upheld by
/// [`StringIndex`](crate::StringIndex)): every tree insert/remove is
/// reported through the crate-internal `note_insert` / `note_remove`
/// hooks with the hash's capped multiplicity, so a hash reaching
/// [`EquiHistogram::HEAVY_MIN`] entries is always
/// tracked exactly — which is what makes
/// [`EquiHistogram::estimate_equi`]'s upper bound a guarantee rather
/// than a guess.
#[derive(Debug, Clone, Default)]
pub struct EquiHistogram {
    /// Entry count per hash bucket (top [`Self::BUCKET_BITS`] bits).
    entries: PagedVec<u32>,
    /// Distinct-hash count per bucket.
    distinct: PagedVec<u32>,
    /// Exact multiplicities of hashes with `count >= HEAVY_MIN`.
    heavy: BPlusTree<u32, u32>,
    total: u64,
    distinct_total: u64,
}

impl EquiHistogram {
    /// Buckets are keyed by this many leading hash bits.
    pub const BUCKET_BITS: u32 = 10;
    /// Number of equi-width buckets over the hash space.
    pub const BUCKETS: usize = 1 << Self::BUCKET_BITS;
    /// Multiplicity at which a hash graduates into the exact
    /// heavy-hitter table. Every hash *below* this threshold is
    /// guaranteed to have fewer than `HEAVY_MIN` entries.
    pub const HEAVY_MIN: u32 = 8;

    fn bucket(raw: u32) -> usize {
        (raw >> (32 - Self::BUCKET_BITS)) as usize
    }

    fn ensure_buckets(&mut self) {
        if self.entries.is_empty() {
            self.entries.resize(Self::BUCKETS, 0);
            self.distinct.resize(Self::BUCKETS, 0);
        }
    }

    /// A clone that shares no pages with `self`.
    pub(crate) fn deep_clone(&self) -> EquiHistogram {
        EquiHistogram {
            entries: self.entries.deep_clone(),
            distinct: self.distinct.deep_clone(),
            heavy: self.heavy.deep_clone(),
            total: self.total,
            distinct_total: self.distinct_total,
        }
    }

    /// Rebuilds from the hash components of a `(hash, node)`-sorted
    /// entry run (the bulk-load input).
    pub(crate) fn rebuild_from_sorted(&mut self, hashes: impl IntoIterator<Item = u32>) {
        *self = EquiHistogram::default();
        self.ensure_buckets();
        let mut run: Option<(u32, u32)> = None;
        for raw in hashes {
            match &mut run {
                Some((cur, n)) if *cur == raw => *n += 1,
                _ => {
                    if let Some((cur, n)) = run.take() {
                        self.close_run(cur, n);
                    }
                    run = Some((raw, 1));
                }
            }
        }
        if let Some((cur, n)) = run {
            self.close_run(cur, n);
        }
    }

    fn close_run(&mut self, raw: u32, n: u32) {
        let b = Self::bucket(raw);
        self.entries[b] += n;
        self.distinct[b] += 1;
        self.total += u64::from(n);
        self.distinct_total += 1;
        if n >= Self::HEAVY_MIN {
            self.heavy.insert(raw, n);
        }
    }

    /// The exact multiplicity of `raw`, if it is a tracked heavy
    /// hitter.
    pub(crate) fn heavy_count(&self, raw: u32) -> Option<u32> {
        self.heavy.get(&raw).copied()
    }

    /// Records one tree insert of `raw`. `prior` is the hash's
    /// multiplicity *before* the insert, capped at
    /// [`Self::HEAVY_MIN`] (exact when the hash is heavy).
    pub(crate) fn note_insert(&mut self, raw: u32, prior: u32) {
        self.ensure_buckets();
        let b = Self::bucket(raw);
        self.entries[b] += 1;
        self.total += 1;
        if prior == 0 {
            self.distinct[b] += 1;
            self.distinct_total += 1;
        }
        match self.heavy.get(&raw).copied() {
            Some(c) => {
                self.heavy.insert(raw, c + 1);
            }
            None if prior + 1 >= Self::HEAVY_MIN => {
                self.heavy.insert(raw, prior + 1);
            }
            None => {}
        }
    }

    /// Records one tree removal of `raw`. `remaining` is the hash's
    /// multiplicity *after* the removal, capped at
    /// [`Self::HEAVY_MIN`] (exact when the hash is heavy).
    pub(crate) fn note_remove(&mut self, raw: u32, remaining: u32) {
        self.ensure_buckets();
        let b = Self::bucket(raw);
        self.entries[b] = self.entries[b].saturating_sub(1);
        self.total = self.total.saturating_sub(1);
        if remaining == 0 {
            self.distinct[b] = self.distinct[b].saturating_sub(1);
            self.distinct_total = self.distinct_total.saturating_sub(1);
        }
        if self.heavy.get(&raw).is_some() {
            if remaining >= Self::HEAVY_MIN {
                self.heavy.insert(raw, remaining);
            } else {
                self.heavy.remove(&raw);
            }
        }
    }

    /// Estimates the candidate count of an equality probe for a value
    /// hashing to `raw`.
    ///
    /// Heavy hitters are exact. For any other hash the multiplicity is
    /// provably below [`Self::HEAVY_MIN`], so the upper bound is
    /// `min(bucket entries, HEAVY_MIN - 1)` and the point estimate the
    /// bucket's average multiplicity clamped into those bounds.
    pub fn estimate_equi(&self, raw: u32) -> CardinalityEstimate {
        if let Some(c) = self.heavy_count(raw) {
            return CardinalityEstimate::exact(c as usize);
        }
        if self.entries.is_empty() {
            return CardinalityEstimate::empty();
        }
        let b = Self::bucket(raw);
        let (entries, distinct) = (self.entries[b] as usize, self.distinct[b] as usize);
        if entries == 0 {
            return CardinalityEstimate::empty();
        }
        let upper = entries.min(Self::HEAVY_MIN as usize - 1);
        let avg = entries.div_ceil(distinct.max(1));
        CardinalityEstimate {
            estimate: avg.min(upper),
            lower: 0,
            upper,
        }
    }

    /// Total indexed entries.
    pub fn total(&self) -> usize {
        self.total as usize
    }

    /// Distinct hash values.
    pub fn distinct(&self) -> usize {
        self.distinct_total as usize
    }

    /// Number of exactly tracked heavy-hitter hashes.
    pub fn heavy_hitters(&self) -> usize {
        self.heavy.len()
    }
}

// ----- typed range index ---------------------------------------------------

/// Equi-depth histogram over the `f64` keys of one typed range index.
///
/// Fences are frozen when the histogram is (re)built from the sorted
/// key run; maintenance keeps per-bucket entry/distinct counts exact
/// with respect to those fences, so range estimates carry guaranteed
/// bounds: interior buckets count exactly, only the two
/// fence-straddling buckets are interpolated. The histogram asks its
/// owner for a rebuild once the mutation drift since the last build
/// reaches a quarter of the population.
#[derive(Debug, Clone, Default)]
pub struct ValueHistogram {
    /// Ascending inner fences; bucket `i` spans `[fences[i-1],
    /// fences[i])` in the `total_cmp` order, with open outermost
    /// buckets.
    fences: Vec<f64>,
    counts: Vec<u64>,
    distinct: Vec<u64>,
    total: u64,
    drift: u64,
}

impl ValueHistogram {
    /// Maximum bucket count of a rebuild.
    pub const MAX_BUCKETS: usize = 64;
    /// Minimum entries per bucket a rebuild aims for.
    const MIN_DEPTH: usize = 8;

    /// Builds an equi-depth histogram from keys sorted by
    /// `f64::total_cmp`.
    pub(crate) fn from_sorted(values: &[f64]) -> ValueHistogram {
        let n = values.len();
        if n == 0 {
            return ValueHistogram::default();
        }
        let buckets = (n / Self::MIN_DEPTH).clamp(1, Self::MAX_BUCKETS);
        let mut fences = Vec::with_capacity(buckets - 1);
        for i in 1..buckets {
            let fence = values[i * n / buckets];
            if fences.last().is_none_or(|&f| OrdF64(f) < OrdF64(fence)) {
                fences.push(fence);
            }
        }
        let mut hist = ValueHistogram {
            counts: vec![0; fences.len() + 1],
            distinct: vec![0; fences.len() + 1],
            fences,
            total: 0,
            drift: 0,
        };
        let mut prev: Option<f64> = None;
        for &v in values {
            let b = hist.bucket(v);
            hist.counts[b] += 1;
            hist.total += 1;
            if prev.is_none_or(|p| OrdF64(p) != OrdF64(v)) {
                hist.distinct[b] += 1;
            }
            prev = Some(v);
        }
        hist
    }

    fn bucket(&self, v: f64) -> usize {
        self.fences.partition_point(|&f| OrdF64(f) <= OrdF64(v))
    }

    /// Whether enough drift accumulated that the owner should rebuild
    /// from the live key run.
    pub(crate) fn needs_rebuild(&self) -> bool {
        self.drift >= 64 && self.drift * 4 >= self.total.max(1)
    }

    /// Records one key insert; `was_present` is whether the key
    /// already had entries before this insert.
    pub(crate) fn note_insert(&mut self, v: f64, was_present: bool) {
        if self.counts.is_empty() {
            self.counts = vec![0];
            self.distinct = vec![0];
        }
        let b = self.bucket(v);
        self.counts[b] += 1;
        self.total += 1;
        if !was_present {
            self.distinct[b] += 1;
        }
        self.drift += 1;
    }

    /// Records one key removal; `still_present` is whether entries for
    /// the key remain after this removal.
    pub(crate) fn note_remove(&mut self, v: f64, still_present: bool) {
        if self.counts.is_empty() {
            return;
        }
        let b = self.bucket(v);
        self.counts[b] = self.counts[b].saturating_sub(1);
        self.total = self.total.saturating_sub(1);
        if !still_present {
            self.distinct[b] = self.distinct[b].saturating_sub(1);
        }
        self.drift += 1;
    }

    /// Estimates the entry count within `bounds`.
    ///
    /// Buckets whose whole fence span lies inside the bounds
    /// contribute exactly; the (at most two) straddling buckets
    /// contribute `[0, count]` with a half-count point estimate — so
    /// `lower` and `upper` are guarantees. A degenerate point range is
    /// estimated from the bucket's average multiplicity instead.
    pub fn estimate_range(&self, bounds: &Bounds) -> CardinalityEstimate {
        use std::ops::Bound;
        if self.total == 0 {
            return CardinalityEstimate::empty();
        }
        // Point probe: `[k, k]`.
        if let (Bound::Included(lo), Bound::Included(hi)) = (bounds.lo, bounds.hi) {
            if OrdF64(lo) == OrdF64(hi) {
                let b = self.bucket(lo);
                let (count, distinct) = (self.counts[b] as usize, self.distinct[b] as usize);
                if count == 0 {
                    return CardinalityEstimate::empty();
                }
                return CardinalityEstimate {
                    estimate: count.div_ceil(distinct.max(1)),
                    lower: 0,
                    upper: count,
                };
            }
        }
        let mut est = CardinalityEstimate::empty();
        for (i, &count) in self.counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            // Bucket span: [min, sup) in total_cmp order; the outermost
            // buckets are open-ended.
            let min = (i > 0).then(|| self.fences[i - 1]);
            let sup = self.fences.get(i).copied();
            if Self::span_outside(min, sup, bounds) {
                continue;
            }
            let count = count as usize;
            if Self::span_inside(min, sup, bounds) {
                est.lower += count;
                est.estimate += count;
                est.upper += count;
            } else {
                est.estimate += count / 2;
                est.upper += count;
            }
        }
        est
    }

    /// Whether the span `[min, sup)` is entirely outside `bounds`.
    fn span_outside(min: Option<f64>, sup: Option<f64>, bounds: &Bounds) -> bool {
        use std::ops::Bound;
        // Everything in the span is < sup: below the lower bound?
        let below = match (sup, bounds.lo) {
            (Some(s), Bound::Included(lo)) | (Some(s), Bound::Excluded(lo)) => {
                OrdF64(s) <= OrdF64(lo)
            }
            _ => false,
        };
        // Everything in the span is >= min: above the upper bound?
        let above = match (min, bounds.hi) {
            (Some(m), Bound::Included(hi)) => OrdF64(hi) < OrdF64(m),
            (Some(m), Bound::Excluded(hi)) => OrdF64(hi) <= OrdF64(m),
            _ => false,
        };
        below || above
    }

    /// Whether the span `[min, sup)` lies entirely inside `bounds`.
    fn span_inside(min: Option<f64>, sup: Option<f64>, bounds: &Bounds) -> bool {
        use std::ops::Bound;
        let lo_ok = match (bounds.lo, min) {
            (Bound::Unbounded, _) => true,
            (Bound::Included(lo), Some(m)) => OrdF64(lo) <= OrdF64(m),
            (Bound::Excluded(lo), Some(m)) => OrdF64(lo) < OrdF64(m),
            (_, None) => false,
        };
        let hi_ok = match (bounds.hi, sup) {
            (Bound::Unbounded, _) => true,
            (Bound::Included(hi), Some(s)) | (Bound::Excluded(hi), Some(s)) => {
                OrdF64(s) <= OrdF64(hi)
            }
            (_, None) => false,
        };
        lo_ok && hi_ok
    }

    /// Total indexed keys.
    pub fn total(&self) -> usize {
        self.total as usize
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.counts.len()
    }

    /// The frozen inner fences.
    pub fn fences(&self) -> &[f64] {
        &self.fences
    }
}

// ----- substring index -----------------------------------------------------

/// Q-gram (trigram) frequency table of the substring index:
/// `trigram → posting count`, plus the indexed-node population.
///
/// The counts live in a copy-on-write [`BPlusTree`], so cloning the
/// table (every service snapshot publish) is O(pages) pointer bumps,
/// matching the posting tree it mirrors.
#[derive(Debug, Clone, Default)]
pub struct QGramTable {
    counts: BPlusTree<u32, u32>,
    total: u64,
}

impl QGramTable {
    /// A clone that shares no pages with `self`.
    pub(crate) fn deep_clone(&self) -> QGramTable {
        QGramTable {
            counts: self.counts.deep_clone(),
            total: self.total,
        }
    }

    /// Rebuilds from a `(trigram, node)`-sorted, deduplicated posting
    /// run (the substring index's bulk-load input).
    pub(crate) fn rebuild_from_sorted(&mut self, grams: impl IntoIterator<Item = u32>) {
        let mut runs: Vec<(u32, u32)> = Vec::new();
        let mut total = 0u64;
        for g in grams {
            total += 1;
            match runs.last_mut() {
                Some((cur, n)) if *cur == g => *n += 1,
                _ => runs.push((g, 1)),
            }
        }
        self.counts = BPlusTree::from_sorted_iter(runs);
        self.total = total;
    }

    /// Records one new posting for `gram`.
    pub(crate) fn note_add(&mut self, gram: u32) {
        let c = self.counts.get(&gram).copied().unwrap_or(0);
        self.counts.insert(gram, c + 1);
        self.total += 1;
    }

    /// Records one removed posting for `gram`.
    pub(crate) fn note_remove(&mut self, gram: u32) {
        match self.counts.get(&gram).copied() {
            Some(c) if c > 1 => {
                self.counts.insert(gram, c - 1);
            }
            Some(_) => {
                self.counts.remove(&gram);
            }
            None => return,
        }
        self.total = self.total.saturating_sub(1);
    }

    /// Posting count of one packed trigram.
    pub fn gram_count(&self, gram: u32) -> usize {
        self.counts.get(&gram).copied().unwrap_or(0) as usize
    }

    /// Number of distinct trigrams.
    pub fn distinct_grams(&self) -> usize {
        self.counts.len()
    }

    /// Total postings across all trigrams.
    pub fn total_postings(&self) -> usize {
        self.total as usize
    }

    /// Estimates the candidate count of a `contains` probe.
    ///
    /// Every match contains each of the needle's trigrams, and the
    /// candidate set is drawn from the rarest posting list, so the
    /// minimum posting count bounds the candidates from above — unless
    /// every trigram is *common* (posting list at least `common_cap`
    /// long — the exact point where the executor abandons the list),
    /// in which case the probe degenerates to verifying all `indexed`
    /// nodes. Needles shorter than one trigram carry no filter at all.
    pub fn estimate_contains(
        &self,
        needle: &str,
        common_cap: usize,
        indexed: usize,
    ) -> CardinalityEstimate {
        let grams: Vec<u32> = crate::substring::trigrams(needle).into_iter().collect();
        if grams.is_empty() {
            return CardinalityEstimate {
                estimate: indexed,
                lower: 0,
                upper: indexed,
            };
        }
        let min = grams
            .iter()
            .map(|&g| self.gram_count(g))
            .min()
            .expect("non-empty gram set");
        if min == 0 {
            return CardinalityEstimate::empty();
        }
        if min >= common_cap {
            // Every trigram is common (the executor abandons a list
            // once it reaches the cap): the probe verifies all
            // indexed nodes.
            return CardinalityEstimate {
                estimate: indexed,
                lower: 0,
                upper: indexed,
            };
        }
        CardinalityEstimate {
            estimate: min,
            lower: 0,
            upper: min,
        }
    }

    /// Estimates the candidate count of a wildcard probe from its
    /// longest literal run (the filter
    /// [`SubstringIndex::matches_wildcard`](crate::SubstringIndex::matches_wildcard)
    /// uses).
    pub fn estimate_wildcard(
        &self,
        pattern: &str,
        common_cap: usize,
        indexed: usize,
    ) -> CardinalityEstimate {
        let filter = crate::substring::wildcard_filter(pattern);
        if filter.len() >= 3 {
            self.estimate_contains(filter, common_cap, indexed)
        } else {
            CardinalityEstimate {
                estimate: indexed,
                lower: 0,
                upper: indexed,
            }
        }
    }
}

// ----- aggregate snapshot --------------------------------------------------

/// A point-in-time snapshot of every configured index's statistics,
/// assembled by
/// [`IndexManager::statistics`](crate::IndexManager::statistics).
///
/// ```
/// use xvi_index::{Document, IndexConfig, IndexManager};
///
/// let doc = Document::parse("<r><a>1</a><a>2</a><a>ax</a></r>").unwrap();
/// let idx = IndexManager::build(&doc, IndexConfig::default().with_substring_index());
/// let stats = idx.statistics();
/// let string = stats.string.as_ref().unwrap();
/// assert!(string.total() >= 6); // every element + text node is hashed
/// assert_eq!(stats.typed.len(), 1); // the double index
/// assert!(stats.substring.is_some());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Statistics {
    /// String equi-index histogram, if configured.
    pub string: Option<EquiHistogram>,
    /// One value histogram per configured typed index.
    pub typed: Vec<(xvi_fsm::XmlType, ValueHistogram)>,
    /// Trigram frequency table, if configured.
    pub substring: Option<QGramTable>,
    /// Root monoid summary of the string equi-index's B+tree, if
    /// configured: exact entry count + key-sequence hash.
    pub string_root: Option<RootSummary>,
    /// Root monoid summary of each configured typed index's value
    /// tree, parallel to `typed`.
    pub typed_roots: Vec<(xvi_fsm::XmlType, RootSummary)>,
}

/// The root of a B+tree's maintained monoid-summary hierarchy: the
/// exact number of stored entries and the order-sensitive hash of the
/// full key sequence (see `xvi_btree::Summary`). Equal summaries mean
/// — with ordinary 64-bit hash confidence — identical indexed content,
/// which makes this the cheap "has anything changed?" probe between
/// two snapshot versions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RootSummary {
    /// Exact entry count of the tree (`Summary::count` at the root).
    pub entries: usize,
    /// Order-sensitive hash of the tree's full key sequence.
    pub hash: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equi_histogram_tracks_heavy_hitters_exactly() {
        let mut h = EquiHistogram::default();
        let raw = 0xdead_beef;
        for i in 0..20 {
            h.note_insert(raw, i.min(EquiHistogram::HEAVY_MIN));
        }
        assert_eq!(h.estimate_equi(raw), CardinalityEstimate::exact(20));
        // Removals walk it back down and out of the heavy table.
        for i in (0..20u32).rev() {
            h.note_remove(raw, i.min(EquiHistogram::HEAVY_MIN));
        }
        assert_eq!(h.estimate_equi(raw), CardinalityEstimate::empty());
        assert_eq!(h.heavy_hitters(), 0);
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn equi_histogram_bounds_light_hashes() {
        let mut h = EquiHistogram::default();
        // Three distinct light hashes in (probably) different buckets.
        for raw in [1u32, 2, 3] {
            h.note_insert(raw, 0);
        }
        let e = h.estimate_equi(1);
        assert!(e.estimate >= 1 && e.upper < EquiHistogram::HEAVY_MIN as usize);
        // An absent hash in an empty bucket estimates to zero.
        assert_eq!(h.estimate_equi(u32::MAX), CardinalityEstimate::empty());
    }

    #[test]
    fn rebuild_from_sorted_matches_incremental() {
        let hashes = [5u32, 5, 5, 5, 5, 5, 5, 5, 5, 9, 9, 0xffff_0000];
        let mut h = EquiHistogram::default();
        h.rebuild_from_sorted(hashes.iter().copied());
        assert_eq!(h.total(), 12);
        assert_eq!(h.distinct(), 3);
        assert_eq!(h.estimate_equi(5), CardinalityEstimate::exact(9));
        let nine = h.estimate_equi(9);
        assert!(nine.lower <= 2 && 2 <= nine.upper);
    }

    #[test]
    fn value_histogram_exact_interior_buckets() {
        let values: Vec<f64> = (0..1000).map(f64::from).collect();
        let h = ValueHistogram::from_sorted(&values);
        assert!(h.buckets() > 1);
        let est = h.estimate_range(&Bounds::from_range(100.0..900.0));
        assert!(est.lower <= 800 && 800 <= est.upper, "{est:?}");
        // The straddling slack is at most two buckets' worth.
        let depth = 1000 / h.buckets();
        assert!(est.upper - est.lower <= 2 * depth + 2, "{est:?}");
        // Unbounded range is exact.
        assert_eq!(
            h.estimate_range(&Bounds::all()),
            CardinalityEstimate::exact(1000)
        );
    }

    #[test]
    fn value_histogram_point_and_maintenance() {
        let values = [1.0, 1.0, 1.0, 2.0, 3.0];
        let mut h = ValueHistogram::from_sorted(&values);
        let p = h.estimate_range(&Bounds::eq(1.0));
        assert!(p.lower <= 3 && 3 <= p.upper, "{p:?}");
        h.note_insert(2.5, false);
        h.note_remove(3.0, false);
        assert_eq!(h.total(), 5);
        let all = h.estimate_range(&Bounds::all());
        assert_eq!(all, CardinalityEstimate::exact(5));
    }

    #[test]
    fn value_histogram_rebuild_trigger() {
        let values: Vec<f64> = (0..64).map(f64::from).collect();
        let mut h = ValueHistogram::from_sorted(&values);
        assert!(!h.needs_rebuild());
        for i in 0..80 {
            h.note_insert(1000.0 + f64::from(i), false);
        }
        assert!(h.needs_rebuild());
    }

    #[test]
    fn qgram_table_counts_round_trip() {
        let mut t = QGramTable::default();
        t.rebuild_from_sorted([1u32, 1, 2]);
        assert_eq!(t.gram_count(1), 2);
        assert_eq!(t.distinct_grams(), 2);
        t.note_add(1);
        t.note_remove(2);
        assert_eq!(t.gram_count(1), 3);
        assert_eq!(t.gram_count(2), 0);
        assert_eq!(t.total_postings(), 3);
    }

    #[test]
    fn contains_estimate_uses_rarest_gram() {
        let mut t = QGramTable::default();
        // "abc" = one trigram; "bcd" another.
        let abc = crate::substring::trigrams("abc")
            .into_iter()
            .next()
            .unwrap();
        for _ in 0..5 {
            t.note_add(abc);
        }
        let est = t.estimate_contains("abc", 4096, 100);
        assert_eq!(est.upper, 5);
        // A needle with an unseen trigram is provably empty.
        assert_eq!(
            t.estimate_contains("abcd", 4096, 100),
            CardinalityEstimate::empty()
        );
        // Short needles carry no filter.
        assert_eq!(t.estimate_contains("ab", 4096, 100).upper, 100);
    }
}
