//! # xvi-index — generic and updatable XML value indices
//!
//! The paper's core contribution, assembled from the substrates:
//!
//! * [`IndexManager`] — owns all value indices over one document:
//!   * the **string equi-lookup index** — every text, element and
//!     attribute node's string-value hash (`xvi-hash`) in a B+tree,
//!   * one **typed range-lookup index** per configured [`XmlType`] —
//!     FSM states for non-rejected nodes plus a clustered B+tree on
//!     the typed values of *complete* nodes (`xvi-fsm`, `xvi-btree`).
//! * [`create`] — the single-pass creation algorithm (paper Figure 7):
//!   one depth-first traversal annotates every node and fills all
//!   configured indices simultaneously.
//! * index maintenance (paper Figure 8) — value updates, subtree
//!   deletion and subtree insertion re-derive only the annotations of
//!   the updated nodes' ancestors, combining the *stored* hashes and
//!   states of their immediate children instead of re-reading any
//!   character data.
//! * [`txn`] — the commutative deferred-maintenance commit protocol of
//!   §5.1, possible because the hash combination function `C` is
//!   associative and updates commute.
//! * [`service`] — the sharded, multi-document [`IndexService`]: the
//!   §5.1 argument scaled out to many documents, with a group-commit
//!   pipeline (non-blocking [`IndexService::submit`] returning a
//!   [`CommitTicket`]) coalescing concurrent write batches and
//!   lock-free snapshot reads.
//! * [`lookup`] — the unified query surface: one typed [`Lookup`]
//!   request covers equality, range, typed, substring, wildcard and
//!   XPath lookups, evaluated by a single generic `query` entry point
//!   at every layer.
//! * [`query`] — a mini-XPath evaluator demonstrating how the indices
//!   accelerate the paper's motivating queries, with a full-scan
//!   fallback as the baseline and an [`Explanation`] rendering of the
//!   chosen plan.
//!
//! Indices cover the **whole document** — no path or type
//! configuration is required (the paper's "self-tuning" property) —
//! and respect XQuery mixed-content semantics: `<age><decades>4</decades>2<years/></age>`
//! is found both by an equality lookup for `"42"` and by a numeric
//! range scan containing 42.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
pub mod create;
mod error;
pub mod lookup;
mod manager;
mod persist;
pub mod query;
pub mod service;
pub mod stats;
mod string_index;
pub mod substring;
pub mod txn;
mod typed_index;
mod util;
mod wal;

pub use config::IndexConfig;
pub use error::IndexError;
pub use lookup::{Bounds, Lookup, QueryResult};
pub use manager::{IndexManager, IndexStats};
pub use query::{Explanation, Plan, PlannerConfig, PredicateReport, Probe, Query, QueryEngine};
pub use service::{
    CommitReceipt, CommitTicket, DocId, DocSnapshot, Durability, IndexService, ServiceConfig,
    ServiceSnapshot,
};
pub use stats::{
    CardinalityEstimate, EquiHistogram, QGramTable, RootSummary, Statistics, ValueHistogram,
};
pub use string_index::StringIndex;
pub use substring::SubstringIndex;
pub use txn::{Transaction, TransactionalStore};
pub use typed_index::TypedIndex;
pub use util::OrdF64;

// Re-exports so downstream users need only this crate.
pub use xvi_fsm::{StateId, TypedValue, XmlType};
pub use xvi_hash::HashValue;
pub use xvi_obs::{Obs, Stage, Trace};
pub use xvi_xml::{Document, NodeId};
