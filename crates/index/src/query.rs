//! A mini-XPath evaluator exercising the indices.
//!
//! Supports the query shapes the paper motivates (§1):
//!
//! ```text
//! //person[.//age = 42]
//! //person[first/text() = "Arthur"]
//! //*[data(name) = "ArthurDent"]
//! /site/people/person[@id = "person0"]
//! //item[price < 50]
//! //person[.//age = 42][.//education = "Graduate School"]
//! ```
//!
//! Grammar (recursive descent, no external crates):
//!
//! ```text
//! query     := ( '/' | '//' ) step ( ( '/' | '//' ) step )*
//! step      := test predicate*
//! test      := NAME | '*' | 'text()' | '@' NAME
//! predicate := '[' relpath ( op literal )? ']'
//! relpath   := '.' | 'data(' relpath ')' | ( './/' | './' | '' ) step ( ('/'|'//') step )*
//! op        := '=' | '!=' | '<' | '<=' | '>' | '>='
//! literal   := '"' chars '"' | "'" chars "'" | number
//! ```
//!
//! Two evaluators are provided: [`QueryEngine::evaluate_scan`] walks
//! the tree (the baseline), while [`QueryEngine::evaluate`] runs a
//! **cost-based plan**: every comparison predicate on every step is a
//! candidate for lowering into a value [`Lookup`], the candidates are
//! ranked by the maintained per-index statistics
//! ([`IndexManager::estimate`]), and the cheapest one (or the
//! intersection of two probes on the same step, or a scan when nothing
//! is selective) drives evaluation — value first, structure second,
//! with the *most selective* value chosen.

use std::collections::HashSet;

use xvi_fsm::XmlType;
use xvi_obs::{Stage, Trace};
use xvi_xml::{Document, NodeId, NodeKind};

use crate::error::IndexError;
use crate::lookup::{Bounds, Lookup};
use crate::manager::IndexManager;
use crate::stats::CardinalityEstimate;

/// Navigation axis of a step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// `/step`
    Child,
    /// `//step`
    Descendant,
    /// `.` in predicates
    SelfAxis,
}

/// Node test of a step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Test {
    /// An element name test.
    Name(String),
    /// `*`: any element.
    Any,
    /// `text()`: any text node.
    Text,
    /// `@name`: an attribute.
    Attr(String),
}

/// Comparison operators in predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A literal on the right-hand side of a comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// A quoted string → string-value equality semantics.
    Str(String),
    /// A number → double semantics (XQuery general comparison on
    /// untyped data).
    Num(f64),
}

/// `[ relpath op literal ]` or bare `[ relpath ]` (existence).
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// Relative path selecting the compared nodes ('.'-anchored).
    pub path: Vec<Step>,
    /// Comparison; `None` = existence test.
    pub cmp: Option<(CmpOp, Literal)>,
}

/// One location step.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// How the step navigates from its context.
    pub axis: Axis,
    /// Which nodes it selects.
    pub test: Test,
    /// Value predicates, all of which must hold (`[a][b]`).
    pub preds: Vec<Predicate>,
}

/// A parsed query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The location steps, anchored at the document node.
    pub steps: Vec<Step>,
}

/// One plannable index probe: a predicate (addressed by step and
/// predicate position) lowered into a value [`Lookup`], with its
/// statistics-based cardinality estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct Probe {
    /// The lowered value lookup.
    pub lookup: Lookup,
    /// Index of the step carrying the predicate.
    pub step: usize,
    /// Index of the predicate within the step's `preds`.
    pub pred: usize,
    /// Estimated candidate cardinality of the probe.
    pub estimate: CardinalityEstimate,
}

/// How [`QueryEngine::evaluate`] will serve a query, chosen
/// cost-based from the per-index statistics.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// Probe one index with the most selective lowered predicate, then
    /// reverse path matching from the candidates.
    Index(Probe),
    /// Probe two indexes for two predicates of the *same* step,
    /// intersect the anchor candidate sets, then reverse path matching
    /// on the (smaller) intersection.
    Intersect(Probe, Probe),
    /// Full document scan — no predicate is covered, or none is
    /// selective enough to beat the scan.
    Scan,
}

impl Plan {
    /// The primary probe's lookup, if the plan probes an index.
    pub fn lookup(&self) -> Option<&Lookup> {
        match self {
            Plan::Index(p) | Plan::Intersect(p, _) => Some(&p.lookup),
            Plan::Scan => None,
        }
    }
}

impl std::fmt::Display for Plan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Plan::Index(p) => write!(
                f,
                "index probe {} at step {} (est {}), then reverse path match",
                p.lookup,
                p.step + 1,
                p.estimate
            ),
            Plan::Intersect(a, b) => write!(
                f,
                "intersect {} (est {}) with {} (est {}) at step {}, then reverse path match",
                a.lookup,
                a.estimate,
                b.lookup,
                b.estimate,
                a.step + 1
            ),
            Plan::Scan => write!(f, "full document scan"),
        }
    }
}

/// Cost-model knobs of the planner.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannerConfig {
    /// Scan threshold: fall back to [`Plan::Scan`] when even the
    /// cheapest probe's estimated candidate count exceeds this
    /// fraction of the document's (approximate) node population —
    /// verifying that many candidates costs more than one walk over
    /// the tree.
    pub scan_fraction: f64,
    /// Consider intersecting a second probe only when the best probe
    /// still expects more candidates than this.
    pub intersect_min: usize,
    /// A second probe joins an intersection only if its estimate is
    /// within this factor of the best probe's (probing a wildly less
    /// selective index costs more than it prunes).
    pub intersect_factor: f64,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            scan_fraction: 0.5,
            intersect_min: 64,
            intersect_factor: 8.0,
        }
    }
}

/// One enumerated candidate predicate in an [`Explanation`]: its
/// lowered lookup, the statistics-based estimate, and the *actual*
/// candidate count the probe produced — mis-estimates are visible as
/// the gap between the two.
#[derive(Debug, Clone, PartialEq)]
pub struct PredicateReport {
    /// Index of the step carrying the predicate.
    pub step: usize,
    /// Index of the predicate within the step.
    pub pred: usize,
    /// The lowered value lookup.
    pub lookup: Lookup,
    /// Estimated candidate cardinality (what the planner ranked by).
    pub estimate: CardinalityEstimate,
    /// Actual candidate count of executing the probe.
    pub actual: usize,
    /// Whether the plan chose this probe.
    pub chosen: bool,
}

impl std::fmt::Display for PredicateReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "predicate {} at step {}: est {}, actual {}{}",
            self.lookup,
            self.step + 1,
            self.estimate,
            self.actual,
            if self.chosen { " (chosen)" } else { "" }
        )
    }
}

/// The rendered execution plan of one query — what
/// [`QueryEngine::explain`] returns: the chosen plan, every candidate
/// predicate with estimated vs. actual cardinality, how many
/// candidates the chosen probe(s) produced, and the final result
/// count.
#[derive(Debug, Clone, PartialEq)]
pub struct Explanation {
    /// The chosen plan.
    pub plan: Plan,
    /// Every candidate predicate the planner enumerated, with
    /// estimated and actual cardinalities.
    pub predicates: Vec<PredicateReport>,
    /// Candidates the chosen probe(s) returned (`None` when the plan
    /// scans; the sum of both probes for an intersection).
    pub probed: Option<usize>,
    /// Final result count after path matching.
    pub results: usize,
}

impl std::fmt::Display for Explanation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.probed {
            Some(c) => write!(
                f,
                "plan: {} — {} candidate(s), {} result(s)",
                self.plan, c, self.results
            )?,
            None => write!(f, "plan: {} — {} result(s)", self.plan, self.results)?,
        }
        for p in &self.predicates {
            write!(f, "\n  {p}")?;
        }
        Ok(())
    }
}

/// Parser + evaluator.
#[derive(Debug, Default)]
pub struct QueryEngine;

impl QueryEngine {
    /// Parses a query string.
    pub fn parse(input: &str) -> Result<Query, IndexError> {
        Parser {
            chars: input.trim().as_bytes(),
            pos: 0,
        }
        .query()
    }

    /// Lowers one predicate into a value [`Lookup`], when its shape
    /// allows it and a configured index covers it.
    fn lower_predicate(idx: &IndexManager, pred: &Predicate) -> Option<Lookup> {
        if pred.path.iter().any(|s| !s.preds.is_empty()) {
            return None;
        }
        match &pred.cmp {
            Some((CmpOp::Eq, Literal::Str(s))) if idx.string_index().is_some() => {
                Some(Lookup::Equi(s.clone()))
            }
            Some((op, Literal::Num(v))) if idx.typed_index(XmlType::Double).is_some() => {
                use std::ops::Bound::*;
                let (lo, hi) = match op {
                    CmpOp::Eq => (Included(*v), Included(*v)),
                    CmpOp::Lt => (Unbounded, Excluded(*v)),
                    CmpOp::Le => (Unbounded, Included(*v)),
                    CmpOp::Gt => (Excluded(*v), Unbounded),
                    CmpOp::Ge => (Included(*v), Unbounded),
                    CmpOp::Ne => return None,
                };
                Some(Lookup::RangeF64(Bounds { lo, hi }))
            }
            _ => None,
        }
    }

    /// Enumerates every plannable probe of a query: each comparison
    /// predicate on each step that lowers into a covered [`Lookup`],
    /// with its cardinality estimate from the maintained statistics.
    pub fn candidate_probes(idx: &IndexManager, query: &Query) -> Vec<Probe> {
        let mut probes = Vec::new();
        for (si, step) in query.steps.iter().enumerate() {
            for (pi, pred) in step.preds.iter().enumerate() {
                let Some(lookup) = Self::lower_predicate(idx, pred) else {
                    continue;
                };
                let Ok(estimate) = idx.estimate(&lookup) else {
                    continue;
                };
                probes.push(Probe {
                    lookup,
                    step: si,
                    pred: pi,
                    estimate,
                });
            }
        }
        probes
    }

    /// Chooses the execution plan for a query with the default
    /// [`PlannerConfig`] — see [`QueryEngine::plan_with`].
    pub fn plan(idx: &IndexManager, query: &Query) -> Plan {
        Self::plan_with(idx, query, &PlannerConfig::default())
    }

    /// Chooses the execution plan cost-based: enumerate every
    /// candidate probe ([`QueryEngine::candidate_probes`]), rank them
    /// by estimated cardinality, and emit
    ///
    /// * [`Plan::Scan`] when no predicate is covered or even the
    ///   cheapest probe exceeds the scan threshold,
    /// * [`Plan::Intersect`] when a second probe on the same step is
    ///   close enough in selectivity to prune the anchor set further,
    /// * [`Plan::Index`] with the most selective probe otherwise.
    pub fn plan_with(idx: &IndexManager, query: &Query, cfg: &PlannerConfig) -> Plan {
        let mut probes = Self::candidate_probes(idx, query);
        if probes.is_empty() {
            return Plan::Scan;
        }
        probes.sort_by_key(|p| p.estimate.estimate);
        let scan_threshold = (cfg.scan_fraction * idx.approx_node_count() as f64) as usize;
        let best = probes[0].clone();
        if best.estimate.estimate > scan_threshold {
            return Plan::Scan;
        }
        if best.estimate.estimate >= cfg.intersect_min {
            let partner = probes[1..].iter().find(|p| {
                p.step == best.step
                    && p.pred != best.pred
                    && p.estimate.estimate
                        <= (best.estimate.estimate as f64 * cfg.intersect_factor) as usize
                    && p.estimate.estimate <= scan_threshold
            });
            if let Some(second) = partner {
                return Plan::Intersect(best, second.clone());
            }
        }
        Plan::Index(best)
    }

    /// Estimates the evaluation *work* of a whole query — the chosen
    /// probe's candidate estimate, or the document population for a
    /// scan. This is what `IndexManager::estimate` reports for
    /// [`Lookup::XPath`] requests.
    ///
    /// The returned bounds are deliberately vacuous
    /// ([`CardinalityEstimate::unbounded`]): unlike a value probe, a
    /// query's *result* count is not bounded by any probe's candidate
    /// count — reverse anchoring and trailing steps can both fan out —
    /// so no finite `upper` would be sound.
    pub fn estimate_query(idx: &IndexManager, query: &Query) -> CardinalityEstimate {
        match Self::plan(idx, query) {
            Plan::Index(p) => CardinalityEstimate::unbounded(p.estimate.estimate),
            Plan::Intersect(a, b) => {
                CardinalityEstimate::unbounded(a.estimate.estimate.min(b.estimate.estimate))
            }
            Plan::Scan => CardinalityEstimate::unbounded(idx.approx_node_count()),
        }
    }

    /// Index-accelerated evaluation under the default planner
    /// configuration; falls back to a scan when no index applies.
    /// Results are in document order, deduplicated.
    pub fn evaluate(doc: &Document, idx: &IndexManager, query: &Query) -> Vec<NodeId> {
        Self::evaluate_with_plan(doc, idx, query, &Self::plan(idx, query))
    }

    /// Evaluates `query` under an explicitly chosen [`Plan`] (normally
    /// from [`QueryEngine::plan_with`]; benchmarks use it to compare
    /// plan shapes on identical queries). A probe whose lookup the
    /// index cannot serve falls back to the scan plan.
    pub fn evaluate_with_plan(
        doc: &Document,
        idx: &IndexManager,
        query: &Query,
        plan: &Plan,
    ) -> Vec<NodeId> {
        Self::evaluate_with_plan_probed(doc, idx, query, plan, None, &mut None)
    }

    /// [`QueryEngine::evaluate_with_plan`] with observability taps:
    /// when `trace` is set, the index-probe and verify-walk phases are
    /// recorded as [`Stage::Probe`] / [`Stage::VerifyWalk`] stage
    /// samples (a plan that scans records [`Stage::Execute`] instead);
    /// when `probed` is `Some`, the chosen probes' candidate counts
    /// are accumulated into it — the *actual* cardinality the service
    /// compares against the planner's estimate for drift metrics.
    pub fn evaluate_with_plan_probed(
        doc: &Document,
        idx: &IndexManager,
        query: &Query,
        plan: &Plan,
        trace: Option<&Trace>,
        probed: &mut Option<usize>,
    ) -> Vec<NodeId> {
        // A probe that does not address a predicate of *this* query —
        // out-of-range indexes, a lookup that is not the addressed
        // predicate's own lowering, or an intersection whose probes
        // sit on different steps — cannot be evaluated soundly; treat
        // it like an unservable lookup and scan instead of panicking
        // or silently returning the wrong candidates' matches.
        let addresses_query = |p: &Probe| {
            query
                .steps
                .get(p.step)
                .and_then(|s| s.preds.get(p.pred))
                .and_then(|pred| Self::lower_predicate(idx, pred))
                .is_some_and(|lowered| lowered == p.lookup)
        };
        let valid = match plan {
            Plan::Scan => true,
            Plan::Index(p) => addresses_query(p),
            Plan::Intersect(a, b) => a.step == b.step && addresses_query(a) && addresses_query(b),
        };
        if !valid {
            return Self::scan_traced(doc, query, trace);
        }
        match plan {
            Plan::Scan => Self::scan_traced(doc, query, trace),
            Plan::Index(p) => {
                let t0 = trace.map(|t| t.now_ns());
                let candidates = idx.query(doc, &p.lookup);
                if let (Some(t), Some(t0)) = (trace, t0) {
                    t.record_stage(Stage::Probe, t0);
                }
                let Ok(candidates) = candidates else {
                    return Self::scan_traced(doc, query, trace);
                };
                if let Some(n) = probed.as_mut() {
                    *n += candidates.len();
                }
                let t0 = trace.map(|t| t.now_ns());
                let anchors = Self::anchors_of(doc, query, p.step, p.pred, &candidates);
                let out = Self::finish_from_anchors(doc, query, p.step, &[p.pred], anchors);
                if let (Some(t), Some(t0)) = (trace, t0) {
                    t.record_stage(Stage::VerifyWalk, t0);
                }
                out
            }
            Plan::Intersect(a, b) => {
                let t0 = trace.map(|t| t.now_ns());
                let probes = (idx.query(doc, &a.lookup), idx.query(doc, &b.lookup));
                if let (Some(t), Some(t0)) = (trace, t0) {
                    t.record_stage(Stage::Probe, t0);
                }
                let (Ok(ca), Ok(cb)) = probes else {
                    return Self::scan_traced(doc, query, trace);
                };
                if let Some(n) = probed.as_mut() {
                    *n += ca.len() + cb.len();
                }
                let t0 = trace.map(|t| t.now_ns());
                let anchors_a = Self::anchors_of(doc, query, a.step, a.pred, &ca);
                let anchors_b = Self::anchors_of(doc, query, b.step, b.pred, &cb);
                let anchors: HashSet<NodeId> =
                    anchors_a.intersection(&anchors_b).copied().collect();
                let out = Self::finish_from_anchors(doc, query, a.step, &[a.pred, b.pred], anchors);
                if let (Some(t), Some(t0)) = (trace, t0) {
                    t.record_stage(Stage::VerifyWalk, t0);
                }
                out
            }
        }
    }

    /// [`QueryEngine::evaluate_scan`] recorded as one
    /// [`Stage::Execute`] sample when traced.
    fn scan_traced(doc: &Document, query: &Query, trace: Option<&Trace>) -> Vec<NodeId> {
        let t0 = trace.map(|t| t.now_ns());
        let out = Self::evaluate_scan(doc, query);
        if let (Some(t), Some(t0)) = (trace, t0) {
            t.record_stage(Stage::Execute, t0);
        }
        out
    }

    /// Explains how [`QueryEngine::evaluate`] serves `query`: the
    /// chosen plan, estimated vs. actual cardinality for **every**
    /// candidate predicate, the chosen probe's candidate count, and
    /// the final result count.
    ///
    /// ```
    /// use xvi_index::{Document, IndexConfig, IndexManager, QueryEngine};
    ///
    /// let doc = Document::parse("<r><p><age>42</age></p><p><age>7</age></p></r>").unwrap();
    /// let idx = IndexManager::build(&doc, IndexConfig::default());
    /// let q = QueryEngine::parse("//p[age = 42]").unwrap();
    /// let ex = QueryEngine::explain(&doc, &idx, &q);
    /// assert!(ex.to_string().contains("index probe"));
    /// assert_eq!(ex.results, 1);
    /// ```
    pub fn explain(doc: &Document, idx: &IndexManager, query: &Query) -> Explanation {
        Self::explain_with(doc, idx, query, &PlannerConfig::default())
    }

    /// [`QueryEngine::explain`] under an explicit [`PlannerConfig`].
    pub fn explain_with(
        doc: &Document,
        idx: &IndexManager,
        query: &Query,
        cfg: &PlannerConfig,
    ) -> Explanation {
        let plan = Self::plan_with(idx, query, cfg);
        let chosen = |step: usize, pred: usize| match &plan {
            Plan::Index(p) => p.step == step && p.pred == pred,
            Plan::Intersect(a, b) => {
                (a.step == step && a.pred == pred) || (b.step == step && b.pred == pred)
            }
            Plan::Scan => false,
        };
        let mut probed = match plan {
            Plan::Scan => None,
            _ => Some(0),
        };
        let predicates: Vec<PredicateReport> = Self::candidate_probes(idx, query)
            .into_iter()
            .map(|p| {
                let actual = idx
                    .query(doc, &p.lookup)
                    .map(|c| c.len())
                    .unwrap_or_default();
                let chosen = chosen(p.step, p.pred);
                if chosen {
                    if let Some(total) = probed.as_mut() {
                        *total += actual;
                    }
                }
                PredicateReport {
                    step: p.step,
                    pred: p.pred,
                    lookup: p.lookup,
                    estimate: p.estimate,
                    actual,
                    chosen,
                }
            })
            .collect();
        let results = Self::evaluate_with_plan(doc, idx, query, &plan).len();
        Explanation {
            plan,
            predicates,
            probed,
            results,
        }
    }

    /// Pure tree-walk evaluation (the baseline the index beats).
    pub fn evaluate_scan(doc: &Document, query: &Query) -> Vec<NodeId> {
        let result = Self::forward_eval(doc, vec![doc.document_node()], &query.steps);
        Self::in_doc_order(doc, result.into_iter().collect())
    }

    // ----- scan machinery ----------------------------------------------------

    /// Applies `steps` (with their predicates) forward from a context
    /// set, exactly as the scan evaluator walks the outer path.
    fn forward_eval(doc: &Document, contexts: Vec<NodeId>, steps: &[Step]) -> Vec<NodeId> {
        let mut context = contexts;
        for step in steps {
            let mut next = Vec::new();
            for &c in &context {
                Self::apply_step(doc, c, step, &mut next);
            }
            let mut pass = Vec::new();
            for n in next {
                if step.preds.iter().all(|p| Self::eval_predicate(doc, n, p)) {
                    pass.push(n);
                }
            }
            context = pass;
        }
        context
    }

    fn apply_step(doc: &Document, ctx: NodeId, step: &Step, out: &mut Vec<NodeId>) {
        match (step.axis, &step.test) {
            (Axis::SelfAxis, _) => {
                if Self::matches_test(doc, ctx, &step.test) {
                    out.push(ctx);
                }
            }
            (Axis::Child, Test::Attr(name)) => {
                out.extend(doc.attribute(ctx, name));
            }
            (Axis::Child, _) => {
                out.extend(
                    doc.children(ctx)
                        .filter(|&n| Self::matches_test(doc, n, &step.test)),
                );
            }
            (Axis::Descendant, Test::Attr(name)) => {
                for n in doc.descendants_or_self(ctx) {
                    out.extend(doc.attribute(n, name));
                }
            }
            (Axis::Descendant, _) => {
                out.extend(
                    doc.descendants(ctx)
                        .filter(|&n| Self::matches_test(doc, n, &step.test)),
                );
            }
        }
    }

    fn matches_test(doc: &Document, n: NodeId, test: &Test) -> bool {
        match test {
            Test::Any => matches!(doc.kind(n), NodeKind::Element(_)),
            Test::Name(name) => {
                matches!(doc.kind(n), NodeKind::Element(_)) && doc.name(n) == Some(name)
            }
            Test::Text => matches!(doc.kind(n), NodeKind::Text(_)),
            Test::Attr(name) => {
                matches!(doc.kind(n), NodeKind::Attribute { .. }) && doc.name(n) == Some(name)
            }
        }
    }

    fn eval_predicate(doc: &Document, ctx: NodeId, pred: &Predicate) -> bool {
        let selected = Self::forward_eval(doc, vec![ctx], &pred.path);
        match &pred.cmp {
            None => !selected.is_empty(),
            Some((op, lit)) => selected.iter().any(|&m| Self::compare(doc, m, *op, lit)),
        }
    }

    /// XQuery-flavoured general comparison of one node against a
    /// literal: strings compare on the XDM string value, numbers on
    /// the double cast of the string value (non-castable ⇒ false).
    fn compare(doc: &Document, m: NodeId, op: CmpOp, lit: &Literal) -> bool {
        match lit {
            Literal::Str(s) => {
                let v = doc.string_value(m);
                match op {
                    CmpOp::Eq => v == *s,
                    CmpOp::Ne => v != *s,
                    // Lexicographic order on strings, as XPath does for
                    // string comparisons.
                    CmpOp::Lt => v < *s,
                    CmpOp::Le => v <= *s,
                    CmpOp::Gt => v > *s,
                    CmpOp::Ge => v >= *s,
                }
            }
            Literal::Num(x) => {
                let Some(v) = XmlType::Double.cast(&doc.string_value(m)) else {
                    return false;
                };
                match op {
                    CmpOp::Eq => v == *x,
                    CmpOp::Ne => v != *x,
                    CmpOp::Lt => v < *x,
                    CmpOp::Le => v <= *x,
                    CmpOp::Gt => v > *x,
                    CmpOp::Ge => v >= *x,
                }
            }
        }
    }

    // ----- index machinery ----------------------------------------------------

    /// Given nodes found *by value* for the probe at `(step_idx,
    /// pred_idx)`, derive the **anchor candidates**: nodes the probed
    /// step could select such that the predicate path reaches a
    /// candidate. Anchors are not yet verified against the rest of the
    /// query.
    fn anchors_of(
        doc: &Document,
        query: &Query,
        step_idx: usize,
        pred_idx: usize,
        candidates: &[NodeId],
    ) -> HashSet<NodeId> {
        let step = &query.steps[step_idx];
        let pred = &step.preds[pred_idx];
        let mut anchors = HashSet::new();
        for &m in candidates {
            for ctx in Self::reverse_contexts(doc, m, &pred.path) {
                if Self::matches_test(doc, ctx, &step.test) {
                    anchors.insert(ctx);
                }
            }
        }
        anchors
    }

    /// Verifies anchors against the query prefix (absolute path up to
    /// and including the probed step), then evaluates the remaining
    /// steps forward from the survivors.
    ///
    /// The probed predicates (`skip_preds`, positions within the
    /// anchor step) are **not** re-evaluated: their anchors came from
    /// index candidates the probe already value-verified and
    /// reverse-matched through the predicate path, so a per-anchor
    /// tree walk would only repeat that work. Every other predicate —
    /// on the anchor step and on every prefix step — is checked.
    fn finish_from_anchors(
        doc: &Document,
        query: &Query,
        step_idx: usize,
        skip_preds: &[usize],
        anchors: HashSet<NodeId>,
    ) -> Vec<NodeId> {
        let step = &query.steps[step_idx];
        // Prefix with the anchor step's predicates stripped; the ones
        // not covered by the probes are checked directly below.
        let mut prefix = query.steps[..=step_idx].to_vec();
        prefix[step_idx].preds = Vec::new();
        let verified: Vec<NodeId> = anchors
            .into_iter()
            .filter(|&ctx| {
                step.preds
                    .iter()
                    .enumerate()
                    .all(|(i, p)| skip_preds.contains(&i) || Self::eval_predicate(doc, ctx, p))
                    && Self::matches_prefix(doc, ctx, &prefix)
            })
            .collect();
        let result = Self::forward_eval(doc, verified, &query.steps[step_idx + 1..]);
        Self::in_doc_order(doc, result.into_iter().collect())
    }

    /// All nodes `c` such that evaluating `steps` from `c` selects
    /// `m`. Each reverse position also enforces the step's predicates,
    /// so the returned contexts satisfy the whole sub-path, not just
    /// its axis/test skeleton.
    fn reverse_contexts(doc: &Document, m: NodeId, steps: &[Step]) -> Vec<NodeId> {
        let mut cur = vec![m];
        for step in steps.iter().rev() {
            let mut prev = Vec::new();
            for &x in &cur {
                if !Self::matches_test_or_self(doc, x, step) {
                    continue;
                }
                if !step.preds.iter().all(|p| Self::eval_predicate(doc, x, p)) {
                    continue;
                }
                match step.axis {
                    Axis::SelfAxis => prev.push(x),
                    Axis::Child => prev.extend(doc.parent(x)),
                    Axis::Descendant => {
                        let mut p = doc.parent(x);
                        while let Some(a) = p {
                            prev.push(a);
                            p = doc.parent(a);
                        }
                    }
                }
            }
            prev.sort();
            prev.dedup();
            cur = prev;
        }
        cur
    }

    fn matches_test_or_self(doc: &Document, x: NodeId, step: &Step) -> bool {
        match (step.axis, &step.test) {
            // `.` matches whatever node it is.
            (Axis::SelfAxis, Test::Any) => true,
            _ => Self::matches_test(doc, x, &step.test),
        }
    }

    /// Whether `node` is selected by the absolute path `steps`
    /// (anchored at the document node), predicates included.
    fn matches_prefix(doc: &Document, node: NodeId, steps: &[Step]) -> bool {
        Self::reverse_contexts(doc, node, steps).contains(&doc.document_node())
    }

    /// Result sets at most this large are ordered by comparing
    /// root-path sibling ranks (cost proportional to the involved
    /// ancestor chains); larger sets amortise one full
    /// [`Document::pre_post_view`] pass instead.
    const SMALL_ORDER: usize = 256;

    fn in_doc_order(doc: &Document, nodes: HashSet<NodeId>) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = nodes.into_iter().collect();
        if v.len() > Self::SMALL_ORDER {
            let view = doc.pre_post_view();
            // Attributes have no pre rank; order them just after their
            // owner element by (owner pre, attribute arena index).
            v.sort_by_key(|&n| match view.pre(n) {
                Some(p) => (p, 0usize),
                None => (
                    doc.parent(n)
                        .and_then(|p| view.pre(p))
                        .unwrap_or(usize::MAX),
                    n.index() + 1,
                ),
            });
            return v;
        }
        // Small result set: avoid the O(document) pre/post pass. Each
        // node's sort key is its chain of sibling ranks from the root
        // (lexicographic order on those chains *is* document order);
        // sibling ranks are computed once per involved parent.
        let mut ranks: std::collections::HashMap<NodeId, std::collections::HashMap<NodeId, i64>> =
            std::collections::HashMap::new();
        let mut rank_under = |parent: NodeId, child: NodeId| -> i64 {
            *ranks
                .entry(parent)
                .or_insert_with(|| {
                    doc.children(parent)
                        .enumerate()
                        .map(|(i, c)| (c, i as i64))
                        .collect()
                })
                .get(&child)
                .expect("child listed under its parent")
        };
        let keys: std::collections::HashMap<NodeId, Vec<i64>> = v
            .iter()
            .map(|&n| {
                // An attribute sorts right after its owner element and
                // before the owner's children: a trailing negative
                // component keyed by arena index does both.
                let (mut cur, mut key) = match doc.kind(n) {
                    NodeKind::Attribute { .. } => (
                        doc.parent(n).expect("attributes have an owner"),
                        vec![i64::MIN + n.index() as i64],
                    ),
                    _ => (n, Vec::new()),
                };
                while let Some(p) = doc.parent(cur) {
                    key.push(rank_under(p, cur));
                    cur = p;
                }
                key.reverse();
                (n, key)
            })
            .collect();
        v.sort_by(|a, b| keys[a].cmp(&keys[b]));
        v
    }
}

// ----- parser ------------------------------------------------------------

struct Parser<'a> {
    chars: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, IndexError> {
        Err(IndexError::QuerySyntax(format!(
            "{} (at offset {})",
            msg.into(),
            self.pos
        )))
    }

    fn peek(&self) -> Option<u8> {
        self.chars.get(self.pos).copied()
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.chars[self.pos..].starts_with(s.as_bytes()) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t')) {
            self.pos += 1;
        }
    }

    fn query(&mut self) -> Result<Query, IndexError> {
        let mut steps = Vec::new();
        loop {
            self.skip_ws();
            let axis = if self.eat("//") {
                Axis::Descendant
            } else if self.eat("/") {
                Axis::Child
            } else if steps.is_empty() {
                return self.err("queries start with '/' or '//'");
            } else {
                break;
            };
            steps.push(self.step(axis)?);
            if self.pos >= self.chars.len() {
                break;
            }
        }
        self.skip_ws();
        if self.pos != self.chars.len() {
            return self.err("trailing input");
        }
        if steps.is_empty() {
            return self.err("empty query");
        }
        Ok(Query { steps })
    }

    fn step(&mut self, axis: Axis) -> Result<Step, IndexError> {
        let test = self.test()?;
        let mut preds = Vec::new();
        loop {
            self.skip_ws();
            if !self.eat("[") {
                break;
            }
            preds.push(self.predicate()?);
            self.skip_ws();
            if !self.eat("]") {
                return self.err("expected ']'");
            }
        }
        Ok(Step { axis, test, preds })
    }

    fn test(&mut self) -> Result<Test, IndexError> {
        self.skip_ws();
        if self.eat("*") {
            return Ok(Test::Any);
        }
        if self.eat("@") {
            return Ok(Test::Attr(self.name()?));
        }
        let name = self.name()?;
        if name == "text" && self.eat("()") {
            return Ok(Test::Text);
        }
        Ok(Test::Name(name))
    }

    fn name(&mut self) -> Result<String, IndexError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return self.err("expected a name");
        }
        Ok(String::from_utf8_lossy(&self.chars[start..self.pos]).into_owned())
    }

    fn predicate(&mut self) -> Result<Predicate, IndexError> {
        self.skip_ws();
        let wrapped_in_data = self.eat("data(") || self.eat("fn:data(");
        let path = self.rel_path()?;
        if wrapped_in_data {
            self.skip_ws();
            if !self.eat(")") {
                return self.err("expected ')' after data(…)");
            }
        }
        self.skip_ws();
        let cmp = if let Some(op) = self.cmp_op() {
            self.skip_ws();
            Some((op, self.literal()?))
        } else {
            None
        };
        Ok(Predicate { path, cmp })
    }

    fn rel_path(&mut self) -> Result<Vec<Step>, IndexError> {
        self.skip_ws();
        let mut steps = Vec::new();
        // Leading context marker.
        if self.eat(".//") {
            steps.push(self.step(Axis::Descendant)?);
        } else if self.eat("./") {
            steps.push(self.step(Axis::Child)?);
        } else if self.peek() == Some(b'.') {
            self.pos += 1;
            // Bare '.': the context node itself.
            return Ok(vec![Step {
                axis: Axis::SelfAxis,
                test: Test::Any,
                preds: Vec::new(),
            }]);
        } else {
            steps.push(self.step(Axis::Child)?);
        }
        loop {
            if self.eat("//") {
                steps.push(self.step(Axis::Descendant)?);
            } else if self.eat("/") {
                steps.push(self.step(Axis::Child)?);
            } else {
                break;
            }
        }
        Ok(steps)
    }

    fn cmp_op(&mut self) -> Option<CmpOp> {
        self.skip_ws();
        for (tok, op) in [
            ("!=", CmpOp::Ne),
            ("<=", CmpOp::Le),
            (">=", CmpOp::Ge),
            ("=", CmpOp::Eq),
            ("<", CmpOp::Lt),
            (">", CmpOp::Gt),
        ] {
            if self.eat(tok) {
                return Some(op);
            }
        }
        None
    }

    fn literal(&mut self) -> Result<Literal, IndexError> {
        self.skip_ws();
        if let Some(q @ (b'"' | b'\'')) = self.peek() {
            self.pos += 1;
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == q {
                    let s = String::from_utf8_lossy(&self.chars[start..self.pos]).into_owned();
                    self.pos += 1;
                    return Ok(Literal::Str(s));
                }
                self.pos += 1;
            }
            return self.err("unterminated string literal");
        }
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'.' | b'-' | b'+' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return self.err("expected a literal");
        }
        let text = std::str::from_utf8(&self.chars[start..self.pos]).expect("ascii");
        match text.parse::<f64>() {
            Ok(v) => Ok(Literal::Num(v)),
            Err(_) => self.err(format!("bad number `{text}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IndexConfig;

    const PERSONS: &str = r#"<persons>
        <person id="p1"><name><first>Arthur</first><family>Dent</family></name>
            <age><decades>4</decades>2<years/></age></person>
        <person id="p2"><name><first>Ford</first><family>Prefect</family></name>
            <age>200</age></person>
        <person id="p3"><name><first>Tricia</first><family>McMillan</family></name>
            <age>30</age></person>
    </persons>"#;

    fn setup() -> (Document, IndexManager) {
        let doc = Document::parse(PERSONS).unwrap();
        let idx = IndexManager::build(&doc, IndexConfig::default());
        (doc, idx)
    }

    fn names_of(doc: &Document, nodes: &[NodeId]) -> Vec<String> {
        nodes
            .iter()
            .map(|&n| {
                doc.attribute_value(n, "id")
                    .map(str::to_owned)
                    .or_else(|| doc.name(n).map(str::to_owned))
                    .unwrap_or_else(|| doc.string_value(n))
            })
            .collect()
    }

    #[test]
    fn parse_paper_queries() {
        for q in [
            "//person[.//age = 42]",
            "//person[first/text() = \"Arthur\"]",
            "//*[data(name) = \"ArthurDent\"]",
            "/persons/person[@id = \"p1\"]",
            "//person[age < 100]",
            "//person[age]",
            "//person",
            "//person[.//age = 42][first/text() = \"Arthur\"]",
        ] {
            QueryEngine::parse(q).unwrap_or_else(|e| panic!("{q}: {e}"));
        }
    }

    #[test]
    fn parse_multi_predicate_step() {
        let q = QueryEngine::parse("//person[age = 42][first = \"Arthur\"]").unwrap();
        assert_eq!(q.steps.len(), 1);
        assert_eq!(q.steps[0].preds.len(), 2);
    }

    #[test]
    fn parse_errors() {
        for q in ["", "person", "//person[", "//person[age <]", "//person]"] {
            assert!(QueryEngine::parse(q).is_err(), "{q:?} should fail");
        }
    }

    #[test]
    fn scan_and_index_agree_on_paper_queries() {
        let (doc, idx) = setup();
        for q in [
            "//person[.//age = 42]",
            "//person[first/text() = \"Arthur\"]",
            "//*[data(name) = \"ArthurDent\"]",
            "/persons/person[@id = \"p2\"]",
            "//person[age < 100]",
            "//person[age >= 30]",
            "//person[age > 42]",
            "//person[name]",
            "//first",
            "//person[family/text() != \"Dent\"]",
            // Multi-predicate and non-final-step predicates.
            "//person[.//age = 200][.//first/text() = \"Ford\"]",
            "//person[.//age = 200][.//first/text() = \"Arthur\"]",
            "//person[.//age >= 30]/name/first",
            "//person[.//first/text() = \"Tricia\"]/age",
            "//person[name][.//age < 100]",
        ] {
            let query = QueryEngine::parse(q).unwrap();
            let scan = QueryEngine::evaluate_scan(&doc, &query);
            let fast = QueryEngine::evaluate(&doc, &idx, &query);
            assert_eq!(scan, fast, "results differ for {q}");
        }
    }

    #[test]
    fn mixed_content_age_is_found() {
        let (doc, idx) = setup();
        let q = QueryEngine::parse("//person[.//age = 42]").unwrap();
        let hits = QueryEngine::evaluate(&doc, &idx, &q);
        assert_eq!(names_of(&doc, &hits), vec!["p1"]);
        assert!(matches!(
            QueryEngine::plan(&idx, &q),
            Plan::Index(Probe {
                lookup: Lookup::RangeF64(_),
                ..
            })
        ));
    }

    #[test]
    fn string_equality_uses_equi_index() {
        let (doc, idx) = setup();
        // <first> is nested under <name>, so the descendant axis is
        // needed from <person>.
        let q = QueryEngine::parse("//person[.//first/text() = \"Ford\"]").unwrap();
        assert_eq!(
            QueryEngine::plan(&idx, &q).lookup(),
            Some(&Lookup::equi("Ford"))
        );
        let hits = QueryEngine::evaluate(&doc, &idx, &q);
        assert_eq!(names_of(&doc, &hits), vec!["p2"]);
        // A direct-child path from <person> correctly finds nothing.
        let q = QueryEngine::parse("//person[first/text() = \"Ford\"]").unwrap();
        assert!(QueryEngine::evaluate(&doc, &idx, &q).is_empty());
    }

    #[test]
    fn attribute_predicate() {
        let (doc, idx) = setup();
        let q = QueryEngine::parse("/persons/person[@id = \"p3\"]").unwrap();
        let hits = QueryEngine::evaluate(&doc, &idx, &q);
        assert_eq!(names_of(&doc, &hits), vec!["p3"]);
    }

    #[test]
    fn range_queries() {
        let (doc, idx) = setup();
        let q = QueryEngine::parse("//person[age <= 42]").unwrap();
        let hits = QueryEngine::evaluate(&doc, &idx, &q);
        assert_eq!(names_of(&doc, &hits), vec!["p1", "p3"]);

        let q = QueryEngine::parse("//person[age > 42]").unwrap();
        let hits = QueryEngine::evaluate(&doc, &idx, &q);
        assert_eq!(names_of(&doc, &hits), vec!["p2"]);
    }

    #[test]
    fn existence_predicate_scans() {
        let (doc, idx) = setup();
        let q = QueryEngine::parse("//person[years]").unwrap();
        assert_eq!(QueryEngine::plan(&idx, &q), Plan::Scan);
        // <years/> only exists under p1's mixed-content age… one level
        // deeper, so //person[years] matches nothing:
        assert!(QueryEngine::evaluate(&doc, &idx, &q).is_empty());
        let q = QueryEngine::parse("//person[.//years]").unwrap();
        let hits = QueryEngine::evaluate(&doc, &idx, &q);
        assert_eq!(names_of(&doc, &hits), vec!["p1"]);
    }

    #[test]
    fn results_are_in_document_order() {
        let (doc, idx) = setup();
        let q = QueryEngine::parse("//person[age < 1000]").unwrap();
        let hits = QueryEngine::evaluate(&doc, &idx, &q);
        assert_eq!(names_of(&doc, &hits), vec!["p1", "p2", "p3"]);
    }

    #[test]
    fn ne_predicate_falls_back_to_scan() {
        let (_, idx) = setup();
        let q = QueryEngine::parse("//person[age != 42]").unwrap();
        assert_eq!(QueryEngine::plan(&idx, &q), Plan::Scan);
    }

    /// Satellite regression: with two predicates on the final step,
    /// both are enumerated as candidates and the *more selective* one
    /// is chosen — regardless of predicate order. (The pre-cost-based
    /// planner only ever looked at a lone final-step predicate.)
    #[test]
    fn most_selective_predicate_wins_regardless_of_order() {
        // "common" appears in every <p>; each <name> value once.
        let mut xml = String::from("<r>");
        for i in 0..12 {
            xml.push_str(&format!("<p><tag>common</tag><name>name{i}</name></p>"));
        }
        xml.push_str("</r>");
        let doc = Document::parse(&xml).unwrap();
        let idx = IndexManager::build(&doc, IndexConfig::default());
        for q in [
            "//p[.//name = \"name7\"][.//tag = \"common\"]",
            "//p[.//tag = \"common\"][.//name = \"name7\"]",
        ] {
            let query = QueryEngine::parse(q).unwrap();
            let probes = QueryEngine::candidate_probes(&idx, &query);
            assert_eq!(probes.len(), 2, "{q}: both predicates enumerated");
            let plan = QueryEngine::plan(&idx, &query);
            assert_eq!(
                plan.lookup(),
                Some(&Lookup::equi("name7")),
                "{q}: the selective predicate must win, got {plan}"
            );
            let hits = QueryEngine::evaluate(&doc, &idx, &query);
            assert_eq!(hits, QueryEngine::evaluate_scan(&doc, &query), "{q}");
            assert_eq!(hits.len(), 1, "{q}");
        }
    }

    /// A predicate on a *non-final* step is planned and evaluated
    /// through the index, with the remaining steps walked forward from
    /// the verified anchors.
    #[test]
    fn non_final_step_predicate_is_planned() {
        let (doc, idx) = setup();
        let q = QueryEngine::parse("//person[.//first/text() = \"Ford\"]/age").unwrap();
        let plan = QueryEngine::plan(&idx, &q);
        assert!(matches!(&plan, Plan::Index(p) if p.step == 0), "{plan}");
        let hits = QueryEngine::evaluate(&doc, &idx, &q);
        assert_eq!(hits, QueryEngine::evaluate_scan(&doc, &q));
        assert_eq!(hits.len(), 1);
        assert_eq!(doc.string_value(hits[0]), "200");
    }

    /// With an aggressive config, two same-step predicates of similar
    /// selectivity are intersected, and the intersection agrees with
    /// the scan.
    #[test]
    fn intersection_of_two_probes() {
        let mut xml = String::from("<r>");
        for i in 0..20 {
            let a = if i % 2 == 0 { "even" } else { "odd" };
            let b = if i % 3 == 0 { "fizz" } else { "buzz" };
            xml.push_str(&format!("<p><a>{a}</a><b>{b}</b></p>"));
        }
        xml.push_str("</r>");
        let doc = Document::parse(&xml).unwrap();
        let idx = IndexManager::build(&doc, IndexConfig::default());
        let q = QueryEngine::parse("//p[.//a = \"even\"][.//b = \"fizz\"]").unwrap();
        let cfg = PlannerConfig {
            scan_fraction: 1.0,
            intersect_min: 1,
            intersect_factor: 100.0,
        };
        let plan = QueryEngine::plan_with(&idx, &q, &cfg);
        assert!(matches!(plan, Plan::Intersect(_, _)), "{plan}");
        let fast = QueryEngine::evaluate_with_plan(&doc, &idx, &q, &plan);
        assert_eq!(fast, QueryEngine::evaluate_scan(&doc, &q));
        // Every fourth… no: i % 2 == 0 && i % 3 == 0 → i in {0, 6, 12, 18}.
        assert_eq!(fast.len(), 4);
    }

    /// The scan threshold knob: a zero threshold forces every plan to
    /// a scan; a generous one restores the index plan.
    #[test]
    fn scan_threshold_knob() {
        let (_, idx) = setup();
        let q = QueryEngine::parse("//person[.//age = 42]").unwrap();
        let scan_cfg = PlannerConfig {
            scan_fraction: 0.0,
            ..PlannerConfig::default()
        };
        assert_eq!(QueryEngine::plan_with(&idx, &q, &scan_cfg), Plan::Scan);
        assert!(matches!(
            QueryEngine::plan_with(&idx, &q, &PlannerConfig::default()),
            Plan::Index(_)
        ));
    }

    #[test]
    fn explain_reports_candidates_and_results() {
        let (doc, idx) = setup();
        // Index-covered: the value probe for "Arthur" yields the text
        // node and its <first> parent; only <person id="p1"> survives
        // the reverse path match.
        let q = QueryEngine::parse("//person[.//first/text() = \"Arthur\"]").unwrap();
        let ex = QueryEngine::explain(&doc, &idx, &q);
        assert_eq!(ex.plan.lookup(), Some(&Lookup::equi("Arthur")));
        assert_eq!(ex.probed, Some(2));
        assert_eq!(ex.results, 1);
        assert_eq!(ex.predicates.len(), 1);
        assert_eq!(ex.predicates[0].actual, 2);
        assert!(ex.predicates[0].chosen);
        let rendered = ex.to_string();
        assert!(rendered.contains("index probe"), "{rendered}");
        assert!(rendered.contains("2 candidate(s)"), "{rendered}");
        assert!(rendered.contains("est"), "{rendered}");
        assert!(rendered.contains("actual 2"), "{rendered}");

        // Scan fallback: no candidates to report.
        let q = QueryEngine::parse("//person[years]").unwrap();
        let ex = QueryEngine::explain(&doc, &idx, &q);
        assert_eq!(ex.plan, Plan::Scan);
        assert_eq!(ex.probed, None);
        assert!(ex.predicates.is_empty());
        assert!(ex.to_string().contains("full document scan"));
    }

    /// Estimated *and* actual cardinalities are reported for every
    /// candidate predicate, chosen or not.
    #[test]
    fn explain_reports_est_and_actual_for_every_candidate() {
        let (doc, idx) = setup();
        let q = QueryEngine::parse("//person[.//age = 200][.//first/text() = \"Ford\"]").unwrap();
        let ex = QueryEngine::explain(&doc, &idx, &q);
        assert_eq!(ex.predicates.len(), 2);
        for p in &ex.predicates {
            let actual = idx.query(&doc, &p.lookup).unwrap().len();
            assert_eq!(p.actual, actual, "{}", p.lookup);
            assert!(
                p.estimate.lower <= actual && actual <= p.estimate.upper,
                "{}: actual {} outside [{}, {}]",
                p.lookup,
                actual,
                p.estimate.lower,
                p.estimate.upper
            );
        }
        assert_eq!(ex.predicates.iter().filter(|p| p.chosen).count(), 1);
        let rendered = ex.to_string();
        assert!(rendered.matches("est ").count() >= 2, "{rendered}");
    }

    /// The small-set document-order sort (sibling-rank chains) must
    /// order exactly like the pre/post-view sort it bypasses,
    /// attributes included.
    #[test]
    fn small_and_large_doc_order_sorts_agree() {
        let mut xml = String::from("<r>");
        for i in 0..40 {
            xml.push_str(&format!("<p id=\"p{i}\"><a>x{i}</a><b>y{i}</b></p>"));
        }
        xml.push_str("</r>");
        let doc = Document::parse(&xml).unwrap();
        // Every node and attribute, shuffled into a set.
        let mut nodes: HashSet<NodeId> = doc.descendants_or_self(doc.document_node()).collect();
        for n in nodes.clone() {
            nodes.extend(doc.attributes(n));
        }
        let small = QueryEngine::in_doc_order(&doc, nodes.clone());
        assert!(
            small.len() <= QueryEngine::SMALL_ORDER,
            "stay on small path"
        );
        // Reference order from the pre/post view.
        let view = doc.pre_post_view();
        let mut reference: Vec<NodeId> = nodes.into_iter().collect();
        reference.sort_by_key(|&n| match view.pre(n) {
            Some(p) => (p, 0usize),
            None => (
                doc.parent(n)
                    .and_then(|p| view.pre(p))
                    .unwrap_or(usize::MAX),
                n.index() + 1,
            ),
        });
        assert_eq!(small, reference);
    }

    #[test]
    fn explain_counts_match_evaluate() {
        let (doc, idx) = setup();
        for q in ["//person[age <= 42]", "//person[.//age = 42]", "//first"] {
            let query = QueryEngine::parse(q).unwrap();
            let ex = QueryEngine::explain(&doc, &idx, &query);
            assert_eq!(
                ex.results,
                QueryEngine::evaluate(&doc, &idx, &query).len(),
                "{q}"
            );
        }
    }
}
