//! A mini-XPath evaluator exercising the indices.
//!
//! Supports the query shapes the paper motivates (§1):
//!
//! ```text
//! //person[.//age = 42]
//! //person[first/text() = "Arthur"]
//! //*[data(name) = "ArthurDent"]
//! /site/people/person[@id = "person0"]
//! //item[price < 50]
//! ```
//!
//! Grammar (recursive descent, no external crates):
//!
//! ```text
//! query     := ( '/' | '//' ) step ( ( '/' | '//' ) step )*
//! step      := test predicate?
//! test      := NAME | '*' | 'text()' | '@' NAME
//! predicate := '[' relpath ( op literal )? ']'
//! relpath   := '.' | 'data(' relpath ')' | ( './/' | './' | '' ) step ( ('/'|'//') step )*
//! op        := '=' | '!=' | '<' | '<=' | '>' | '>='
//! literal   := '"' chars '"' | "'" chars "'" | number
//! ```
//!
//! Two evaluators are provided: [`QueryEngine::evaluate_scan`] walks
//! the tree (the baseline), while [`QueryEngine::evaluate`] serves
//! string-equality predicates from the equi-index and numeric
//! comparisons from the double range index, then *reverse-matches*
//! candidates against the path — which is exactly how a value index
//! that covers the whole document gets used: value first, structure
//! second.

use std::collections::HashSet;

use xvi_fsm::XmlType;
use xvi_xml::{Document, NodeId, NodeKind};

use crate::error::IndexError;
use crate::lookup::{Bounds, Lookup};
use crate::manager::IndexManager;

/// Navigation axis of a step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// `/step`
    Child,
    /// `//step`
    Descendant,
    /// `.` in predicates
    SelfAxis,
}

/// Node test of a step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Test {
    /// An element name test.
    Name(String),
    /// `*`: any element.
    Any,
    /// `text()`: any text node.
    Text,
    /// `@name`: an attribute.
    Attr(String),
}

/// Comparison operators in predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A literal on the right-hand side of a comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// A quoted string → string-value equality semantics.
    Str(String),
    /// A number → double semantics (XQuery general comparison on
    /// untyped data).
    Num(f64),
}

/// `[ relpath op literal ]` or bare `[ relpath ]` (existence).
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// Relative path selecting the compared nodes ('.'-anchored).
    pub path: Vec<Step>,
    /// Comparison; `None` = existence test.
    pub cmp: Option<(CmpOp, Literal)>,
}

/// One location step.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// How the step navigates from its context.
    pub axis: Axis,
    /// Which nodes it selects.
    pub test: Test,
    /// Optional value predicate.
    pub pred: Option<Predicate>,
}

/// A parsed query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The location steps, anchored at the document node.
    pub steps: Vec<Step>,
}

/// How [`QueryEngine::evaluate`] will serve a query: the last step's
/// predicate is *lowered* into a value [`Lookup`] when an index
/// covers it, and the candidates are reverse-matched through the path.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// Index probe with the lowered lookup, then reverse path matching.
    Index(Lookup),
    /// Full document scan.
    Scan,
}

impl std::fmt::Display for Plan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Plan::Index(lookup) => write!(f, "index probe {lookup}, then reverse path match"),
            Plan::Scan => write!(f, "full document scan"),
        }
    }
}

/// The rendered execution plan of one query — what
/// [`QueryEngine::explain`] returns: whether the index covered the
/// predicate, how many candidates the value probe produced, and how
/// many survived the path match.
#[derive(Debug, Clone, PartialEq)]
pub struct Explanation {
    /// The chosen plan.
    pub plan: Plan,
    /// Nodes the value probe returned (`None` when the plan scans).
    pub candidates: Option<usize>,
    /// Final result count after path matching.
    pub results: usize,
}

impl std::fmt::Display for Explanation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.candidates {
            Some(c) => write!(
                f,
                "plan: {} — {} candidate(s), {} result(s)",
                self.plan, c, self.results
            ),
            None => write!(f, "plan: {} — {} result(s)", self.plan, self.results),
        }
    }
}

/// Parser + evaluator.
#[derive(Debug, Default)]
pub struct QueryEngine;

impl QueryEngine {
    /// Parses a query string.
    pub fn parse(input: &str) -> Result<Query, IndexError> {
        Parser {
            chars: input.trim().as_bytes(),
            pos: 0,
        }
        .query()
    }

    /// Chooses the execution plan for a query, lowering the predicate
    /// on the *last* step into a value [`Lookup`] when it is the only
    /// predicate and a configured index covers it.
    pub fn plan(idx: &IndexManager, query: &Query) -> Plan {
        let n_preds = query.steps.iter().filter(|s| s.pred.is_some()).count();
        if n_preds != 1 {
            return Plan::Scan;
        }
        let last = query.steps.last().expect("non-empty query");
        let Some(pred) = &last.pred else {
            return Plan::Scan;
        };
        if pred.path.iter().any(|s| s.pred.is_some()) {
            return Plan::Scan;
        }
        match &pred.cmp {
            Some((CmpOp::Eq, Literal::Str(s))) if idx.string_index().is_some() => {
                Plan::Index(Lookup::Equi(s.clone()))
            }
            Some((op, Literal::Num(v))) if idx.typed_index(XmlType::Double).is_some() => {
                use std::ops::Bound::*;
                let (lo, hi) = match op {
                    CmpOp::Eq => (Included(*v), Included(*v)),
                    CmpOp::Lt => (Unbounded, Excluded(*v)),
                    CmpOp::Le => (Unbounded, Included(*v)),
                    CmpOp::Gt => (Excluded(*v), Unbounded),
                    CmpOp::Ge => (Included(*v), Unbounded),
                    CmpOp::Ne => return Plan::Scan,
                };
                Plan::Index(Lookup::RangeF64(Bounds { lo, hi }))
            }
            _ => Plan::Scan,
        }
    }

    /// Index-accelerated evaluation; falls back to a scan when no
    /// index applies. Results are in document order, deduplicated.
    pub fn evaluate(doc: &Document, idx: &IndexManager, query: &Query) -> Vec<NodeId> {
        match Self::plan(idx, query) {
            Plan::Scan => Self::evaluate_scan(doc, query),
            Plan::Index(lookup) => {
                let candidates = idx
                    .query(doc, &lookup)
                    .expect("plan() only lowers to configured indices");
                let result = Self::contexts_of_candidates(doc, query, &candidates);
                Self::in_doc_order(doc, result)
            }
        }
    }

    /// Explains how [`QueryEngine::evaluate`] serves `query`: the
    /// chosen plan (index-covered vs. scan), the candidate count the
    /// value probe produced, and the final result count.
    ///
    /// ```
    /// use xvi_index::{Document, IndexConfig, IndexManager, QueryEngine};
    ///
    /// let doc = Document::parse("<r><p><age>42</age></p><p><age>7</age></p></r>").unwrap();
    /// let idx = IndexManager::build(&doc, IndexConfig::default());
    /// let q = QueryEngine::parse("//p[age = 42]").unwrap();
    /// let ex = QueryEngine::explain(&doc, &idx, &q);
    /// assert!(ex.to_string().contains("index probe"));
    /// assert_eq!(ex.results, 1);
    /// ```
    pub fn explain(doc: &Document, idx: &IndexManager, query: &Query) -> Explanation {
        match Self::plan(idx, query) {
            Plan::Scan => Explanation {
                plan: Plan::Scan,
                candidates: None,
                results: Self::evaluate_scan(doc, query).len(),
            },
            Plan::Index(lookup) => {
                let candidates = idx
                    .query(doc, &lookup)
                    .expect("plan() only lowers to configured indices");
                let results = Self::contexts_of_candidates(doc, query, &candidates).len();
                Explanation {
                    plan: Plan::Index(lookup),
                    candidates: Some(candidates.len()),
                    results,
                }
            }
        }
    }

    /// Pure tree-walk evaluation (the baseline the index beats).
    pub fn evaluate_scan(doc: &Document, query: &Query) -> Vec<NodeId> {
        let mut context = vec![doc.document_node()];
        for step in &query.steps {
            let mut next = Vec::new();
            for &c in &context {
                Self::apply_step(doc, c, step, &mut next);
            }
            let mut pass = Vec::new();
            for n in next {
                let ok = match &step.pred {
                    None => true,
                    Some(p) => Self::eval_predicate(doc, n, p),
                };
                if ok {
                    pass.push(n);
                }
            }
            context = pass;
        }
        Self::in_doc_order(doc, context.into_iter().collect())
    }

    // ----- scan machinery ----------------------------------------------------

    fn apply_step(doc: &Document, ctx: NodeId, step: &Step, out: &mut Vec<NodeId>) {
        match (step.axis, &step.test) {
            (Axis::SelfAxis, _) => {
                if Self::matches_test(doc, ctx, &step.test) {
                    out.push(ctx);
                }
            }
            (Axis::Child, Test::Attr(name)) => {
                out.extend(doc.attribute(ctx, name));
            }
            (Axis::Child, _) => {
                out.extend(
                    doc.children(ctx)
                        .filter(|&n| Self::matches_test(doc, n, &step.test)),
                );
            }
            (Axis::Descendant, Test::Attr(name)) => {
                for n in doc.descendants_or_self(ctx) {
                    out.extend(doc.attribute(n, name));
                }
            }
            (Axis::Descendant, _) => {
                out.extend(
                    doc.descendants(ctx)
                        .filter(|&n| Self::matches_test(doc, n, &step.test)),
                );
            }
        }
    }

    fn matches_test(doc: &Document, n: NodeId, test: &Test) -> bool {
        match test {
            Test::Any => matches!(doc.kind(n), NodeKind::Element(_)),
            Test::Name(name) => {
                matches!(doc.kind(n), NodeKind::Element(_)) && doc.name(n) == Some(name)
            }
            Test::Text => matches!(doc.kind(n), NodeKind::Text(_)),
            Test::Attr(name) => {
                matches!(doc.kind(n), NodeKind::Attribute { .. }) && doc.name(n) == Some(name)
            }
        }
    }

    fn eval_predicate(doc: &Document, ctx: NodeId, pred: &Predicate) -> bool {
        let mut selected = vec![ctx];
        for step in &pred.path {
            let mut next = Vec::new();
            for &c in &selected {
                Self::apply_step(doc, c, step, &mut next);
            }
            selected = next;
        }
        match &pred.cmp {
            None => !selected.is_empty(),
            Some((op, lit)) => selected.iter().any(|&m| Self::compare(doc, m, *op, lit)),
        }
    }

    /// XQuery-flavoured general comparison of one node against a
    /// literal: strings compare on the XDM string value, numbers on
    /// the double cast of the string value (non-castable ⇒ false).
    fn compare(doc: &Document, m: NodeId, op: CmpOp, lit: &Literal) -> bool {
        match lit {
            Literal::Str(s) => {
                let v = doc.string_value(m);
                match op {
                    CmpOp::Eq => v == *s,
                    CmpOp::Ne => v != *s,
                    // Lexicographic order on strings, as XPath does for
                    // string comparisons.
                    CmpOp::Lt => v < *s,
                    CmpOp::Le => v <= *s,
                    CmpOp::Gt => v > *s,
                    CmpOp::Ge => v >= *s,
                }
            }
            Literal::Num(x) => {
                let Some(v) = XmlType::Double.cast(&doc.string_value(m)) else {
                    return false;
                };
                match op {
                    CmpOp::Eq => v == *x,
                    CmpOp::Ne => v != *x,
                    CmpOp::Lt => v < *x,
                    CmpOp::Le => v <= *x,
                    CmpOp::Gt => v > *x,
                    CmpOp::Ge => v >= *x,
                }
            }
        }
    }

    // ----- index machinery ----------------------------------------------------

    /// Given nodes found *by value*, derive the query answers: each
    /// candidate is reverse-matched through the predicate path to its
    /// possible context nodes, which are then reverse-matched through
    /// the outer query path to the document node.
    fn contexts_of_candidates(
        doc: &Document,
        query: &Query,
        candidates: &[NodeId],
    ) -> HashSet<NodeId> {
        let last = query.steps.last().expect("non-empty query");
        let pred = last.pred.as_ref().expect("planned query has a predicate");
        let mut out = HashSet::new();
        for &m in candidates {
            for ctx in Self::reverse_contexts(doc, m, &pred.path) {
                if out.contains(&ctx) {
                    continue;
                }
                if Self::matches_test(doc, ctx, &last.test)
                    && Self::matches_absolute(doc, ctx, query)
                {
                    out.insert(ctx);
                }
            }
        }
        out
    }

    /// All nodes `c` such that evaluating `steps` from `c` selects `m`.
    fn reverse_contexts(doc: &Document, m: NodeId, steps: &[Step]) -> Vec<NodeId> {
        let mut cur = vec![m];
        for step in steps.iter().rev() {
            let mut prev = Vec::new();
            for &x in &cur {
                if !Self::matches_test_or_self(doc, x, step) {
                    continue;
                }
                match step.axis {
                    Axis::SelfAxis => prev.push(x),
                    Axis::Child => prev.extend(doc.parent(x)),
                    Axis::Descendant => {
                        let mut p = doc.parent(x);
                        while let Some(a) = p {
                            prev.push(a);
                            p = doc.parent(a);
                        }
                    }
                }
            }
            prev.sort();
            prev.dedup();
            cur = prev;
        }
        cur
    }

    fn matches_test_or_self(doc: &Document, x: NodeId, step: &Step) -> bool {
        match (step.axis, &step.test) {
            // `.` matches whatever node it is.
            (Axis::SelfAxis, Test::Any) => true,
            _ => Self::matches_test(doc, x, &step.test),
        }
    }

    /// Whether `node` is selected by the query path (ignoring the last
    /// step's predicate, which the caller already satisfied by value).
    fn matches_absolute(doc: &Document, node: NodeId, query: &Query) -> bool {
        let stripped: Vec<Step> = query
            .steps
            .iter()
            .map(|s| Step {
                axis: s.axis,
                test: s.test.clone(),
                pred: None,
            })
            .collect();
        Self::reverse_contexts(doc, node, &stripped).contains(&doc.document_node())
    }

    fn in_doc_order(doc: &Document, nodes: HashSet<NodeId>) -> Vec<NodeId> {
        let view = doc.pre_post_view();
        let mut v: Vec<NodeId> = nodes.into_iter().collect();
        // Attributes have no pre rank; order them just after their
        // owner element by (owner pre, attribute arena index).
        v.sort_by_key(|&n| match view.pre(n) {
            Some(p) => (p, 0usize),
            None => (
                doc.parent(n)
                    .and_then(|p| view.pre(p))
                    .unwrap_or(usize::MAX),
                n.index() + 1,
            ),
        });
        v
    }
}

// ----- parser ------------------------------------------------------------

struct Parser<'a> {
    chars: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, IndexError> {
        Err(IndexError::QuerySyntax(format!(
            "{} (at offset {})",
            msg.into(),
            self.pos
        )))
    }

    fn peek(&self) -> Option<u8> {
        self.chars.get(self.pos).copied()
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.chars[self.pos..].starts_with(s.as_bytes()) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t')) {
            self.pos += 1;
        }
    }

    fn query(&mut self) -> Result<Query, IndexError> {
        let mut steps = Vec::new();
        loop {
            self.skip_ws();
            let axis = if self.eat("//") {
                Axis::Descendant
            } else if self.eat("/") {
                Axis::Child
            } else if steps.is_empty() {
                return self.err("queries start with '/' or '//'");
            } else {
                break;
            };
            steps.push(self.step(axis)?);
            if self.pos >= self.chars.len() {
                break;
            }
        }
        self.skip_ws();
        if self.pos != self.chars.len() {
            return self.err("trailing input");
        }
        if steps.is_empty() {
            return self.err("empty query");
        }
        Ok(Query { steps })
    }

    fn step(&mut self, axis: Axis) -> Result<Step, IndexError> {
        let test = self.test()?;
        self.skip_ws();
        let pred = if self.eat("[") {
            let p = self.predicate()?;
            self.skip_ws();
            if !self.eat("]") {
                return self.err("expected ']'");
            }
            Some(p)
        } else {
            None
        };
        Ok(Step { axis, test, pred })
    }

    fn test(&mut self) -> Result<Test, IndexError> {
        self.skip_ws();
        if self.eat("*") {
            return Ok(Test::Any);
        }
        if self.eat("@") {
            return Ok(Test::Attr(self.name()?));
        }
        let name = self.name()?;
        if name == "text" && self.eat("()") {
            return Ok(Test::Text);
        }
        Ok(Test::Name(name))
    }

    fn name(&mut self) -> Result<String, IndexError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return self.err("expected a name");
        }
        Ok(String::from_utf8_lossy(&self.chars[start..self.pos]).into_owned())
    }

    fn predicate(&mut self) -> Result<Predicate, IndexError> {
        self.skip_ws();
        let wrapped_in_data = self.eat("data(") || self.eat("fn:data(");
        let path = self.rel_path()?;
        if wrapped_in_data {
            self.skip_ws();
            if !self.eat(")") {
                return self.err("expected ')' after data(…)");
            }
        }
        self.skip_ws();
        let cmp = if let Some(op) = self.cmp_op() {
            self.skip_ws();
            Some((op, self.literal()?))
        } else {
            None
        };
        Ok(Predicate { path, cmp })
    }

    fn rel_path(&mut self) -> Result<Vec<Step>, IndexError> {
        self.skip_ws();
        let mut steps = Vec::new();
        // Leading context marker.
        if self.eat(".//") {
            steps.push(self.step(Axis::Descendant)?);
        } else if self.eat("./") {
            steps.push(self.step(Axis::Child)?);
        } else if self.peek() == Some(b'.') {
            self.pos += 1;
            // Bare '.': the context node itself.
            return Ok(vec![Step {
                axis: Axis::SelfAxis,
                test: Test::Any,
                pred: None,
            }]);
        } else {
            steps.push(self.step(Axis::Child)?);
        }
        loop {
            if self.eat("//") {
                steps.push(self.step(Axis::Descendant)?);
            } else if self.eat("/") {
                steps.push(self.step(Axis::Child)?);
            } else {
                break;
            }
        }
        Ok(steps)
    }

    fn cmp_op(&mut self) -> Option<CmpOp> {
        self.skip_ws();
        for (tok, op) in [
            ("!=", CmpOp::Ne),
            ("<=", CmpOp::Le),
            (">=", CmpOp::Ge),
            ("=", CmpOp::Eq),
            ("<", CmpOp::Lt),
            (">", CmpOp::Gt),
        ] {
            if self.eat(tok) {
                return Some(op);
            }
        }
        None
    }

    fn literal(&mut self) -> Result<Literal, IndexError> {
        self.skip_ws();
        if let Some(q @ (b'"' | b'\'')) = self.peek() {
            self.pos += 1;
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == q {
                    let s = String::from_utf8_lossy(&self.chars[start..self.pos]).into_owned();
                    self.pos += 1;
                    return Ok(Literal::Str(s));
                }
                self.pos += 1;
            }
            return self.err("unterminated string literal");
        }
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'.' | b'-' | b'+' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return self.err("expected a literal");
        }
        let text = std::str::from_utf8(&self.chars[start..self.pos]).expect("ascii");
        match text.parse::<f64>() {
            Ok(v) => Ok(Literal::Num(v)),
            Err(_) => self.err(format!("bad number `{text}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IndexConfig;

    const PERSONS: &str = r#"<persons>
        <person id="p1"><name><first>Arthur</first><family>Dent</family></name>
            <age><decades>4</decades>2<years/></age></person>
        <person id="p2"><name><first>Ford</first><family>Prefect</family></name>
            <age>200</age></person>
        <person id="p3"><name><first>Tricia</first><family>McMillan</family></name>
            <age>30</age></person>
    </persons>"#;

    fn setup() -> (Document, IndexManager) {
        let doc = Document::parse(PERSONS).unwrap();
        let idx = IndexManager::build(&doc, IndexConfig::default());
        (doc, idx)
    }

    fn names_of(doc: &Document, nodes: &[NodeId]) -> Vec<String> {
        nodes
            .iter()
            .map(|&n| {
                doc.attribute_value(n, "id")
                    .map(str::to_owned)
                    .or_else(|| doc.name(n).map(str::to_owned))
                    .unwrap_or_else(|| doc.string_value(n))
            })
            .collect()
    }

    #[test]
    fn parse_paper_queries() {
        for q in [
            "//person[.//age = 42]",
            "//person[first/text() = \"Arthur\"]",
            "//*[data(name) = \"ArthurDent\"]",
            "/persons/person[@id = \"p1\"]",
            "//person[age < 100]",
            "//person[age]",
            "//person",
        ] {
            QueryEngine::parse(q).unwrap_or_else(|e| panic!("{q}: {e}"));
        }
    }

    #[test]
    fn parse_errors() {
        for q in ["", "person", "//person[", "//person[age <]", "//person]"] {
            assert!(QueryEngine::parse(q).is_err(), "{q:?} should fail");
        }
    }

    #[test]
    fn scan_and_index_agree_on_paper_queries() {
        let (doc, idx) = setup();
        for q in [
            "//person[.//age = 42]",
            "//person[first/text() = \"Arthur\"]",
            "//*[data(name) = \"ArthurDent\"]",
            "/persons/person[@id = \"p2\"]",
            "//person[age < 100]",
            "//person[age >= 30]",
            "//person[age > 42]",
            "//person[name]",
            "//first",
            "//person[family/text() != \"Dent\"]",
        ] {
            let query = QueryEngine::parse(q).unwrap();
            let scan = QueryEngine::evaluate_scan(&doc, &query);
            let fast = QueryEngine::evaluate(&doc, &idx, &query);
            assert_eq!(scan, fast, "results differ for {q}");
        }
    }

    #[test]
    fn mixed_content_age_is_found() {
        let (doc, idx) = setup();
        let q = QueryEngine::parse("//person[.//age = 42]").unwrap();
        let hits = QueryEngine::evaluate(&doc, &idx, &q);
        assert_eq!(names_of(&doc, &hits), vec!["p1"]);
        assert!(matches!(
            QueryEngine::plan(&idx, &q),
            Plan::Index(Lookup::RangeF64(_))
        ));
    }

    #[test]
    fn string_equality_uses_equi_index() {
        let (doc, idx) = setup();
        // <first> is nested under <name>, so the descendant axis is
        // needed from <person>.
        let q = QueryEngine::parse("//person[.//first/text() = \"Ford\"]").unwrap();
        assert_eq!(
            QueryEngine::plan(&idx, &q),
            Plan::Index(Lookup::equi("Ford"))
        );
        let hits = QueryEngine::evaluate(&doc, &idx, &q);
        assert_eq!(names_of(&doc, &hits), vec!["p2"]);
        // A direct-child path from <person> correctly finds nothing.
        let q = QueryEngine::parse("//person[first/text() = \"Ford\"]").unwrap();
        assert!(QueryEngine::evaluate(&doc, &idx, &q).is_empty());
    }

    #[test]
    fn attribute_predicate() {
        let (doc, idx) = setup();
        let q = QueryEngine::parse("/persons/person[@id = \"p3\"]").unwrap();
        let hits = QueryEngine::evaluate(&doc, &idx, &q);
        assert_eq!(names_of(&doc, &hits), vec!["p3"]);
    }

    #[test]
    fn range_queries() {
        let (doc, idx) = setup();
        let q = QueryEngine::parse("//person[age <= 42]").unwrap();
        let hits = QueryEngine::evaluate(&doc, &idx, &q);
        assert_eq!(names_of(&doc, &hits), vec!["p1", "p3"]);

        let q = QueryEngine::parse("//person[age > 42]").unwrap();
        let hits = QueryEngine::evaluate(&doc, &idx, &q);
        assert_eq!(names_of(&doc, &hits), vec!["p2"]);
    }

    #[test]
    fn existence_predicate_scans() {
        let (doc, idx) = setup();
        let q = QueryEngine::parse("//person[years]").unwrap();
        assert_eq!(QueryEngine::plan(&idx, &q), Plan::Scan);
        // <years/> only exists under p1's mixed-content age… one level
        // deeper, so //person[years] matches nothing:
        assert!(QueryEngine::evaluate(&doc, &idx, &q).is_empty());
        let q = QueryEngine::parse("//person[.//years]").unwrap();
        let hits = QueryEngine::evaluate(&doc, &idx, &q);
        assert_eq!(names_of(&doc, &hits), vec!["p1"]);
    }

    #[test]
    fn results_are_in_document_order() {
        let (doc, idx) = setup();
        let q = QueryEngine::parse("//person[age < 1000]").unwrap();
        let hits = QueryEngine::evaluate(&doc, &idx, &q);
        assert_eq!(names_of(&doc, &hits), vec!["p1", "p2", "p3"]);
    }

    #[test]
    fn ne_predicate_falls_back_to_scan() {
        let (_, idx) = setup();
        let q = QueryEngine::parse("//person[age != 42]").unwrap();
        assert_eq!(QueryEngine::plan(&idx, &q), Plan::Scan);
    }

    #[test]
    fn explain_reports_candidates_and_results() {
        let (doc, idx) = setup();
        // Index-covered: the value probe for "Arthur" yields the text
        // node and its <first> parent; only <person id="p1"> survives
        // the reverse path match.
        let q = QueryEngine::parse("//person[.//first/text() = \"Arthur\"]").unwrap();
        let ex = QueryEngine::explain(&doc, &idx, &q);
        assert_eq!(ex.plan, Plan::Index(Lookup::equi("Arthur")));
        assert_eq!(ex.candidates, Some(2));
        assert_eq!(ex.results, 1);
        let rendered = ex.to_string();
        assert!(rendered.contains("index probe"), "{rendered}");
        assert!(rendered.contains("2 candidate(s)"), "{rendered}");

        // Scan fallback: no candidates to report.
        let q = QueryEngine::parse("//person[years]").unwrap();
        let ex = QueryEngine::explain(&doc, &idx, &q);
        assert_eq!(ex.plan, Plan::Scan);
        assert_eq!(ex.candidates, None);
        assert!(ex.to_string().contains("full document scan"));
    }

    #[test]
    fn explain_counts_match_evaluate() {
        let (doc, idx) = setup();
        for q in ["//person[age <= 42]", "//person[.//age = 42]", "//first"] {
            let query = QueryEngine::parse(q).unwrap();
            let ex = QueryEngine::explain(&doc, &idx, &query);
            assert_eq!(
                ex.results,
                QueryEngine::evaluate(&doc, &idx, &query).len(),
                "{q}"
            );
        }
    }
}
