//! Per-shard write-ahead logging for the [`IndexService`] commit
//! pipeline.
//!
//! Each shard owns one append-only log file (`wal<shard>.log` inside
//! the durability directory). The group-commit leader appends every
//! coalesced per-document batch as **one framed, checksummed record**
//! and issues **one fsync per batch** before publishing, so the
//! durable cost of a commit round is O(batch delta) — independent of
//! catalog or document size. Document registration and removal are
//! logged too, so a crash between checkpoints loses nothing that a
//! committer was told succeeded.
//!
//! ## Frame format
//!
//! ```text
//! [payload len: u32 le][crc32(payload): u32 le][payload]
//! payload := [seq: u64 le][tag: u8][record fields...]
//! ```
//!
//! `seq` is a shard-local, strictly increasing record number; the
//! checkpoint manifest stores the per-shard sequence captured at
//! checkpoint time, and recovery replays only records with a larger
//! sequence. A torn final frame — short header, length running past
//! end-of-file, checksum mismatch, or an undecodable payload — marks
//! the end of the durable prefix: [`ShardWal::open`] truncates the
//! file there and replay proceeds from the valid prefix only.
//!
//! ## Crash safety of the files themselves
//!
//! Appends go to a pre-existing file, so only `File::sync_data` is
//! needed per batch. Creating a fresh log and rewriting one during
//! checkpoint truncation both follow the same discipline as
//! `persist.rs`: write a `.tmp` sibling, fsync it, rename over the
//! final name, then **fsync the parent directory** so the rename
//! itself survives power loss.
//!
//! [`IndexService`]: crate::IndexService

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use xvi_xml::NodeId;

use crate::persist::{bad, read_str, read_u32, read_u64, write_str, write_u32, write_u64};

/// Record tag bytes (part of the on-disk format; never renumber).
const TAG_COMMIT: u8 = 1;
const TAG_INSERT: u8 = 2;
const TAG_REMOVE: u8 = 3;

/// Smallest decodable payload: sequence number plus tag byte.
const MIN_PAYLOAD: usize = 8 + 1;

/// One logical log record, decoded from a frame payload.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum WalRecord {
    /// A published group-commit batch for one document: `committed`
    /// transactions coalesced into `writes`, bringing the document to
    /// `publish_version`.
    Commit {
        doc: String,
        committed: u64,
        publish_version: u64,
        writes: Vec<(u32, String)>,
    },
    /// A document registered under `doc` with serialized content
    /// `xml` (version resets to 0, replacing any previous document).
    Insert { doc: String, xml: String },
    /// The document registered under `doc` was removed.
    Remove { doc: String },
}

/// CRC-32 (IEEE 802.3 polynomial, reflected) — the frame checksum.
const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    !bytes.iter().fold(!0u32, |c, &b| {
        (c >> 8) ^ CRC_TABLE[((c ^ b as u32) & 0xff) as usize]
    })
}

/// Fsyncs a directory so a rename/creation inside it is durable.
/// (On Linux, directory fsync is the documented way to persist the
/// directory entry itself; a plain file fsync does not cover it.)
pub(crate) fn fsync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

fn decode(payload: &[u8]) -> io::Result<(u64, WalRecord)> {
    let mut r = payload;
    let seq = read_u64(&mut r)?;
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    let record = match tag[0] {
        TAG_COMMIT => {
            let doc = read_str(&mut r)?;
            let committed = read_u64(&mut r)?;
            let publish_version = read_u64(&mut r)?;
            let n = read_u32(&mut r)? as usize;
            let mut writes = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                let node = read_u32(&mut r)?;
                let value = read_str(&mut r)?;
                writes.push((node, value));
            }
            WalRecord::Commit {
                doc,
                committed,
                publish_version,
                writes,
            }
        }
        TAG_INSERT => WalRecord::Insert {
            doc: read_str(&mut r)?,
            xml: read_str(&mut r)?,
        },
        TAG_REMOVE => WalRecord::Remove {
            doc: read_str(&mut r)?,
        },
        other => return Err(bad(format!("unknown WAL record tag {other}"))),
    };
    Ok((seq, record))
}

/// One parsed frame plus its byte span in the file — the span lets
/// checkpoint truncation rewrite the kept suffix without re-encoding.
struct RawFrame {
    seq: u64,
    start: usize,
    end: usize,
    record: WalRecord,
}

/// Parses frames from the start of `bytes`, stopping at the first
/// torn or corrupt frame. Returns the frames and the length of the
/// valid prefix (everything past it is an un-fsynced or torn tail to
/// be truncated away).
fn scan(bytes: &[u8]) -> (Vec<RawFrame>, usize) {
    let mut frames = Vec::new();
    let mut off = 0usize;
    while let Some(header) = bytes.get(off..off + 8) {
        let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if len < MIN_PAYLOAD {
            break;
        }
        let Some(payload) = bytes.get(off + 8..off + 8 + len) else {
            break;
        };
        if crc32(payload) != crc {
            break;
        }
        let Ok((seq, record)) = decode(payload) else {
            break;
        };
        frames.push(RawFrame {
            seq,
            start: off,
            end: off + 8 + len,
            record,
        });
        off += 8 + len;
    }
    (frames, off)
}

/// The append side of one shard's log.
#[derive(Debug)]
pub(crate) struct ShardWal {
    file: File,
    path: PathBuf,
    /// Sequence number of the last record appended (or recovered).
    pub(crate) seq: u64,
}

fn wal_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("wal{shard}.log"))
}

impl ShardWal {
    /// Opens (creating if missing) shard `shard`'s log under `dir`,
    /// returning the records of its valid prefix in append order. A
    /// torn tail — any suffix that does not parse as whole, checksummed
    /// frames — is truncated off the file before the append handle is
    /// handed out, so later appends can never bury garbage mid-log.
    pub(crate) fn open(dir: &Path, shard: usize) -> io::Result<(Vec<(u64, WalRecord)>, ShardWal)> {
        let path = wal_path(dir, shard);
        let existed = path.exists();
        let bytes = if existed {
            std::fs::read(&path)?
        } else {
            Vec::new()
        };
        let (frames, valid_len) = scan(&bytes);
        if valid_len < bytes.len() {
            let f = OpenOptions::new().write(true).open(&path)?;
            f.set_len(valid_len as u64)?;
            f.sync_all()?;
        }
        let seq = frames.last().map(|f| f.seq).unwrap_or(0);
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        if !existed {
            // The file's directory entry must survive power loss too.
            file.sync_all()?;
            fsync_dir(dir)?;
        }
        let records = frames.into_iter().map(|f| (f.seq, f.record)).collect();
        Ok((records, ShardWal { file, path, seq }))
    }

    fn append_payload(&mut self, payload: &[u8]) -> io::Result<u64> {
        let mut frame = Vec::with_capacity(payload.len() + 8);
        write_u32(&mut frame, payload.len() as u32)?;
        write_u32(&mut frame, crc32(payload))?;
        frame.extend_from_slice(payload);
        self.file.write_all(&frame)?;
        Ok(self.seq)
    }

    fn payload_header(&mut self, tag: u8) -> io::Result<Vec<u8>> {
        self.seq += 1;
        let mut payload = Vec::new();
        write_u64(&mut payload, self.seq)?;
        payload.push(tag);
        Ok(payload)
    }

    /// Appends one coalesced commit batch (no fsync — call
    /// [`ShardWal::sync`] once per batch).
    pub(crate) fn append_commit(
        &mut self,
        doc: &str,
        committed: u64,
        publish_version: u64,
        writes: &[(NodeId, String)],
    ) -> io::Result<u64> {
        let mut payload = self.payload_header(TAG_COMMIT)?;
        write_str(&mut payload, doc)?;
        write_u64(&mut payload, committed)?;
        write_u64(&mut payload, publish_version)?;
        write_u32(
            &mut payload,
            crate::persist::checked_u32(writes.len(), "write count")?,
        )?;
        for (node, value) in writes {
            write_u32(
                &mut payload,
                crate::persist::checked_u32(node.index(), "node id")?,
            )?;
            write_str(&mut payload, value)?;
        }
        self.append_payload(&payload)
    }

    /// Appends a document-registration record.
    pub(crate) fn append_insert(&mut self, doc: &str, xml: &str) -> io::Result<u64> {
        let mut payload = self.payload_header(TAG_INSERT)?;
        write_str(&mut payload, doc)?;
        write_str(&mut payload, xml)?;
        self.append_payload(&payload)
    }

    /// Appends a document-removal record.
    pub(crate) fn append_remove(&mut self, doc: &str) -> io::Result<u64> {
        let mut payload = self.payload_header(TAG_REMOVE)?;
        write_str(&mut payload, doc)?;
        self.append_payload(&payload)
    }

    /// The group fsync: one durable barrier per coalesced batch.
    pub(crate) fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    /// Drops every record with `seq <= keep_after` (they are covered
    /// by a checkpoint image) by atomically rewriting the log with the
    /// kept suffix: tmp sibling → fsync → rename → directory fsync.
    pub(crate) fn truncate_through(&mut self, keep_after: u64) -> io::Result<()> {
        let bytes = std::fs::read(&self.path)?;
        let (frames, _) = scan(&bytes);
        let mut kept = Vec::new();
        for f in &frames {
            if f.seq > keep_after {
                kept.extend_from_slice(&bytes[f.start..f.end]);
            }
        }
        let dir = self
            .path
            .parent()
            .ok_or_else(|| bad("WAL path has no parent directory"))?
            .to_path_buf();
        let tmp = self.path.with_extension("log.tmp");
        let result = (|| -> io::Result<()> {
            let mut f = File::create(&tmp)?;
            f.write_all(&kept)?;
            f.sync_all()?;
            std::fs::rename(&tmp, &self.path)?;
            fsync_dir(&dir)
        })();
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
            return result;
        }
        // Re-point the append handle at the new file (the rename left
        // the old handle on the unlinked inode).
        self.file = OpenOptions::new().append(true).open(&self.path)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("xvi-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_sync_reopen_round_trips() {
        let dir = scratch("roundtrip");
        let (records, mut wal) = ShardWal::open(&dir, 0).unwrap();
        assert!(records.is_empty());
        wal.append_insert("alpha", "<a/>").unwrap();
        wal.append_commit("alpha", 2, 2, &[(NodeId::from_index(3), "x".to_string())])
            .unwrap();
        wal.append_remove("alpha").unwrap();
        wal.sync().unwrap();
        drop(wal);

        let (records, wal) = ShardWal::open(&dir, 0).unwrap();
        assert_eq!(wal.seq, 3);
        assert_eq!(
            records,
            vec![
                (
                    1,
                    WalRecord::Insert {
                        doc: "alpha".into(),
                        xml: "<a/>".into()
                    }
                ),
                (
                    2,
                    WalRecord::Commit {
                        doc: "alpha".into(),
                        committed: 2,
                        publish_version: 2,
                        writes: vec![(3, "x".into())],
                    }
                ),
                (
                    3,
                    WalRecord::Remove {
                        doc: "alpha".into()
                    }
                ),
            ]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_at_every_prefix() {
        let dir = scratch("torn");
        let (_, mut wal) = ShardWal::open(&dir, 0).unwrap();
        wal.append_insert("doc", "<r>hello</r>").unwrap();
        wal.append_remove("doc").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let path = wal_path(&dir, 0);
        let bytes = std::fs::read(&path).unwrap();
        let (frames, valid) = scan(&bytes);
        assert_eq!(frames.len(), 2);
        assert_eq!(valid, bytes.len());
        let first_end = frames[0].end;

        for cut in 0..bytes.len() {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            let (records, wal) = ShardWal::open(&dir, 0).unwrap();
            let expect = if cut >= bytes.len() {
                2
            } else if cut >= first_end {
                1
            } else {
                0
            };
            assert_eq!(records.len(), expect, "cut at {cut}");
            // The torn tail is physically gone after open.
            drop(wal);
            let kept = std::fs::read(&path).unwrap().len();
            assert!(kept == if expect == 0 { 0 } else { first_end } || kept == bytes.len());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncate_through_keeps_only_newer_records() {
        let dir = scratch("truncate");
        let (_, mut wal) = ShardWal::open(&dir, 1).unwrap();
        for i in 0..5 {
            wal.append_remove(&format!("d{i}")).unwrap();
        }
        wal.sync().unwrap();
        wal.truncate_through(3).unwrap();
        // The handle stays appendable after the rewrite.
        wal.append_remove("post").unwrap();
        wal.sync().unwrap();
        drop(wal);

        let (records, wal) = ShardWal::open(&dir, 1).unwrap();
        let seqs: Vec<u64> = records.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![4, 5, 6]);
        assert_eq!(wal.seq, 6);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flips_invalidate_the_frame() {
        let dir = scratch("bitflip");
        let (_, mut wal) = ShardWal::open(&dir, 0).unwrap();
        wal.append_insert("doc", "<r>payload</r>").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let path = wal_path(&dir, 0);
        let clean = std::fs::read(&path).unwrap();
        for i in 0..clean.len() {
            let mut bytes = clean.clone();
            bytes[i] ^= 0x40;
            std::fs::write(&path, &bytes).unwrap();
            let (records, _) = ShardWal::open(&dir, 0).unwrap();
            assert!(
                records.is_empty(),
                "flip at byte {i} must invalidate the only frame"
            );
            std::fs::write(&path, &clean).unwrap();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
