//! Per-shard write-ahead logging for the [`IndexService`] commit
//! pipeline.
//!
//! Each shard owns one append-only log file (`wal<shard>.log` inside
//! the durability directory). The group-commit leader appends every
//! coalesced per-document batch as **one framed, checksummed record**
//! and issues **one fsync per batch** before publishing, so the
//! durable cost of a commit round is O(batch delta) — independent of
//! catalog or document size. Document registration and removal are
//! logged too, so a crash between checkpoints loses nothing that a
//! committer was told succeeded.
//!
//! ## Frame format
//!
//! ```text
//! [payload len: u32 le][crc32(payload): u32 le][payload]
//! payload := [seq: u64 le][tag: u8][record fields...]
//! ```
//!
//! `seq` is a shard-local, strictly increasing record number; the
//! checkpoint manifest stores the per-shard sequence captured at
//! checkpoint time, and recovery replays only records with a larger
//! sequence. A torn final frame — short header, length running past
//! end-of-file, checksum mismatch, or an undecodable payload — marks
//! the end of the durable prefix: [`ShardWal::open`] truncates the
//! file there and replay proceeds from the valid prefix only.
//!
//! ## Failure handling on the append side
//!
//! Because recovery stops at the *first* bad frame, a torn frame must
//! never end up buried mid-file with good frames appended after it —
//! those later records would be silently discarded even though their
//! fsync was acknowledged. The log therefore tracks the last good
//! frame boundary and reacts to every I/O failure:
//!
//! * a **failed append** (short write, `ENOSPC`, `EIO`) cuts the file
//!   back to the last good boundary through a fresh descriptor and
//!   reopens the append handle before any further record is accepted;
//! * a **failed fsync poisons the log**: the kernel may have dropped
//!   the dirty pages, and on Linux re-fsyncing the same descriptor can
//!   falsely report success (the "fsyncgate" failure mode), so the
//!   handle is never trusted again — every later append/sync/truncate
//!   fails until the log is reopened (which re-scans the file). The
//!   suffix whose fsync failed was reported *not durable* to its
//!   committers, so it is also scrubbed off the file (best effort,
//!   through a fresh descriptor) lest recovery resurrect a commit that
//!   was reported as failed;
//! * a checkpoint rewrite that fails after its rename may have left
//!   the append handle on the unlinked inode, so it poisons the log
//!   too rather than appending records that no open() would ever see.
//!
//! ## Crash safety of the files themselves
//!
//! Appends go to a pre-existing file, so only `File::sync_data` is
//! needed per batch. Creating a fresh log and rewriting one during
//! checkpoint truncation both follow the same discipline as
//! `persist.rs`: write a `.tmp` sibling, fsync it, rename over the
//! final name, then **fsync the parent directory** so the rename
//! itself survives power loss.
//!
//! [`IndexService`]: crate::IndexService

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use xvi_xml::NodeId;

use crate::persist::{bad, read_str, read_u32, read_u64, write_str, write_u32, write_u64};

/// Record tag bytes (part of the on-disk format; never renumber).
const TAG_COMMIT: u8 = 1;
const TAG_INSERT: u8 = 2;
const TAG_REMOVE: u8 = 3;

/// Smallest decodable payload: sequence number plus tag byte.
const MIN_PAYLOAD: usize = 8 + 1;

/// One logical log record, decoded from a frame payload.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum WalRecord {
    /// A published group-commit batch for one document: `committed`
    /// transactions coalesced into `writes`, bringing the document to
    /// `publish_version`.
    Commit {
        doc: String,
        committed: u64,
        publish_version: u64,
        writes: Vec<(u32, String)>,
    },
    /// A document registered under `doc` with serialized content
    /// `xml` (version resets to 0, replacing any previous document).
    Insert { doc: String, xml: String },
    /// The document registered under `doc` was removed.
    Remove { doc: String },
}

/// CRC-32 (IEEE 802.3 polynomial, reflected) — the frame checksum.
const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    !bytes.iter().fold(!0u32, |c, &b| {
        (c >> 8) ^ CRC_TABLE[((c ^ b as u32) & 0xff) as usize]
    })
}

/// Fsyncs a directory so a rename/creation inside it is durable.
/// (On Linux, directory fsync is the documented way to persist the
/// directory entry itself; a plain file fsync does not cover it.)
pub(crate) fn fsync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

fn decode(payload: &[u8]) -> io::Result<(u64, WalRecord)> {
    let mut r = payload;
    let seq = read_u64(&mut r)?;
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    let record = match tag[0] {
        TAG_COMMIT => {
            let doc = read_str(&mut r)?;
            let committed = read_u64(&mut r)?;
            let publish_version = read_u64(&mut r)?;
            let n = read_u32(&mut r)? as usize;
            let mut writes = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                let node = read_u32(&mut r)?;
                let value = read_str(&mut r)?;
                writes.push((node, value));
            }
            WalRecord::Commit {
                doc,
                committed,
                publish_version,
                writes,
            }
        }
        TAG_INSERT => WalRecord::Insert {
            doc: read_str(&mut r)?,
            xml: read_str(&mut r)?,
        },
        TAG_REMOVE => WalRecord::Remove {
            doc: read_str(&mut r)?,
        },
        other => return Err(bad(format!("unknown WAL record tag {other}"))),
    };
    Ok((seq, record))
}

/// One parsed frame plus its byte span in the file — the span lets
/// checkpoint truncation rewrite the kept suffix without re-encoding.
struct RawFrame {
    seq: u64,
    start: usize,
    end: usize,
    record: WalRecord,
}

/// Parses frames from the start of `bytes`, stopping at the first
/// torn or corrupt frame. Returns the frames and the length of the
/// valid prefix (everything past it is an un-fsynced or torn tail to
/// be truncated away).
fn scan(bytes: &[u8]) -> (Vec<RawFrame>, usize) {
    let mut frames = Vec::new();
    let mut off = 0usize;
    // `len` comes from untrusted file bytes and can be up to u32::MAX:
    // all bounds are checked arithmetic so a huge length is an
    // explicit torn tail, not a usize wraparound (which on 32-bit
    // targets would only accidentally degrade to the same outcome).
    while let Some(payload_start) = off.checked_add(8) {
        let Some(header) = bytes.get(off..payload_start) else {
            break;
        };
        let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if len < MIN_PAYLOAD {
            break;
        }
        let Some(end) = payload_start.checked_add(len) else {
            break;
        };
        let Some(payload) = bytes.get(payload_start..end) else {
            break;
        };
        if crc32(payload) != crc {
            break;
        }
        let Ok((seq, record)) = decode(payload) else {
            break;
        };
        frames.push(RawFrame {
            seq,
            start: off,
            end,
            record,
        });
        off = end;
    }
    (frames, off)
}

/// The append side of one shard's log.
#[derive(Debug)]
pub(crate) struct ShardWal {
    file: File,
    path: PathBuf,
    /// Sequence number of the last record appended (or recovered).
    pub(crate) seq: u64,
    /// Logical end of the log: the offset just past the last frame
    /// that was appended whole. A failed append cuts the file back to
    /// this boundary before anything else is accepted, so a torn frame
    /// can never end up buried under later records.
    len: u64,
    /// Prefix confirmed durable by the last successful [`ShardWal::sync`].
    /// A failed fsync scrubs the file back to this boundary: everything
    /// past it was reported *not* durable to its committers.
    synced_len: u64,
    /// Set when the log can no longer be trusted (unrepairable append,
    /// any fsync failure, a half-swapped checkpoint rewrite). Every
    /// later durable operation fails with this message until the log
    /// is reopened via [`ShardWal::open`], which re-scans the file.
    poisoned: Option<String>,
    /// Test-only fault injection: the next appended frame is cut off
    /// after this many bytes and the write reports failure.
    #[cfg(test)]
    pub(crate) fail_append_after: Option<usize>,
    /// Test-only fault injection: the next sync skips the fsync and
    /// reports failure (the appended bytes stay in the file, modelling
    /// "the data may have reached disk anyway").
    #[cfg(test)]
    pub(crate) fail_next_sync: bool,
}

fn wal_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("wal{shard}.log"))
}

impl ShardWal {
    /// Opens (creating if missing) shard `shard`'s log under `dir`,
    /// returning the records of its valid prefix in append order. A
    /// torn tail — any suffix that does not parse as whole, checksummed
    /// frames — is truncated off the file before the append handle is
    /// handed out, so later appends can never bury garbage mid-log.
    pub(crate) fn open(dir: &Path, shard: usize) -> io::Result<(Vec<(u64, WalRecord)>, ShardWal)> {
        let path = wal_path(dir, shard);
        let existed = path.exists();
        let bytes = if existed {
            std::fs::read(&path)?
        } else {
            Vec::new()
        };
        let (frames, valid_len) = scan(&bytes);
        if valid_len < bytes.len() {
            let f = OpenOptions::new().write(true).open(&path)?;
            f.set_len(valid_len as u64)?;
            f.sync_all()?;
        }
        let seq = frames.last().map(|f| f.seq).unwrap_or(0);
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        if !existed {
            // The file's directory entry must survive power loss too.
            file.sync_all()?;
            fsync_dir(dir)?;
        }
        let records = frames.into_iter().map(|f| (f.seq, f.record)).collect();
        Ok((
            records,
            ShardWal {
                file,
                path,
                seq,
                len: valid_len as u64,
                synced_len: valid_len as u64,
                poisoned: None,
                #[cfg(test)]
                fail_append_after: None,
                #[cfg(test)]
                fail_next_sync: false,
            },
        ))
    }

    fn check_usable(&self) -> io::Result<()> {
        match &self.poisoned {
            Some(msg) => Err(io::Error::other(format!(
                "shard WAL poisoned, reopen to recover: {msg}"
            ))),
            None => Ok(()),
        }
    }

    fn write_frame(&mut self, frame: &[u8]) -> io::Result<()> {
        #[cfg(test)]
        if let Some(cut) = self.fail_append_after.take() {
            let cut = cut.min(frame.len());
            self.file.write_all(&frame[..cut])?;
            return Err(io::Error::other("injected append fault"));
        }
        self.file.write_all(frame)
    }

    /// A failed append may have left a torn frame past `self.len`.
    /// Cuts the file back to the last good frame boundary (through a
    /// fresh descriptor — the failed one may be wedged) and reopens
    /// the append handle; if the cut itself fails, the log is poisoned
    /// so nothing can ever be appended after the garbage.
    fn rewind_torn_append(&mut self, cause: &io::Error) {
        let repaired = (|| -> io::Result<()> {
            let f = OpenOptions::new().write(true).open(&self.path)?;
            f.set_len(self.len)?;
            f.sync_all()?;
            self.file = OpenOptions::new().append(true).open(&self.path)?;
            Ok(())
        })();
        if let Err(e) = repaired {
            self.poisoned = Some(format!(
                "append failed ({cause}) and the torn frame could not be cut off ({e})"
            ));
        }
    }

    fn append_payload(&mut self, payload: &[u8]) -> io::Result<u64> {
        self.check_usable()?;
        let mut frame = Vec::with_capacity(payload.len() + 8);
        write_u32(
            &mut frame,
            crate::persist::checked_u32(payload.len(), "WAL payload length")?,
        )?;
        write_u32(&mut frame, crc32(payload))?;
        frame.extend_from_slice(payload);
        if let Err(e) = self.write_frame(&frame) {
            self.rewind_torn_append(&e);
            return Err(e);
        }
        // Only now does the record exist: a failed append consumes
        // neither log space nor a sequence number.
        self.len += frame.len() as u64;
        self.seq += 1;
        Ok(self.seq)
    }

    /// Starts a payload for the record that would carry the *next*
    /// sequence number; [`ShardWal::append_payload`] claims the number
    /// only once the frame is fully in the file.
    fn payload_header(&self, tag: u8) -> io::Result<Vec<u8>> {
        let mut payload = Vec::new();
        write_u64(&mut payload, self.seq + 1)?;
        payload.push(tag);
        Ok(payload)
    }

    /// Appends one coalesced commit batch (no fsync — call
    /// [`ShardWal::sync`] once per batch).
    pub(crate) fn append_commit(
        &mut self,
        doc: &str,
        committed: u64,
        publish_version: u64,
        writes: &[(NodeId, String)],
    ) -> io::Result<u64> {
        let mut payload = self.payload_header(TAG_COMMIT)?;
        write_str(&mut payload, doc)?;
        write_u64(&mut payload, committed)?;
        write_u64(&mut payload, publish_version)?;
        write_u32(
            &mut payload,
            crate::persist::checked_u32(writes.len(), "write count")?,
        )?;
        for (node, value) in writes {
            write_u32(
                &mut payload,
                crate::persist::checked_u32(node.index(), "node id")?,
            )?;
            write_str(&mut payload, value)?;
        }
        self.append_payload(&payload)
    }

    /// Appends a document-registration record.
    pub(crate) fn append_insert(&mut self, doc: &str, xml: &str) -> io::Result<u64> {
        let mut payload = self.payload_header(TAG_INSERT)?;
        write_str(&mut payload, doc)?;
        write_str(&mut payload, xml)?;
        self.append_payload(&payload)
    }

    /// Appends a document-removal record.
    pub(crate) fn append_remove(&mut self, doc: &str) -> io::Result<u64> {
        let mut payload = self.payload_header(TAG_REMOVE)?;
        write_str(&mut payload, doc)?;
        self.append_payload(&payload)
    }

    /// The group fsync: one durable barrier per coalesced batch.
    ///
    /// A failure here **poisons the log** (see the module docs): the
    /// error is reported to every committer of the batch as
    /// not-durable, the un-acked suffix is scrubbed off the file so
    /// recovery cannot resurrect it, and no further append/sync
    /// succeeds on this handle — the caller must reopen to recover.
    pub(crate) fn sync(&mut self) -> io::Result<()> {
        self.check_usable()?;
        #[cfg(test)]
        let result = if std::mem::take(&mut self.fail_next_sync) {
            Err(io::Error::other("injected fsync fault"))
        } else {
            self.file.sync_data()
        };
        #[cfg(not(test))]
        let result = self.file.sync_data();
        match result {
            Ok(()) => {
                self.synced_len = self.len;
                Ok(())
            }
            Err(e) => {
                // Best effort: the suffix past `synced_len` was just
                // reported NOT durable, but its pages may have reached
                // disk before the failure — truncate it away through a
                // fresh descriptor (the failed one can falsely ack a
                // retried fsync) so a commit reported as failed is not
                // replayed as durable on recovery.
                let _ = (|| -> io::Result<()> {
                    let f = OpenOptions::new().write(true).open(&self.path)?;
                    f.set_len(self.synced_len)?;
                    f.sync_all()
                })();
                self.len = self.synced_len;
                self.poisoned = Some(format!("fsync failed: {e}"));
                Err(e)
            }
        }
    }

    /// Drops every record with `seq <= keep_after` (they are covered
    /// by a checkpoint image) by atomically rewriting the log with the
    /// kept suffix: tmp sibling → fsync → rename → directory fsync.
    pub(crate) fn truncate_through(&mut self, keep_after: u64) -> io::Result<()> {
        self.check_usable()?;
        let bytes = std::fs::read(&self.path)?;
        let (frames, _) = scan(&bytes);
        let mut kept = Vec::new();
        for f in &frames {
            if f.seq > keep_after {
                kept.extend_from_slice(&bytes[f.start..f.end]);
            }
        }
        let dir = self
            .path
            .parent()
            .ok_or_else(|| bad("WAL path has no parent directory"))?
            .to_path_buf();
        let tmp = self.path.with_extension("log.tmp");
        // Stage the kept suffix first: a failure here leaves the live
        // log (and the append handle) completely untouched.
        if let Err(e) = (|| -> io::Result<()> {
            let mut f = File::create(&tmp)?;
            f.write_all(&kept)?;
            f.sync_all()
        })() {
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
        // Swap it in and re-point the append handle at the new file
        // (the rename leaves the old handle on the unlinked inode). A
        // failure anywhere in the swap poisons the log: the handle may
        // now point at an inode no future open() will ever read, so
        // appending further records would silently lose them.
        let swapped = (|| -> io::Result<()> {
            std::fs::rename(&tmp, &self.path)?;
            fsync_dir(&dir)?;
            self.file = OpenOptions::new().append(true).open(&self.path)?;
            Ok(())
        })();
        match swapped {
            Ok(()) => {
                self.len = kept.len() as u64;
                self.synced_len = self.len;
                Ok(())
            }
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                self.poisoned = Some(format!("checkpoint log rewrite failed mid-swap: {e}"));
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("xvi-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_sync_reopen_round_trips() {
        let dir = scratch("roundtrip");
        let (records, mut wal) = ShardWal::open(&dir, 0).unwrap();
        assert!(records.is_empty());
        wal.append_insert("alpha", "<a/>").unwrap();
        wal.append_commit("alpha", 2, 2, &[(NodeId::from_index(3), "x".to_string())])
            .unwrap();
        wal.append_remove("alpha").unwrap();
        wal.sync().unwrap();
        drop(wal);

        let (records, wal) = ShardWal::open(&dir, 0).unwrap();
        assert_eq!(wal.seq, 3);
        assert_eq!(
            records,
            vec![
                (
                    1,
                    WalRecord::Insert {
                        doc: "alpha".into(),
                        xml: "<a/>".into()
                    }
                ),
                (
                    2,
                    WalRecord::Commit {
                        doc: "alpha".into(),
                        committed: 2,
                        publish_version: 2,
                        writes: vec![(3, "x".into())],
                    }
                ),
                (
                    3,
                    WalRecord::Remove {
                        doc: "alpha".into()
                    }
                ),
            ]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_at_every_prefix() {
        let dir = scratch("torn");
        let (_, mut wal) = ShardWal::open(&dir, 0).unwrap();
        wal.append_insert("doc", "<r>hello</r>").unwrap();
        wal.append_remove("doc").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let path = wal_path(&dir, 0);
        let bytes = std::fs::read(&path).unwrap();
        let (frames, valid) = scan(&bytes);
        assert_eq!(frames.len(), 2);
        assert_eq!(valid, bytes.len());
        let first_end = frames[0].end;

        for cut in 0..bytes.len() {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            let (records, wal) = ShardWal::open(&dir, 0).unwrap();
            let expect = if cut >= bytes.len() {
                2
            } else if cut >= first_end {
                1
            } else {
                0
            };
            assert_eq!(records.len(), expect, "cut at {cut}");
            // The torn tail is physically gone after open.
            drop(wal);
            let kept = std::fs::read(&path).unwrap().len();
            assert!(kept == if expect == 0 { 0 } else { first_end } || kept == bytes.len());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncate_through_keeps_only_newer_records() {
        let dir = scratch("truncate");
        let (_, mut wal) = ShardWal::open(&dir, 1).unwrap();
        for i in 0..5 {
            wal.append_remove(&format!("d{i}")).unwrap();
        }
        wal.sync().unwrap();
        wal.truncate_through(3).unwrap();
        // The handle stays appendable after the rewrite.
        wal.append_remove("post").unwrap();
        wal.sync().unwrap();
        drop(wal);

        let (records, wal) = ShardWal::open(&dir, 1).unwrap();
        let seqs: Vec<u64> = records.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![4, 5, 6]);
        assert_eq!(wal.seq, 6);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A failed append (at every torn prefix length) must leave the
    /// file at the last good frame boundary, consume no sequence
    /// number, and keep the log usable — later records land after the
    /// good prefix, never after buried garbage.
    #[test]
    fn failed_append_is_cut_off_and_the_log_stays_usable() {
        let dir = scratch("append-fault");
        let (_, mut wal) = ShardWal::open(&dir, 0).unwrap();
        wal.append_remove("before").unwrap();
        wal.sync().unwrap();
        let clean_len = std::fs::metadata(wal_path(&dir, 0)).unwrap().len();
        for torn in 0..(clean_len as usize + 8) {
            wal.fail_append_after = Some(torn);
            let err = wal.append_remove("torn").unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::Other, "cut at {torn}");
            assert_eq!(
                std::fs::metadata(wal_path(&dir, 0)).unwrap().len(),
                clean_len,
                "torn frame (cut at {torn}) must be physically gone"
            );
        }
        assert_eq!(
            wal.seq, 1,
            "failed appends must not consume sequence numbers"
        );
        wal.append_remove("after").unwrap();
        wal.sync().unwrap();
        drop(wal);

        let (records, wal) = ShardWal::open(&dir, 0).unwrap();
        assert_eq!(
            records,
            vec![
                (
                    1,
                    WalRecord::Remove {
                        doc: "before".into()
                    }
                ),
                (
                    2,
                    WalRecord::Remove {
                        doc: "after".into()
                    }
                ),
            ]
        );
        assert_eq!(wal.seq, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A failed fsync poisons the log — every later durable operation
    /// fails until reopen — and scrubs the un-acked suffix, so a
    /// record whose sync was reported as failed is never replayed as
    /// durable.
    #[test]
    fn failed_fsync_poisons_the_log_and_scrubs_the_unacked_suffix() {
        let dir = scratch("sync-fault");
        let (_, mut wal) = ShardWal::open(&dir, 0).unwrap();
        wal.append_remove("durable").unwrap();
        wal.sync().unwrap();
        wal.append_remove("unacked").unwrap();
        wal.fail_next_sync = true;
        assert!(wal.sync().is_err());
        // Poisoned: appends, syncs and checkpoint rewrites all refuse.
        assert!(wal.append_remove("later").is_err());
        assert!(wal.sync().is_err());
        assert!(wal.truncate_through(0).is_err());
        drop(wal);

        let (records, _) = ShardWal::open(&dir, 0).unwrap();
        assert_eq!(
            records,
            vec![(
                1,
                WalRecord::Remove {
                    doc: "durable".into()
                }
            )],
            "the record whose fsync failed must not be resurrected"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flips_invalidate_the_frame() {
        let dir = scratch("bitflip");
        let (_, mut wal) = ShardWal::open(&dir, 0).unwrap();
        wal.append_insert("doc", "<r>payload</r>").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let path = wal_path(&dir, 0);
        let clean = std::fs::read(&path).unwrap();
        for i in 0..clean.len() {
            let mut bytes = clean.clone();
            bytes[i] ^= 0x40;
            std::fs::write(&path, &bytes).unwrap();
            let (records, _) = ShardWal::open(&dir, 0).unwrap();
            assert!(
                records.is_empty(),
                "flip at byte {i} must invalidate the only frame"
            );
            std::fs::write(&path, &clean).unwrap();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
