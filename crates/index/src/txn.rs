//! Commutative transaction commits (paper §5.1).
//!
//! The challenge: every text update changes the hash of *all* its
//! ancestors, so naive locking would serialise every transaction on
//! the root. The paper's observation is that because the combination
//! function `C` is associative and ancestors are recomputed *from
//! their children's stored values*, index maintenance commutes: no
//! ancestor needs to be locked while a transaction runs. A committing
//! transaction re-reads the latest values of the affected ancestors
//! (and their direct children) and recomputes — and whatever order
//! concurrent commits interleave in, the final hashes are the ones a
//! serial execution would produce.
//!
//! [`TransactionalStore`] realises that protocol for the common
//! single-document case. It is a thin facade over
//! [`IndexService`] — one shard, one document —
//! so commits flow through the same group-commit pipeline and reads
//! are the same lock-free snapshots as in the multi-document service.
//! The commutativity property itself — *any* commit order yields
//! identical indices — is what the tests pin down.

use xvi_xml::{Document, NodeId};

use crate::config::IndexConfig;
use crate::error::IndexError;
use crate::manager::IndexManager;
use crate::service::{CommitReceipt, CommitTicket, IndexService, ServiceConfig};

/// The catalog id the facade registers its single document under.
const DOC_ID: &str = "doc";

/// A single document plus its indices behind the service's commit
/// pipeline and snapshot machinery.
#[derive(Debug)]
pub struct TransactionalStore {
    service: IndexService,
}

/// A buffered batch of value updates; created by
/// [`TransactionalStore::begin`] (or
/// [`IndexService::begin`](crate::IndexService::begin)), applied
/// atomically on commit.
#[derive(Debug, Default, Clone)]
pub struct Transaction {
    pub(crate) writes: Vec<(NodeId, String)>,
    /// Position of each node's buffered write in `writes`, so
    /// re-writing a node is O(1) instead of a scan (bulk transactions
    /// stay linear in their write count).
    slot_of: std::collections::HashMap<NodeId, usize>,
}

impl Transaction {
    /// Buffers a value write. No locks are taken and no ancestor is
    /// touched — maintenance is deferred to commit.
    ///
    /// Writing the same node twice is **last-write-wins**: the earlier
    /// buffered value is replaced (first-write position kept), so a
    /// transaction never carries more entries than distinct target
    /// nodes and batches shrink *before* they reach the group-commit
    /// leader.
    pub fn set_value(&mut self, node: NodeId, value: impl Into<String>) {
        let value = value.into();
        match self.slot_of.entry(node) {
            std::collections::hash_map::Entry::Occupied(e) => {
                self.writes[*e.get()].1 = value;
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(self.writes.len());
                self.writes.push((node, value));
            }
        }
    }

    /// Number of buffered writes.
    pub fn len(&self) -> usize {
        self.writes.len()
    }

    /// Whether the transaction buffers no writes.
    pub fn is_empty(&self) -> bool {
        self.writes.is_empty()
    }
}

impl TransactionalStore {
    /// Builds the store and its indices from a document.
    pub fn new(doc: Document, config: IndexConfig) -> TransactionalStore {
        let service = IndexService::new(ServiceConfig::with_shards(1).with_index(config));
        service.insert_document(DOC_ID, doc);
        TransactionalStore { service }
    }

    /// Starts a transaction. Read operations remain available to
    /// everyone; nothing is locked by an open transaction.
    pub fn begin(&self) -> Transaction {
        self.service.begin()
    }

    /// Commits a transaction through the group-commit pipeline:
    /// applies the buffered writes and repairs all affected ancestors
    /// from the *latest* committed state, per the paper's protocol.
    /// Blocks until published; equivalent to `submit(txn).wait()`.
    pub fn commit(&self, txn: Transaction) -> Result<CommitReceipt, IndexError> {
        self.service.commit(DOC_ID, txn)
    }

    /// Enqueues a transaction without blocking, returning a
    /// [`CommitTicket`] so several commits can be kept in flight (see
    /// [`IndexService::submit`]).
    pub fn submit(&self, txn: Transaction) -> CommitTicket<'_> {
        self.service.submit(DOC_ID, txn)
    }

    /// Runs a read-only closure over a lock-free snapshot of the
    /// document and indices.
    pub fn read<R>(&self, f: impl FnOnce(&Document, &IndexManager) -> R) -> R {
        self.service
            .read(DOC_ID, f)
            .expect("the store's document is always registered")
    }

    /// Number of committed transactions.
    pub fn commit_count(&self) -> u64 {
        self.service.commit_count()
    }

    /// Consumes the store, returning the document and indices.
    pub fn into_parts(self) -> (Document, IndexManager) {
        self.service
            .remove_document(DOC_ID)
            .expect("the store's document is always registered")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Lookup;
    use std::sync::Arc;
    use xvi_xml::NodeKind;

    const DOC: &str = "<person><name><first>Arthur</first><family>Dent</family></name>\
                       <age>42</age></person>";

    fn text_node(doc: &Document, content: &str) -> NodeId {
        doc.descendants(doc.document_node())
            .find(|&n| matches!(doc.kind(n), NodeKind::Text(t) if t == content))
            .unwrap()
    }

    fn fingerprint(store: &TransactionalStore) -> Vec<Option<u32>> {
        store.read(|doc, idx| {
            doc.descendants_or_self(doc.document_node())
                .map(|n| idx.hash_of(n).map(|h| h.raw()))
                .collect()
        })
    }

    #[test]
    fn single_transaction_commit() {
        let doc = Document::parse(DOC).unwrap();
        let first = text_node(&doc, "Arthur");
        let store = TransactionalStore::new(doc, IndexConfig::default());

        let mut t = store.begin();
        assert!(t.is_empty());
        t.set_value(first, "Ford");
        assert_eq!(t.len(), 1);
        assert_eq!(store.commit(t).unwrap().applied, 1);
        assert_eq!(store.commit_count(), 1);

        store.read(|doc, idx| {
            assert_eq!(idx.query(doc, &Lookup::equi("FordDent")).unwrap().len(), 1);
            idx.verify_against(doc).unwrap();
        });
    }

    #[test]
    fn empty_commit_is_free() {
        let doc = Document::parse(DOC).unwrap();
        let store = TransactionalStore::new(doc, IndexConfig::default());
        assert_eq!(store.commit(store.begin()).unwrap().applied, 0);
        assert_eq!(store.commit_count(), 0);
    }

    /// §5.1's claim, directly: two transactions touching *sibling*
    /// leaves (both affecting the same ancestors, including the root)
    /// produce identical final indices regardless of commit order.
    #[test]
    fn commit_order_does_not_matter() {
        let run = |first_order: bool| {
            let doc = Document::parse(DOC).unwrap();
            let a = text_node(&doc, "Arthur");
            let d = text_node(&doc, "Dent");
            let store = TransactionalStore::new(doc, IndexConfig::default());
            let mut t1 = store.begin();
            t1.set_value(a, "Ford");
            let mut t2 = store.begin();
            t2.set_value(d, "Prefect");
            if first_order {
                store.commit(t1).unwrap();
                store.commit(t2).unwrap();
            } else {
                store.commit(t2).unwrap();
                store.commit(t1).unwrap();
            }
            store.read(|doc, idx| idx.verify_against(doc).unwrap());
            fingerprint(&store)
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn concurrent_commits_converge() {
        let doc = Document::parse(DOC).unwrap();
        let a = text_node(&doc, "Arthur");
        let d = text_node(&doc, "Dent");
        let g = text_node(&doc, "42");
        let store = Arc::new(TransactionalStore::new(doc, IndexConfig::default()));

        let handles: Vec<_> = [(a, "Zaphod"), (d, "Beeblebrox"), (g, "200")]
            .into_iter()
            .map(|(node, val)| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    let mut t = store.begin();
                    t.set_value(node, val);
                    store.commit(t).unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        assert_eq!(store.commit_count(), 3);
        store.read(|doc, idx| {
            assert_eq!(
                idx.query(doc, &Lookup::equi("ZaphodBeeblebrox"))
                    .unwrap()
                    .len(),
                1
            );
            assert!(
                idx.query(doc, &Lookup::range_f64(199.0..201.0))
                    .unwrap()
                    .len()
                    >= 2
            );
            idx.verify_against(doc).unwrap();
        });
    }

    #[test]
    fn conflicting_writes_last_commit_wins() {
        let doc = Document::parse(DOC).unwrap();
        let a = text_node(&doc, "Arthur");
        let store = TransactionalStore::new(doc, IndexConfig::default());

        let mut t1 = store.begin();
        t1.set_value(a, "Ford");
        let mut t2 = store.begin();
        t2.set_value(a, "Zaphod");
        store.commit(t1).unwrap();
        store.commit(t2).unwrap();

        store.read(|doc, idx| {
            assert!(idx
                .query(doc, &Lookup::equi("FordDent"))
                .unwrap()
                .is_empty());
            assert_eq!(
                idx.query(doc, &Lookup::equi("ZaphodDent")).unwrap().len(),
                1
            );
            idx.verify_against(doc).unwrap();
        });
    }

    #[test]
    fn one_transaction_with_many_writes_is_atomicish() {
        let doc = Document::parse(DOC).unwrap();
        let a = text_node(&doc, "Arthur");
        let d = text_node(&doc, "Dent");
        let g = text_node(&doc, "42");
        let store = TransactionalStore::new(doc, IndexConfig::default());

        let mut t = store.begin();
        t.set_value(a, "Tricia");
        t.set_value(d, "McMillan");
        t.set_value(g, "30");
        assert_eq!(store.commit(t).unwrap().applied, 3);
        store.read(|doc, idx| {
            assert_eq!(
                idx.query(doc, &Lookup::equi("TriciaMcMillan"))
                    .unwrap()
                    .len(),
                1
            );
            assert!(
                idx.query(doc, &Lookup::range_f64(29.5..30.5))
                    .unwrap()
                    .len()
                    >= 2
            );
            idx.verify_against(doc).unwrap();
        });
    }

    /// Satellite fix: writing the same node twice in one transaction
    /// must keep only the last value — the batch shrinks *before* it
    /// reaches the group-commit leader instead of relying on
    /// downstream coalescing order.
    #[test]
    fn same_node_twice_is_last_write_wins() {
        let doc = Document::parse(DOC).unwrap();
        let a = text_node(&doc, "Arthur");
        let d = text_node(&doc, "Dent");
        let store = TransactionalStore::new(doc, IndexConfig::default());

        let mut t = store.begin();
        t.set_value(a, "Ford");
        t.set_value(d, "Prefect");
        t.set_value(a, "Zaphod");
        t.set_value(a, "Tricia");
        // Two buffered entries for two distinct nodes, not four.
        assert_eq!(t.len(), 2);
        assert_eq!(store.commit(t).unwrap().applied, 2);
        store.read(|doc, idx| {
            assert_eq!(
                idx.query(doc, &Lookup::equi("TriciaPrefect"))
                    .unwrap()
                    .len(),
                1
            );
            assert!(idx
                .query(doc, &Lookup::equi("FordPrefect"))
                .unwrap()
                .is_empty());
            idx.verify_against(doc).unwrap();
        });
    }

    #[test]
    fn into_parts_returns_the_final_state() {
        let doc = Document::parse(DOC).unwrap();
        let a = text_node(&doc, "Arthur");
        let store = TransactionalStore::new(doc, IndexConfig::default());
        let mut t = store.begin();
        t.set_value(a, "Random");
        store.commit(t).unwrap();
        let (doc, idx) = store.into_parts();
        assert_eq!(
            idx.query(&doc, &Lookup::equi("RandomDent")).unwrap().len(),
            1
        );
    }

    #[test]
    fn reads_see_committed_state_only() {
        let doc = Document::parse(DOC).unwrap();
        let a = text_node(&doc, "Arthur");
        let store = TransactionalStore::new(doc, IndexConfig::default());
        let mut t = store.begin();
        t.set_value(a, "Ford");
        // Not yet committed: reads still see Arthur.
        store.read(|doc, idx| {
            assert_eq!(
                idx.query(doc, &Lookup::equi("ArthurDent")).unwrap().len(),
                1
            );
        });
        store.commit(t).unwrap();
        store.read(|doc, idx| {
            assert!(idx
                .query(doc, &Lookup::equi("ArthurDent"))
                .unwrap()
                .is_empty());
        });
    }
}
