//! Index configuration.

use xvi_fsm::XmlType;

/// Which indices to build. The defaults mirror the paper's evaluation:
/// the string equi-index plus a double range index, covering the whole
/// document with no path or type declarations (the "self-tuned"
/// property of §1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexConfig {
    /// Build the string equi-lookup index.
    pub string_index: bool,
    /// Typed range indices to build, one per type.
    pub typed: Vec<XmlType>,
    /// Build the trigram substring/wildcard index (the paper's §7
    /// future-work extension; off by default, as in the paper).
    pub substring_index: bool,
}

impl Default for IndexConfig {
    fn default() -> Self {
        IndexConfig {
            string_index: true,
            typed: vec![XmlType::Double],
            substring_index: false,
        }
    }
}

impl IndexConfig {
    /// String index only.
    pub fn string_only() -> IndexConfig {
        IndexConfig {
            string_index: true,
            typed: vec![],
            substring_index: false,
        }
    }

    /// Typed indices only (no string index).
    pub fn typed_only(types: &[XmlType]) -> IndexConfig {
        IndexConfig {
            string_index: false,
            typed: types.to_vec(),
            substring_index: false,
        }
    }

    /// String index plus the given typed indices.
    pub fn with_types(types: &[XmlType]) -> IndexConfig {
        IndexConfig {
            string_index: true,
            typed: types.to_vec(),
            substring_index: false,
        }
    }

    /// Enables the trigram substring/wildcard index.
    pub fn with_substring_index(mut self) -> IndexConfig {
        self.substring_index = true;
        self
    }

    /// Everything the crate supports.
    pub fn all() -> IndexConfig {
        IndexConfig {
            string_index: true,
            typed: XmlType::ALL.to_vec(),
            substring_index: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_string_plus_double() {
        let c = IndexConfig::default();
        assert!(c.string_index);
        assert_eq!(c.typed, vec![XmlType::Double]);
    }

    #[test]
    fn constructors() {
        assert!(IndexConfig::string_only().typed.is_empty());
        let t = IndexConfig::typed_only(&[XmlType::DateTime]);
        assert!(!t.string_index);
        assert_eq!(IndexConfig::all().typed.len(), XmlType::ALL.len());
    }
}
