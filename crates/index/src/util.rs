//! Small utilities shared across the index implementation.

/// A totally ordered `f64` for use as a B+tree key.
///
/// The lexical FSMs never produce NaN (no `NaN` literal in the paper's
/// double language), but the ordering is total regardless via IEEE-754
/// `total_cmp`, so the tree cannot be corrupted by odd inputs.
///
/// Equality is defined through the same `total_cmp`, NOT `f64::eq`:
/// under `total_cmp` the values `-0.0` and `0.0` are *distinct*, and a
/// key type whose `Eq` disagrees with its `Ord` silently corrupts
/// search trees (an entry stored under `-0.0` would be "equal" to but
/// unreachable from `0.0`).
#[derive(Debug, Clone, Copy)]
pub struct OrdF64(pub f64);

impl PartialEq for OrdF64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0).is_eq()
    }
}

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl From<f64> for OrdF64 {
    fn from(v: f64) -> Self {
        OrdF64(v)
    }
}

/// Hashes the raw IEEE-754 bits, which is exactly the equivalence that
/// `total_cmp`-based `Eq` defines (`-0.0` and `0.0` hash differently,
/// matching their inequality above) — so `Hash` agrees with `Eq` as
/// the B+tree's monoid summaries require.
impl std::hash::Hash for OrdF64 {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total_and_numeric() {
        let mut v = vec![OrdF64(2.0), OrdF64(-1.0), OrdF64(0.0), OrdF64(1.5)];
        v.sort();
        assert_eq!(v, vec![OrdF64(-1.0), OrdF64(0.0), OrdF64(1.5), OrdF64(2.0)]);
    }

    #[test]
    fn negative_zero_sorts_before_positive_zero() {
        assert!(OrdF64(-0.0) < OrdF64(0.0), "total_cmp distinguishes zeros");
        // Eq must agree with Ord — the invariant search trees rely on.
        assert_ne!(OrdF64(-0.0), OrdF64(0.0));
        assert_eq!(OrdF64(1.5), OrdF64(1.5));
    }

    #[test]
    fn hash_agrees_with_eq() {
        fn h(v: OrdF64) -> u64 {
            use std::hash::{Hash, Hasher};
            let mut s = std::collections::hash_map::DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        }
        assert_eq!(h(OrdF64(1.5)), h(OrdF64(1.5)));
        // Distinct under Eq (total_cmp) ⇒ allowed (and here, guaranteed)
        // to hash differently: the bit patterns differ.
        assert_ne!(h(OrdF64(-0.0)), h(OrdF64(0.0)));
    }
}
