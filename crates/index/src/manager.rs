//! The index manager: ownership of all indices over one document,
//! lookups, and the maintenance algorithms of paper §5.

use std::collections::HashSet;

use xvi_fsm::{StateId, XmlType};
use xvi_hash::{combine, hash_str, HashValue};
use xvi_xml::{Document, NodeId, NodeKind};

use crate::config::IndexConfig;
use crate::create::index_subtree;
use crate::error::IndexError;
use crate::lookup::{Bounds, Lookup, QueryResult};
use crate::stats::{CardinalityEstimate, RootSummary, Statistics};
use crate::string_index::StringIndex;
use crate::substring::SubstringIndex;
use crate::typed_index::TypedIndex;

/// All value indices over one [`Document`].
///
/// Build once with [`IndexManager::build`] (paper Figure 7), then keep
/// it in sync through [`IndexManager::update_value`],
/// [`IndexManager::update_values`], [`IndexManager::delete_subtree`]
/// and [`IndexManager::index_new_subtree`] (paper Figure 8); every
/// lookup flavor goes through the one generic entry point,
/// [`IndexManager::query`], with a typed [`Lookup`] request.
///
/// ```
/// use xvi_index::{IndexConfig, IndexManager, Lookup};
/// use xvi_xml::Document;
///
/// let doc = Document::parse(
///     "<person><name><first>Arthur</first><family>Dent</family></name></person>").unwrap();
/// let idx = IndexManager::build(&doc, IndexConfig::default());
/// // The paper's query: //*[fn:data(name)="ArthurDent"] — elements
/// // whose *concatenated* string value matches. In this minimal
/// // document that is <name>, <person>, and the document node, since
/// // they all concatenate to the same text.
/// let hits = idx.query(&doc, &Lookup::equi("ArthurDent")).unwrap();
/// assert_eq!(hits.len(), 3);
/// assert!(hits.iter().any(|&n| doc.name(n) == Some("name")));
/// ```
#[derive(Debug, Clone)]
pub struct IndexManager {
    config: IndexConfig,
    string: Option<StringIndex>,
    typed: Vec<TypedIndex>,
    substring: Option<SubstringIndex>,
}

impl IndexManager {
    /// Builds all configured indices in a single depth-first pass.
    pub fn build(doc: &Document, config: IndexConfig) -> IndexManager {
        let mut string = config
            .string_index
            .then(|| StringIndex::new(doc.arena_size()));
        let mut typed: Vec<TypedIndex> = config.typed.iter().map(|&t| TypedIndex::new(t)).collect();
        // Creation is append-only, so the B+trees are bulk-loaded from
        // sorted entry runs instead of filled by random inserts.
        if let Some(s) = string.as_mut() {
            s.begin_bulk();
        }
        for t in typed.iter_mut() {
            t.begin_bulk();
        }
        index_subtree(doc, doc.document_node(), string.as_mut(), &mut typed);
        if let Some(s) = string.as_mut() {
            s.finish_bulk();
        }
        for t in typed.iter_mut() {
            t.finish_bulk();
        }
        let substring = config.substring_index.then(|| SubstringIndex::build(doc));
        IndexManager {
            config,
            string,
            typed,
            substring,
        }
    }

    /// Creates an index shell with the given configuration but no
    /// computed entries — used by the persistence loader, which then
    /// fills the structures by bulk load.
    pub(crate) fn new_empty(doc: &Document, config: IndexConfig) -> IndexManager {
        IndexManager {
            string: config
                .string_index
                .then(|| StringIndex::new(doc.arena_size())),
            typed: config.typed.iter().map(|&t| TypedIndex::new(t)).collect(),
            substring: None,
            config,
        }
    }

    /// Persistence loader: installs string-index entries.
    pub(crate) fn load_string_entries(
        &mut self,
        entries: Vec<(u32, HashValue)>,
    ) -> std::io::Result<()> {
        let s = self.string.as_mut().expect("string index configured");
        s.load_entries(entries);
        Ok(())
    }

    /// Persistence loader: installs typed-index entries for `ty`.
    pub(crate) fn load_typed_entries(
        &mut self,
        ty: XmlType,
        entries: Vec<(u32, StateId, Option<f64>)>,
    ) -> std::io::Result<()> {
        let idx = self
            .typed
            .iter_mut()
            .find(|t| t.xml_type() == ty)
            .expect("typed index configured");
        idx.load_entries(entries);
        Ok(())
    }

    /// Persistence loader: rebuilds the trigram index from `doc`.
    pub(crate) fn rebuild_substring_index(&mut self, doc: &Document) {
        self.substring = Some(crate::substring::SubstringIndex::build(doc));
    }

    /// The active configuration.
    pub fn config(&self) -> &IndexConfig {
        &self.config
    }

    /// A clone that shares no pages with `self`.
    ///
    /// `IndexManager::clone` is O(pages) pointer bumps thanks to the
    /// paged copy-on-write arenas underneath (B+trees and annotation
    /// columns); this variant detaches every page immediately instead
    /// — the pre-structural-sharing deep copy, kept for archival
    /// snapshots and as the baseline of the `concurrency -- cow`
    /// bench.
    pub fn deep_clone(&self) -> IndexManager {
        IndexManager {
            config: self.config.clone(),
            string: self.string.as_ref().map(|s| s.deep_clone()),
            typed: self.typed.iter().map(|t| t.deep_clone()).collect(),
            substring: self.substring.as_ref().map(|s| s.deep_clone()),
        }
    }

    /// The string equi-index, if configured.
    pub fn string_index(&self) -> Option<&StringIndex> {
        self.string.as_ref()
    }

    /// The trigram substring index, if configured.
    pub fn substring_index(&self) -> Option<&SubstringIndex> {
        self.substring.as_ref()
    }

    /// The typed index for `ty`, if configured.
    pub fn typed_index(&self, ty: XmlType) -> Option<&TypedIndex> {
        self.typed.iter().find(|t| t.xml_type() == ty)
    }

    /// The stored hash of a node's string value.
    pub fn hash_of(&self, node: NodeId) -> Option<HashValue> {
        self.string.as_ref()?.hash_of(node)
    }

    /// The stored FSM state of a node for `ty` (`None` = reject).
    pub fn state_of(&self, ty: XmlType, node: NodeId) -> Option<StateId> {
        self.typed_index(ty)?.state_of(node)
    }

    // ----- lookups ---------------------------------------------------------

    /// Candidate nodes whose string value *hashes* like `value`.
    /// May contain hash-collision false positives — the diagnostic
    /// window into the paper's verification step; verified lookups go
    /// through [`IndexManager::query`].
    ///
    /// # Panics
    /// Panics if the string index is not configured.
    pub fn equi_candidates(&self, value: &str) -> Vec<NodeId> {
        self.string
            .as_ref()
            .expect("string index not configured")
            .candidates(hash_str(value))
    }

    /// Evaluates one typed [`Lookup`] request — the single generic
    /// query entry point covering equality, range, typed, substring,
    /// wildcard and XPath lookups.
    ///
    /// Results are verified against the document (no hash-collision or
    /// trigram false positives) and returned in a deterministic order:
    /// arena order for value lookups, document order for XPath.
    pub fn query(&self, doc: &Document, lookup: &Lookup) -> QueryResult {
        match lookup {
            Lookup::Equi(value) => {
                let string = self
                    .string
                    .as_ref()
                    .ok_or(IndexError::IndexNotConfigured("string"))?;
                Ok(string
                    .candidates(hash_str(value))
                    .into_iter()
                    .filter(|&n| doc.is_live(n) && doc.string_value(n) == *value)
                    .collect())
            }
            Lookup::RangeF64(bounds) => self.typed_range(XmlType::Double, *bounds),
            Lookup::TypedEq(ty, key) => self.typed_range(*ty, Bounds::eq(*key)),
            Lookup::TypedRange(ty, bounds) => self.typed_range(*ty, *bounds),
            Lookup::Contains(needle) => Ok(self.substring()?.contains(doc, needle)),
            Lookup::Wildcard(pattern) => Ok(self.substring()?.matches_wildcard(doc, pattern)),
            Lookup::XPath(q) => Ok(crate::query::QueryEngine::evaluate(doc, self, q)),
        }
    }

    fn typed_range(&self, ty: XmlType, bounds: Bounds) -> QueryResult {
        Ok(self
            .typed_index(ty)
            .ok_or(IndexError::TypeNotIndexed(ty))?
            .range(bounds))
    }

    fn substring(&self) -> Result<&SubstringIndex, IndexError> {
        self.substring
            .as_ref()
            .ok_or(IndexError::IndexNotConfigured("substring"))
    }

    // ----- cardinality estimation -------------------------------------------

    /// Estimates how many candidate nodes evaluating `lookup` would
    /// produce, answered purely from the maintained per-index
    /// structures (no document access, no probe). The same lookups
    /// that [`IndexManager::query`] rejects are rejected here with the
    /// same typed errors.
    ///
    /// Tree-backed lookups — [`Lookup::Equi`], [`Lookup::RangeF64`],
    /// [`Lookup::TypedEq`], [`Lookup::TypedRange`] — are answered
    /// **exactly** (`lower == estimate == upper`) in O(log n) node
    /// visits from the B+trees' interior monoid summaries; for `Equi`
    /// the count covers hash-matching *candidates*, before string
    /// verification. Substring lookups keep their histogram-derived
    /// guaranteed `[lower, upper]` bounds around the point estimate —
    /// the contract the statistics-maintenance property tests pin
    /// down, and what [`QueryEngine`](crate::QueryEngine) ranks
    /// candidate predicates by. A [`Lookup::XPath`] request instead
    /// estimates the *work* of the chosen plan with vacuous bounds
    /// (`[0, usize::MAX]`): a query's result count can fan out beyond
    /// any probe's candidates, so no finite bound would be sound.
    ///
    /// ```
    /// use xvi_index::{Document, IndexConfig, IndexManager, Lookup};
    ///
    /// let doc = Document::parse(
    ///     "<people><p><age>42</age></p><p><age>7</age></p></people>").unwrap();
    /// let idx = IndexManager::build(&doc, IndexConfig::default());
    /// let est = idx.estimate(&Lookup::range_f64(0.0..100.0)).unwrap();
    /// let actual = idx.query(&doc, &Lookup::range_f64(0.0..100.0)).unwrap().len();
    /// assert!(est.lower <= actual && actual <= est.upper);
    /// ```
    pub fn estimate(&self, lookup: &Lookup) -> Result<CardinalityEstimate, IndexError> {
        match lookup {
            Lookup::Equi(value) => Ok(self
                .string
                .as_ref()
                .ok_or(IndexError::IndexNotConfigured("string"))?
                .estimate_equi(hash_str(value))),
            Lookup::RangeF64(bounds) => self.estimate_typed(XmlType::Double, bounds),
            Lookup::TypedEq(ty, key) => self.estimate_typed(*ty, &Bounds::eq(*key)),
            Lookup::TypedRange(ty, bounds) => self.estimate_typed(*ty, bounds),
            Lookup::Contains(needle) => Ok(self.substring()?.estimate_contains(needle)),
            Lookup::Wildcard(pattern) => Ok(self.substring()?.estimate_wildcard(pattern)),
            Lookup::XPath(q) => Ok(crate::query::QueryEngine::estimate_query(self, q)),
        }
    }

    fn estimate_typed(
        &self,
        ty: XmlType,
        bounds: &Bounds,
    ) -> Result<CardinalityEstimate, IndexError> {
        Ok(self
            .typed_index(ty)
            .ok_or(IndexError::TypeNotIndexed(ty))?
            .estimate_range(bounds))
    }

    /// A point-in-time snapshot of every configured index's
    /// statistics (histograms are small; this clones them), plus the
    /// root monoid summary of each tree-backed index — the exact entry
    /// count and key-sequence hash that make "did anything change?"
    /// an O(1) comparison between two snapshots.
    pub fn statistics(&self) -> Statistics {
        Statistics {
            string: self.string.as_ref().map(|s| s.statistics().clone()),
            typed: self
                .typed
                .iter()
                .map(|t| (t.xml_type(), t.statistics().clone()))
                .collect(),
            substring: self.substring.as_ref().map(|s| s.statistics().clone()),
            string_root: self.string.as_ref().map(|s| RootSummary {
                entries: s.len(),
                hash: s.root_hash(),
            }),
            typed_roots: self
                .typed
                .iter()
                .map(|t| {
                    (
                        t.xml_type(),
                        RootSummary {
                            entries: t.stored_values(),
                            hash: t.root_hash(),
                        },
                    )
                })
                .collect(),
        }
    }

    /// Structural [`xvi_btree::TreeStats`] for every tree-backed index
    /// this manager holds, labeled by index kind — the per-kind series
    /// the observability registry's tree collector exports (cache
    /// hit/miss counters, page sharing, COW detach totals).
    pub fn tree_stats_by_kind(&self) -> Vec<(String, xvi_btree::TreeStats)> {
        let mut out = Vec::new();
        if let Some(s) = &self.string {
            out.push(("string".to_string(), s.tree_stats()));
        }
        for t in &self.typed {
            let ty = format!("{:?}", t.xml_type()).to_lowercase();
            out.push((format!("typed_{ty}_value"), t.value_tree_stats()));
            out.push((format!("typed_{ty}_node"), t.node_tree_stats()));
        }
        if let Some(s) = &self.substring {
            out.push(("substring".to_string(), s.tree_stats()));
        }
        out
    }

    /// Total copy-on-write page detaches across every tree-backed
    /// index (cumulative over this manager's mutation lineage; clones
    /// inherit the count). O(1) — cheap enough for the service publish
    /// path to read before and after an update and report "COW pages
    /// detached per publish" as the difference.
    pub fn pages_detached(&self) -> u64 {
        let string = self.string.as_ref().map_or(0, |s| s.pages_detached());
        let typed: u64 = self.typed.iter().map(|t| t.pages_detached()).sum();
        let substring = self.substring.as_ref().map_or(0, |s| s.pages_detached());
        string + typed + substring
    }

    /// A cheap proxy for the document's node population, derived from
    /// the largest configured index — the scale the planner compares
    /// scan costs against.
    pub fn approx_node_count(&self) -> usize {
        let string = self.string.as_ref().map(|s| s.len()).unwrap_or(0);
        let typed = self
            .typed
            .iter()
            .map(|t| t.stored_states())
            .max()
            .unwrap_or(0);
        let substring = self
            .substring
            .as_ref()
            .map(|s| s.indexed_nodes())
            .unwrap_or(0);
        string.max(typed).max(substring)
    }

    // ----- maintenance (paper Figure 8) -------------------------------------

    /// Updates the value of one text or attribute node and repairs all
    /// indices by recombining only the node's ancestors.
    pub fn update_value(
        &mut self,
        doc: &mut Document,
        node: NodeId,
        new_value: &str,
    ) -> Result<(), IndexError> {
        self.update_values(doc, std::iter::once((node, new_value)))
    }

    /// Batch value update. All leaf changes are applied first, then
    /// every affected ancestor is recombined exactly once from its
    /// children's stored hashes/states — the batch equivalent of the
    /// paper's Figure 8 pass over a sequence of updated text nodes.
    pub fn update_values<'a, I>(&mut self, doc: &mut Document, updates: I) -> Result<(), IndexError>
    where
        I: IntoIterator<Item = (NodeId, &'a str)>,
    {
        let mut touched_text_nodes = Vec::new();
        for (node, value) in updates {
            if !doc.is_live(node) {
                return Err(IndexError::DeadNode(node));
            }
            match doc.kind(node) {
                NodeKind::Text(_) => {
                    let old = doc.set_value(node, value);
                    self.reindex_value_node(doc, node);
                    if let Some(sub) = self.substring.as_mut() {
                        sub.replace_value(node, &old, value);
                    }
                    touched_text_nodes.push(node);
                }
                NodeKind::Attribute { .. } => {
                    // Attribute values are indexed but, per XDM, do not
                    // contribute to any element's string value — no
                    // ancestor propagation needed.
                    let old = doc.set_value(node, value);
                    self.reindex_value_node(doc, node);
                    if let Some(sub) = self.substring.as_mut() {
                        sub.replace_value(node, &old, value);
                    }
                }
                _ => return Err(IndexError::NotAValueNode(node)),
            }
        }
        self.recombine_ancestors(doc, &touched_text_nodes);
        Ok(())
    }

    /// Removes the subtree rooted at `node` from the document and all
    /// indices, then repairs the ancestors. Returns the former parent.
    /// (The paper: run the update algorithm with the deleted subtree's
    /// root as an empty-valued context node.)
    pub fn delete_subtree(
        &mut self,
        doc: &mut Document,
        node: NodeId,
    ) -> Result<Option<NodeId>, IndexError> {
        if !doc.is_live(node) {
            return Err(IndexError::DeadNode(node));
        }
        // Drop index entries before the arena frees the nodes; only the
        // stored annotations are read, never the string data.
        let subtree: Vec<NodeId> = doc.descendants_or_self(node).collect();
        for m in subtree {
            for a in doc.attributes(m) {
                if let (Some(sub), Some(v)) = (self.substring.as_mut(), doc.direct_value(a)) {
                    sub.remove_value(a, v);
                }
                self.drop_node(a);
            }
            if let (Some(sub), Some(v)) = (self.substring.as_mut(), doc.direct_value(m)) {
                sub.remove_value(m, v);
            }
            self.drop_node(m);
        }
        let parent = doc.delete_subtree(node);
        if let Some(p) = parent {
            self.recombine_ancestors_from(doc, p);
        }
        Ok(parent)
    }

    /// Indexes a freshly attached subtree (built via the `Document`
    /// construction API) and repairs the ancestors of its root.
    pub fn index_new_subtree(&mut self, doc: &Document, node: NodeId) {
        index_subtree(doc, node, self.string.as_mut(), &mut self.typed);
        if let Some(sub) = self.substring.as_mut() {
            for m in doc.descendants_or_self(node) {
                if let Some(v) = doc.direct_value(m) {
                    sub.add_value(m, v);
                }
                for a in doc.attributes(m) {
                    if let Some(v) = doc.direct_value(a) {
                        sub.add_value(a, v);
                    }
                }
            }
        }
        if let Some(p) = doc.parent(node) {
            self.recombine_ancestors_from(doc, p);
        }
    }

    /// Recomputes the annotations of one value-carrying node after its
    /// stored value changed.
    fn reindex_value_node(&mut self, doc: &Document, node: NodeId) {
        let value = doc.direct_value(node).expect("text or attribute node");
        if let Some(s) = self.string.as_mut() {
            s.set(node, hash_str(value));
        }
        for idx in &mut self.typed {
            let an = idx.analyzer();
            let state = an.state_of(value);
            let key = state
                .filter(|&st| an.is_complete(st))
                .and_then(|_| an.cast(value))
                .map(|v| v.key);
            idx.set(node, state, key);
        }
    }

    fn drop_node(&mut self, node: NodeId) {
        if let Some(s) = self.string.as_mut() {
            s.remove(node);
        }
        for idx in &mut self.typed {
            idx.remove(node);
        }
    }

    /// Recombines every ancestor of the given text nodes, bottom-up,
    /// each exactly once.
    fn recombine_ancestors(&mut self, doc: &Document, updated: &[NodeId]) {
        let mut affected: Vec<(usize, NodeId)> = Vec::new();
        let mut seen: HashSet<NodeId> = HashSet::new();
        for &n in updated {
            let mut cur = doc.parent(n);
            while let Some(p) = cur {
                if !seen.insert(p) {
                    break; // the rest of this chain is already queued
                }
                affected.push((doc.depth(p), p));
                cur = doc.parent(p);
            }
        }
        // Children before parents: recombine deepest first.
        affected.sort_by_key(|&(depth, _)| std::cmp::Reverse(depth));
        for (_, node) in affected {
            self.recombine_node(doc, node);
        }
    }

    fn recombine_ancestors_from(&mut self, doc: &Document, start: NodeId) {
        let mut cur = Some(start);
        while let Some(p) = cur {
            self.recombine_node(doc, p);
            cur = doc.parent(p);
        }
    }

    /// Recomputes one element's (or the document node's) hash and
    /// states from its immediate children's *stored* annotations —
    /// the heart of the paper's update algorithm: no string data is
    /// read unless the node turns out to hold a complete typed value.
    fn recombine_node(&mut self, doc: &Document, node: NodeId) {
        debug_assert!(matches!(
            doc.kind(node),
            NodeKind::Element(_) | NodeKind::Document
        ));
        if let Some(s) = self.string.as_mut() {
            let mut h = HashValue::EMPTY;
            for c in doc.children(node) {
                if let Some(ch) = s.hash_of(c) {
                    h = combine(h, ch);
                }
            }
            s.set(node, h);
        }
        for idx in &mut self.typed {
            let an = idx.analyzer();
            let mut state = Some(an.sct().identity());
            for c in doc.children(node) {
                match doc.kind(c) {
                    NodeKind::Text(_) | NodeKind::Element(_) => {
                        state = an.combine(state, idx.state_of(c));
                        if state.is_none() {
                            break;
                        }
                    }
                    _ => {} // comments/PIs contribute nothing
                }
            }
            let key = state
                .filter(|&st| an.is_complete(st))
                .and_then(|_| an.cast(&doc.string_value(node)))
                .map(|v| v.key);
            idx.set(node, state, key);
        }
    }

    // ----- statistics & verification ----------------------------------------

    /// Storage accounting for the Figure 9 experiment.
    pub fn stats(&self) -> IndexStats {
        IndexStats {
            string_entries: self.string.as_ref().map(|s| s.len()).unwrap_or(0),
            string_bytes: self.string.as_ref().map(|s| s.approx_bytes()).unwrap_or(0),
            typed: self
                .typed
                .iter()
                .map(|t| TypedStats {
                    ty: t.xml_type(),
                    states: t.stored_states(),
                    values: t.stored_values(),
                    bytes: t.approx_bytes(),
                })
                .collect(),
        }
    }

    /// Compares this (incrementally maintained) index against a fresh
    /// rebuild; any divergence is a maintenance bug. Test/debug aid.
    pub fn verify_against(&self, doc: &Document) -> Result<(), String> {
        let fresh = IndexManager::build(doc, self.config.clone());
        let mut nodes: Vec<NodeId> = doc.descendants_or_self(doc.document_node()).collect();
        let attrs: Vec<NodeId> = nodes
            .iter()
            .flat_map(|&n| doc.attributes(n).collect::<Vec<_>>())
            .collect();
        nodes.extend(attrs);
        for &n in &nodes {
            if self.hash_of(n) != fresh.hash_of(n) {
                return Err(format!(
                    "hash mismatch at {n:?}: stored {:?}, fresh {:?} (value {:?})",
                    self.hash_of(n),
                    fresh.hash_of(n),
                    doc.string_value(n)
                ));
            }
            for idx in &self.typed {
                let ty = idx.xml_type();
                let fresh_idx = fresh.typed_index(ty).expect("same config");
                if idx.state_of(n) != fresh_idx.state_of(n) {
                    return Err(format!("{} state mismatch at {n:?}", ty.name()));
                }
                if idx.value_of(n) != fresh_idx.value_of(n) {
                    return Err(format!("{} value mismatch at {n:?}", ty.name()));
                }
            }
        }
        // Entry counts (catches stale entries for freed nodes).
        if let (Some(a), Some(b)) = (&self.string, &fresh.string) {
            if a.len() != b.len() {
                return Err(format!(
                    "string index entry count: stored {}, fresh {}",
                    a.len(),
                    b.len()
                ));
            }
        }
        for idx in &self.typed {
            let f = fresh.typed_index(idx.xml_type()).expect("same config");
            if idx.stored_states() != f.stored_states() || idx.stored_values() != f.stored_values()
            {
                return Err(format!("{} index size mismatch", idx.xml_type().name()));
            }
        }
        if let (Some(a), Some(b)) = (&self.substring, &fresh.substring) {
            if a.postings() != b.postings() || a.indexed_nodes() != b.indexed_nodes() {
                return Err(format!(
                    "substring index mismatch: {}/{} postings, {}/{} nodes",
                    a.postings(),
                    b.postings(),
                    a.indexed_nodes(),
                    b.indexed_nodes()
                ));
            }
        }
        Ok(())
    }
}

/// Per-typed-index storage statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct TypedStats {
    /// The indexed type.
    pub ty: XmlType,
    /// Nodes with a stored (non-reject) state.
    pub states: usize,
    /// Nodes with a complete, range-indexed value.
    pub values: usize,
    /// Approximate heap bytes.
    pub bytes: usize,
}

/// Aggregated storage statistics (Figure 9 accounting).
#[derive(Debug, Clone, PartialEq)]
pub struct IndexStats {
    /// Entries in the string index.
    pub string_entries: usize,
    /// Approximate heap bytes of the string index.
    pub string_bytes: usize,
    /// One entry per typed index.
    pub typed: Vec<TypedStats>,
}

#[cfg(test)]
mod tests {
    use super::*;

    const PERSON: &str = "<person><name><first>Arthur</first><family>Dent</family></name>\
        <birthday>1966-09-26</birthday>\
        <age><decades>4</decades>2<years/></age>\
        <weight><kilos>78</kilos>.<grams>230</grams></weight></person>";

    fn setup() -> (Document, IndexManager) {
        let doc = Document::parse(PERSON).unwrap();
        let idx = IndexManager::build(&doc, IndexConfig::default());
        (doc, idx)
    }

    fn find_text(doc: &Document, content: &str) -> NodeId {
        doc.descendants(doc.document_node())
            .find(|&n| matches!(doc.kind(n), NodeKind::Text(t) if t == content))
            .unwrap()
    }

    fn find_elem(doc: &Document, name: &str) -> NodeId {
        doc.descendants(doc.document_node())
            .find(|&n| doc.name(n) == Some(name))
            .unwrap()
    }

    #[test]
    fn element_hashes_equal_string_value_hashes() {
        let (doc, idx) = setup();
        for n in doc.descendants_or_self(doc.document_node()) {
            if matches!(doc.kind(n), NodeKind::Comment(_) | NodeKind::Pi { .. }) {
                continue;
            }
            assert_eq!(
                idx.hash_of(n),
                Some(hash_str(&doc.string_value(n))),
                "hash annotation of {n:?} ({:?})",
                doc.name(n)
            );
        }
    }

    #[test]
    fn equi_lookup_paper_queries() {
        let (doc, idx) = setup();
        // //person[first/text()="Arthur"] — the text node exists:
        let hits = idx.query(&doc, &Lookup::equi("Arthur")).unwrap();
        assert_eq!(hits.len(), 2); // the text node and its <first> parent
                                   // fn:data(name) = "ArthurDent":
        let hits = idx.query(&doc, &Lookup::equi("ArthurDent")).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(doc.name(hits[0]), Some("name"));
        // The mixed-content <age> has string value "42":
        let hits = idx.query(&doc, &Lookup::equi("42")).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(doc.name(hits[0]), Some("age"));
        // Nothing matches a string that is not a value:
        assert!(idx.query(&doc, &Lookup::equi("Zaphod")).unwrap().is_empty());
    }

    #[test]
    fn range_lookup_respects_mixed_content() {
        let (doc, idx) = setup();
        // <age> concatenates to "42", <weight> to "78.230".
        let hits = idx.query(&doc, &Lookup::range_f64(40.0..=80.0)).unwrap();
        let names: Vec<_> = hits.iter().map(|&n| doc.name(n)).collect();
        assert!(names.contains(&Some("age")));
        assert!(names.contains(&Some("weight")));
        // Text node "78" and element <kilos> also cast to 78.
        assert!(hits.len() >= 4);
        // Degenerate range
        assert!(idx
            .query(&doc, &Lookup::range_f64(1000.0..))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn update_propagates_to_ancestors() {
        let (mut doc, mut idx) = setup();
        let dent = find_text(&doc, "Dent");
        idx.update_value(&mut doc, dent, "Prefect").unwrap();
        assert_eq!(
            doc.string_value(doc.root_element().unwrap()),
            "ArthurPrefect1966-09-264278.230"
        );
        assert!(idx
            .query(&doc, &Lookup::equi("ArthurDent"))
            .unwrap()
            .is_empty());
        let hits = idx.query(&doc, &Lookup::equi("ArthurPrefect")).unwrap();
        assert_eq!(hits.len(), 1);
        idx.verify_against(&doc).unwrap();
    }

    #[test]
    fn numeric_update_moves_range_entries() {
        let (mut doc, mut idx) = setup();
        let two = find_text(&doc, "2");
        // <age> becomes "49".
        idx.update_value(&mut doc, two, "9").unwrap();
        let age = find_elem(&doc, "age");
        let hits = idx.query(&doc, &Lookup::range_f64(48.5..49.5)).unwrap();
        assert!(hits.contains(&age));
        assert!(!idx
            .query(&doc, &Lookup::range_f64(41.5..42.5))
            .unwrap()
            .contains(&age));
        idx.verify_against(&doc).unwrap();
    }

    #[test]
    fn update_can_turn_numbers_into_text_and_back() {
        let (mut doc, mut idx) = setup();
        let kilos_text = find_text(&doc, "78");
        idx.update_value(&mut doc, kilos_text, "heavy").unwrap();
        // weight = "heavy.230" → reject for doubles.
        let weight = find_elem(&doc, "weight");
        assert_eq!(idx.state_of(XmlType::Double, weight), None);
        idx.verify_against(&doc).unwrap();

        idx.update_value(&mut doc, kilos_text, "80").unwrap();
        assert!(idx
            .query(&doc, &Lookup::range_f64(80.0..81.0))
            .unwrap()
            .contains(&weight));
        idx.verify_against(&doc).unwrap();
    }

    #[test]
    fn attribute_updates_do_not_touch_ancestors() {
        let mut doc = Document::parse(r#"<r a="42"><c>x</c></r>"#).unwrap();
        let mut idx = IndexManager::build(&doc, IndexConfig::default());
        let r = doc.root_element().unwrap();
        let attr = doc.attribute(r, "a").unwrap();
        let root_hash_before = idx.hash_of(r);

        idx.update_value(&mut doc, attr, "43").unwrap();
        assert_eq!(idx.hash_of(r), root_hash_before);
        assert_eq!(idx.query(&doc, &Lookup::equi("43")).unwrap(), vec![attr]);
        assert!(idx
            .query(&doc, &Lookup::range_f64(42.5..43.5))
            .unwrap()
            .contains(&attr));
        idx.verify_against(&doc).unwrap();
    }

    #[test]
    fn update_rejects_non_value_nodes() {
        let (mut doc, mut idx) = setup();
        let name = find_elem(&doc, "name");
        let err = idx.update_value(&mut doc, name, "nope").unwrap_err();
        assert!(matches!(err, IndexError::NotAValueNode(_)));
    }

    #[test]
    fn batch_update_recombines_shared_ancestors_once() {
        let (mut doc, mut idx) = setup();
        let arthur = find_text(&doc, "Arthur");
        let dent = find_text(&doc, "Dent");
        idx.update_values(&mut doc, [(arthur, "Ford"), (dent, "Prefect")])
            .unwrap();
        assert_eq!(
            idx.query(&doc, &Lookup::equi("FordPrefect")).unwrap().len(),
            1
        );
        idx.verify_against(&doc).unwrap();
    }

    #[test]
    fn delete_subtree_repairs_indices() {
        let (mut doc, mut idx) = setup();
        let age = find_elem(&doc, "age");
        idx.delete_subtree(&mut doc, age).unwrap();
        assert!(idx.query(&doc, &Lookup::equi("42")).unwrap().is_empty());
        let person = doc.root_element().unwrap();
        assert_eq!(
            idx.hash_of(person),
            Some(hash_str("ArthurDent1966-09-2678.230"))
        );
        idx.verify_against(&doc).unwrap();
    }

    #[test]
    fn insert_subtree_indexes_new_nodes() {
        let (mut doc, mut idx) = setup();
        let person = doc.root_element().unwrap();
        let height = doc.append_element(person, "height");
        doc.append_text(height, "1.85");
        idx.index_new_subtree(&doc, height);
        assert!(idx
            .query(&doc, &Lookup::range_f64(1.8..1.9))
            .unwrap()
            .contains(&height));
        assert_eq!(
            idx.hash_of(person),
            Some(hash_str("ArthurDent1966-09-264278.2301.85"))
        );
        idx.verify_against(&doc).unwrap();
    }

    #[test]
    fn stats_reflect_population() {
        let (_, idx) = setup();
        let s = idx.stats();
        assert!(s.string_entries > 10);
        assert!(s.string_bytes > 0);
        assert_eq!(s.typed.len(), 1);
        assert_eq!(s.typed[0].ty, XmlType::Double);
        // "4","2","78",".","230", age, weight, kilos, grams, decades… —
        // every non-reject node stores a state, completes store values.
        assert!(s.typed[0].states >= 9);
        assert!(s.typed[0].values >= 6);
        assert!(s.typed[0].states >= s.typed[0].values);
    }

    #[test]
    fn multi_type_configuration() {
        let doc =
            Document::parse("<log><when>2008-12-31T23:59:59Z</when><ok>true</ok><n>17</n></log>")
                .unwrap();
        let idx = IndexManager::build(&doc, IndexConfig::all());
        let when = find_elem(&doc, "when");
        let hits = idx
            .query(
                &doc,
                &Lookup::typed_range(XmlType::DateTime, 1.2e12..1.3e12),
            )
            .unwrap();
        assert!(hits.contains(&when));
        let ok = find_elem(&doc, "ok");
        assert!(idx
            .query(&doc, &Lookup::typed_eq(XmlType::Boolean, 1.0))
            .unwrap()
            .contains(&ok));
        let n = find_elem(&doc, "n");
        assert!(idx
            .query(&doc, &Lookup::typed_eq(XmlType::Integer, 17.0))
            .unwrap()
            .contains(&n));
        let err = IndexManager::build(&doc, IndexConfig::string_only())
            .query(&doc, &Lookup::typed_range(XmlType::Double, 0.0..1.0))
            .unwrap_err();
        assert!(matches!(err, IndexError::TypeNotIndexed(_)));
    }

    /// Regression: `-0e0` and `000` cast to `-0.0` / `0.0`, which are
    /// equal under `f64::eq` but *distinct* under the tree's total
    /// order. An update flipping the zero sign must still move the
    /// range-tree entry, or a later removal leaves it stranded.
    #[test]
    fn negative_zero_updates_do_not_strand_entries() {
        let mut doc = Document::parse("<r><v>-0e0</v></r>").unwrap();
        let mut idx = IndexManager::build(&doc, IndexConfig::default());
        let text = find_text(&doc, "-0e0");
        idx.update_value(&mut doc, text, "000").unwrap();
        idx.verify_against(&doc).unwrap();
        idx.update_value(&mut doc, text, "not a number").unwrap();
        idx.verify_against(&doc).unwrap();
        assert!(idx.query(&doc, &Lookup::range_f64(..)).unwrap().is_empty());
    }

    #[test]
    fn substring_index_through_the_manager() {
        let mut doc = Document::parse(PERSON).unwrap();
        let mut idx = IndexManager::build(&doc, IndexConfig::default().with_substring_index());
        // Substring of a stored text value.
        let hits = idx.query(&doc, &Lookup::contains("rthu")).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(doc.string_value(hits[0]), "Arthur");
        // Wildcards over stored values.
        let hits = idx.query(&doc, &Lookup::wildcard("19??-09-*")).unwrap();
        assert_eq!(hits.len(), 1);
        // Updates keep the trigram postings exact.
        let arthur = find_text(&doc, "Arthur");
        idx.update_value(&mut doc, arthur, "Zaphod").unwrap();
        assert!(idx
            .query(&doc, &Lookup::contains("rthu"))
            .unwrap()
            .is_empty());
        assert_eq!(idx.query(&doc, &Lookup::contains("apho")).unwrap().len(), 1);
        idx.verify_against(&doc).unwrap();
        // Deletion drops postings.
        let name = find_elem(&doc, "name");
        idx.delete_subtree(&mut doc, name).unwrap();
        assert!(idx
            .query(&doc, &Lookup::contains("apho"))
            .unwrap()
            .is_empty());
        idx.verify_against(&doc).unwrap();
        // Insertion adds postings.
        let person = doc.root_element().unwrap();
        let e = doc.append_element(person, "nickname");
        doc.append_text(e, "Beeblebrox");
        idx.index_new_subtree(&doc, e);
        assert_eq!(
            idx.query(&doc, &Lookup::contains("eeble")).unwrap().len(),
            1
        );
        idx.verify_against(&doc).unwrap();
    }

    #[test]
    fn dead_node_errors() {
        let (mut doc, mut idx) = setup();
        let age = find_elem(&doc, "age");
        idx.delete_subtree(&mut doc, age).unwrap();
        let err = idx.delete_subtree(&mut doc, age).unwrap_err();
        assert!(matches!(err, IndexError::DeadNode(_)));
    }
}
