//! Index errors.

use xvi_xml::NodeId;

/// Errors surfaced by index maintenance and queries.
#[derive(Debug, Clone, PartialEq)]
pub enum IndexError {
    /// A value update targeted a node that has no directly stored
    /// value (only text and attribute nodes do).
    NotAValueNode(NodeId),
    /// The node id does not denote a live node of the indexed document.
    DeadNode(NodeId),
    /// A query string failed to parse.
    QuerySyntax(String),
    /// A query referenced a typed index that was not configured.
    TypeNotIndexed(xvi_fsm::XmlType),
    /// A lookup required an index family (string or substring) that was
    /// not configured; the value names the missing family.
    IndexNotConfigured(&'static str),
    /// A service operation referenced a document id that is not
    /// registered in the catalog.
    UnknownDocument(String),
    /// The target document was replaced or removed while the commit
    /// was queued; the transaction was not applied.
    DocumentReplaced(String),
    /// A group-commit leader panicked before this transaction's round
    /// completed; the transaction was not applied.
    CommitPipelinePoisoned,
    /// A bounded submission was rejected because the target shard's
    /// commit queue is full ([`ServiceConfig::max_queue`] entries are
    /// already waiting). The transaction was **not** enqueued; retry
    /// after roughly `retry_after`, by which time the shard's leader
    /// should have drained a group round or two.
    ///
    /// [`ServiceConfig::max_queue`]: crate::ServiceConfig::max_queue
    Overloaded {
        /// Index of the saturated shard.
        shard: usize,
        /// Suggested backoff before retrying, derived from the queue
        /// depth at rejection time.
        retry_after: std::time::Duration,
    },
    /// A commit could not be made durable: the write-ahead-log append
    /// or fsync failed. The transaction was **not** applied — an
    /// unlogged commit must never become visible.
    Durability(String),
    /// A value to be persisted (a string, write count or document
    /// count) exceeds the catalog/WAL format's `u32` field width.
    /// Refusing to write beats silently truncating the count and
    /// producing a manifest or log record that parses to wrong data.
    Oversize {
        /// What was being written (e.g. `"document count"`).
        what: &'static str,
        /// The offending length/count.
        len: u64,
    },
    /// A persisted catalog manifest declares a format version this
    /// build does not understand — refusing to load beats mis-parsing
    /// it as the wrong layout.
    CatalogVersion {
        /// The version the manifest declares.
        found: u32,
        /// The version this build reads and writes.
        supported: u32,
    },
}

impl std::fmt::Display for IndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexError::NotAValueNode(n) => {
                write!(f, "{n:?} is not a text or attribute node")
            }
            IndexError::DeadNode(n) => write!(f, "{n:?} is not a live node"),
            IndexError::QuerySyntax(msg) => write!(f, "query syntax error: {msg}"),
            IndexError::TypeNotIndexed(t) => {
                write!(f, "no range index configured for {}", t.name())
            }
            IndexError::IndexNotConfigured(family) => {
                write!(f, "no {family} index configured")
            }
            IndexError::UnknownDocument(id) => {
                write!(f, "no document registered under id {id:?}")
            }
            IndexError::DocumentReplaced(id) => {
                write!(
                    f,
                    "document {id:?} was replaced or removed while the commit was queued"
                )
            }
            IndexError::CommitPipelinePoisoned => {
                write!(
                    f,
                    "the group-commit leader panicked; transaction not applied"
                )
            }
            IndexError::Overloaded { shard, retry_after } => {
                write!(
                    f,
                    "shard {shard} commit queue is full; retry after {:?}",
                    retry_after
                )
            }
            IndexError::Durability(msg) => {
                write!(f, "commit not durable (WAL append/fsync failed): {msg}")
            }
            IndexError::Oversize { what, len } => {
                write!(
                    f,
                    "{what} of {len} exceeds the persistent format's u32 field width"
                )
            }
            IndexError::CatalogVersion { found, supported } => {
                write!(
                    f,
                    "catalog manifest has format version {found}, but this build supports \
                     version {supported}"
                )
            }
        }
    }
}

impl std::error::Error for IndexError {}
