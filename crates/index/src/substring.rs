//! Substring and wildcard lookup — the paper's announced future work
//! ("we intend to expand our work by designing indices capable of
//! answering queries that involve substring matching and regular
//! expressions", §7) — implemented the way databases usually do it:
//! a **trigram index**.
//!
//! Every directly stored value (text and attribute nodes) contributes
//! its distinct byte trigrams to a B+tree multimap `trigram → node`.
//! A `contains` query intersects the candidate sets of the needle's
//! trigrams (rarest first) and verifies candidates against the actual
//! values — the same candidates-then-verify discipline as the hash
//! equi-index, so results are exact. Wildcard patterns (`*`/`?`) are
//! served by extracting their literal runs as trigram filters.
//!
//! Scope: substring search addresses *stored* values, not concatenated
//! element string values (a substring of a concatenation may span node
//! boundaries; supporting that efficiently is an open problem the
//! paper leaves open too).

use std::collections::HashSet;

use xvi_btree::{BPlusTree, PagedVec, TreeStats};
use xvi_xml::{Document, NodeId, NodeKind};

use crate::stats::{CardinalityEstimate, QGramTable};

/// A trigram index over the directly stored node values.
///
/// Both the posting tree and the membership column are paged with
/// copy-on-write structural sharing, so cloning the index (the
/// service's snapshot publish path) is O(pages) pointer bumps.
///
/// A [`QGramTable`] of per-trigram posting counts is maintained
/// alongside the tree (every posting insert/remove mirrored), powering
/// [`SubstringIndex::estimate_contains`] /
/// [`SubstringIndex::estimate_wildcard`].
#[derive(Debug, Default, Clone)]
pub struct SubstringIndex {
    /// `(packed trigram, node) → ()`.
    tree: BPlusTree<(u32, u32), ()>,
    /// Membership column: `present[i]` iff arena slot `i` holds an
    /// indexed value (needed for short-needle scans and fallbacks).
    present: PagedVec<bool>,
    /// Number of `true` entries in `present`.
    indexed: usize,
    /// Per-trigram posting counts, mirroring the tree.
    grams: QGramTable,
}

/// Packs three bytes into the B+tree key space.
#[inline]
fn pack(b: &[u8]) -> u32 {
    (u32::from(b[0]) << 16) | (u32::from(b[1]) << 8) | u32::from(b[2])
}

/// Distinct trigrams of a value.
pub(crate) fn trigrams(s: &str) -> HashSet<u32> {
    s.as_bytes().windows(3).map(pack).collect()
}

/// The longest literal run of a wildcard pattern — the filter both
/// [`SubstringIndex::matches_wildcard`] executes with and
/// [`QGramTable`] costs, kept in one place so the estimator can never
/// silently diverge from the matcher.
pub(crate) fn wildcard_filter(pattern: &str) -> &str {
    pattern
        .split(['*', '?'])
        .max_by_key(|lit| lit.len())
        .unwrap_or("")
}

impl SubstringIndex {
    /// Builds the index over all text and attribute nodes of `doc`.
    pub fn build(doc: &Document) -> SubstringIndex {
        let mut entries: Vec<(u32, u32)> = Vec::new();
        let mut idx = SubstringIndex::default();
        let mut add = |node: NodeId, value: &str, idx: &mut SubstringIndex| {
            idx.mark_present(node);
            for t in trigrams(value) {
                entries.push((t, node.index() as u32));
            }
        };
        for n in doc.descendants(doc.document_node()) {
            match doc.kind(n) {
                NodeKind::Text(t) => add(n, t, &mut idx),
                NodeKind::Element(_) => {
                    for a in doc.attributes(n) {
                        if let NodeKind::Attribute { value, .. } = doc.kind(a) {
                            add(a, value, &mut idx);
                        }
                    }
                }
                _ => {}
            }
        }
        entries.sort_unstable();
        entries.dedup();
        idx.grams
            .rebuild_from_sorted(entries.iter().map(|&(t, _)| t));
        idx.tree = BPlusTree::from_sorted_iter(entries.into_iter().map(|k| (k, ())));
        idx
    }

    /// A clone that shares no pages with `self` (see
    /// [`BPlusTree::deep_clone`]).
    pub fn deep_clone(&self) -> SubstringIndex {
        SubstringIndex {
            tree: self.tree.deep_clone(),
            present: self.present.deep_clone(),
            indexed: self.indexed,
            grams: self.grams.deep_clone(),
        }
    }

    /// Flags `node` as indexed, growing the membership column on
    /// demand.
    fn mark_present(&mut self, node: NodeId) {
        if node.index() >= self.present.len() {
            self.present.resize(node.index() + 1, false);
        }
        let slot = &mut self.present[node.index()];
        if !*slot {
            *slot = true;
            self.indexed += 1;
        }
    }

    /// All indexed nodes, in arena order.
    fn indexed_iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.present.len())
            .filter(|&i| self.present[i])
            .map(NodeId::from_index)
    }

    /// Registers a new node value (insertion or update half).
    pub(crate) fn add_value(&mut self, node: NodeId, value: &str) {
        self.mark_present(node);
        for t in trigrams(value) {
            if self.tree.insert((t, node.index() as u32), ()).is_none() {
                self.grams.note_add(t);
            }
        }
    }

    /// Unregisters a node value (deletion or update half).
    pub(crate) fn remove_value(&mut self, node: NodeId, old_value: &str) {
        if let Some(slot) = self.present.get_mut(node.index()) {
            if *slot {
                *slot = false;
                self.indexed -= 1;
            }
        }
        for t in trigrams(old_value) {
            if self.tree.remove(&(t, node.index() as u32)).is_some() {
                self.grams.note_remove(t);
            }
        }
    }

    /// Replaces a node's value, touching only the changed trigrams.
    pub(crate) fn replace_value(&mut self, node: NodeId, old: &str, new: &str) {
        let old_t = trigrams(old);
        let new_t = trigrams(new);
        for &t in old_t.difference(&new_t) {
            if self.tree.remove(&(t, node.index() as u32)).is_some() {
                self.grams.note_remove(t);
            }
        }
        for &t in new_t.difference(&old_t) {
            if self.tree.insert((t, node.index() as u32), ()).is_none() {
                self.grams.note_add(t);
            }
        }
        self.mark_present(node);
    }

    /// Posting-list size cap: trigrams with more postings than this
    /// are "common" and useless as filters — intersecting them costs
    /// more than verifying candidates from a rarer trigram (or, if
    /// every trigram is common, than scanning the values directly).
    const COMMON_CAP: usize = 4096;

    /// Candidate nodes for one trigram, abandoned (`None`) once the
    /// list exceeds [`Self::COMMON_CAP`].
    fn nodes_with_capped(&self, t: u32) -> Option<Vec<u32>> {
        let mut out = Vec::new();
        for (&(_, n), ()) in self.tree.range((t, 0)..=(t, u32::MAX)) {
            if out.len() >= Self::COMMON_CAP {
                return None;
            }
            out.push(n);
        }
        Some(out)
    }

    /// Exact substring search: all indexed nodes whose value contains
    /// `needle`. Needles shorter than 3 bytes scan the indexed nodes.
    pub fn contains(&self, doc: &Document, needle: &str) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = if needle.len() < 3 {
            self.indexed_iter()
                .filter(|&n| doc.is_live(n))
                .filter(|&n| doc.direct_value(n).is_some_and(|v| v.contains(needle)))
                .collect()
        } else {
            self.candidates(needle)
                .into_iter()
                .filter(|&n| doc.is_live(n))
                .filter(|&n| doc.direct_value(n).is_some_and(|v| v.contains(needle)))
                .collect()
        };
        out.sort();
        out
    }

    /// Unverified candidate set for a needle (≥ 3 bytes): the
    /// intersection of its *rare* trigram posting lists. Common
    /// trigrams are skipped (verification handles the resulting false
    /// positives far cheaper than giant intersections would), and at
    /// most three lists are intersected — after two or three rare
    /// trigrams the candidate set is essentially exact. If every
    /// trigram is common, all indexed nodes are candidates; callers
    /// then verify, which equals a value scan.
    pub fn candidates(&self, needle: &str) -> Vec<NodeId> {
        let tris: Vec<u32> = trigrams(needle).into_iter().collect();
        debug_assert!(!tris.is_empty());
        let mut lists: Vec<Vec<u32>> = tris
            .iter()
            .filter_map(|&t| self.nodes_with_capped(t))
            .collect();
        if lists.is_empty() {
            // Only common trigrams: no useful filter.
            return self.indexed_iter().collect();
        }
        lists.sort_by_key(|l| l.len());
        lists.truncate(3);
        let mut iter = lists.into_iter();
        let first = iter.next().expect("non-empty above");
        let mut current: HashSet<u32> = first.into_iter().collect();
        for list in iter {
            if current.is_empty() {
                break;
            }
            let set: HashSet<u32> = list.into_iter().collect();
            current.retain(|n| set.contains(n));
        }
        current
            .into_iter()
            .map(|n| NodeId::from_index(n as usize))
            .collect()
    }

    /// Wildcard match with `*` (any run) and `?` (any single char).
    /// Literal runs of ≥ 3 bytes become trigram filters; the pattern
    /// itself is verified on every candidate.
    pub fn matches_wildcard(&self, doc: &Document, pattern: &str) -> Vec<NodeId> {
        // Longest literal run usable as an index filter.
        let filter = wildcard_filter(pattern);
        let candidates: Vec<NodeId> = if filter.len() >= 3 {
            self.candidates(filter)
        } else {
            self.indexed_iter().collect()
        };
        let mut out: Vec<NodeId> = candidates
            .into_iter()
            .filter(|&n| doc.is_live(n))
            .filter(|&n| {
                doc.direct_value(n)
                    .is_some_and(|v| wildcard_match(pattern.as_bytes(), v.as_bytes()))
            })
            .collect();
        out.sort();
        out
    }

    /// Number of (trigram, node) postings.
    pub fn postings(&self) -> usize {
        self.tree.len()
    }

    /// Number of indexed value nodes.
    pub fn indexed_nodes(&self) -> usize {
        self.indexed
    }

    /// Approximate heap bytes.
    pub fn approx_bytes(&self) -> usize {
        self.tree.approx_bytes() + self.present.len() * std::mem::size_of::<bool>()
    }

    /// The maintained q-gram frequency table.
    pub fn statistics(&self) -> &QGramTable {
        &self.grams
    }

    /// Estimated candidate count of a `contains` probe for `needle`,
    /// answered from the maintained [`QGramTable`].
    pub fn estimate_contains(&self, needle: &str) -> CardinalityEstimate {
        self.grams
            .estimate_contains(needle, Self::COMMON_CAP, self.indexed)
    }

    /// Estimated candidate count of a wildcard probe for `pattern`.
    pub fn estimate_wildcard(&self, pattern: &str) -> CardinalityEstimate {
        self.grams
            .estimate_wildcard(pattern, Self::COMMON_CAP, self.indexed)
    }

    /// Storage statistics of the posting B+tree.
    pub fn tree_stats(&self) -> TreeStats {
        self.tree.stats()
    }

    /// Cumulative COW page detaches of the posting B+tree (O(1)).
    pub fn pages_detached(&self) -> u64 {
        self.tree.pages_detached()
    }
}

/// Iterative wildcard matcher (`*` = any run, `?` = any byte) — the
/// classic two-pointer algorithm, linear in practice.
fn wildcard_match(pattern: &[u8], text: &[u8]) -> bool {
    let (mut p, mut t) = (0usize, 0usize);
    let (mut star, mut mark) = (usize::MAX, 0usize);
    while t < text.len() {
        if p < pattern.len() && (pattern[p] == b'?' || pattern[p] == text[t]) {
            p += 1;
            t += 1;
        } else if p < pattern.len() && pattern[p] == b'*' {
            star = p;
            mark = t;
            p += 1;
        } else if star != usize::MAX {
            p = star + 1;
            mark += 1;
            t = mark;
        } else {
            return false;
        }
    }
    while p < pattern.len() && pattern[p] == b'*' {
        p += 1;
    }
    p == pattern.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Document {
        Document::parse(
            r#"<library>
                 <book isbn="978-0345391803"><title>The Hitchhikers Guide</title></book>
                 <book isbn="978-0345391810"><title>The Restaurant at the End</title></book>
                 <author>Douglas Adams</author>
                 <note>don't panic</note>
               </library>"#,
        )
        .unwrap()
    }

    fn values_of(doc: &Document, nodes: &[NodeId]) -> Vec<String> {
        nodes
            .iter()
            .map(|&n| doc.direct_value(n).unwrap().to_owned())
            .collect()
    }

    #[test]
    fn contains_finds_infixes() {
        let d = doc();
        let idx = SubstringIndex::build(&d);
        let hits = idx.contains(&d, "tchhik");
        assert_eq!(values_of(&d, &hits), vec!["The Hitchhikers Guide"]);
        // Shared infix hits multiple nodes.
        let hits = idx.contains(&d, "The ");
        assert_eq!(hits.len(), 2);
        // Attribute values are covered.
        let hits = idx.contains(&d, "034539181");
        assert_eq!(values_of(&d, &hits), vec!["978-0345391810"]);
        // Absent needle.
        assert!(idx.contains(&d, "zarquon").is_empty());
    }

    #[test]
    fn short_needles_fall_back_to_scan() {
        let d = doc();
        let idx = SubstringIndex::build(&d);
        let hits = idx.contains(&d, "am");
        assert_eq!(values_of(&d, &hits), vec!["Douglas Adams"]);
        let all = idx.contains(&d, "");
        assert_eq!(all.len(), idx.indexed_nodes());
    }

    #[test]
    fn wildcard_patterns() {
        let d = doc();
        let idx = SubstringIndex::build(&d);
        let hits = idx.matches_wildcard(&d, "The*End");
        assert_eq!(values_of(&d, &hits), vec!["The Restaurant at the End"]);
        let hits = idx.matches_wildcard(&d, "978-03453918?0");
        assert_eq!(values_of(&d, &hits), vec!["978-0345391810"]);
        let hits = idx.matches_wildcard(&d, "978-03453918??");
        assert_eq!(hits.len(), 2);
        let hits = idx.matches_wildcard(&d, "*panic*");
        assert_eq!(values_of(&d, &hits), vec!["don't panic"]);
        assert!(idx.matches_wildcard(&d, "The?End").is_empty());
    }

    #[test]
    fn replace_value_keeps_postings_exact() {
        let d = doc();
        let mut idx = SubstringIndex::build(&d);
        let note = idx.contains(&d, "panic")[0];
        idx.replace_value(note, "don't panic", "mostly harmless");
        // Old trigrams gone, new ones findable (we bypassed the doc, so
        // candidates() is the honest check here).
        assert!(idx.candidates("harmless").contains(&note));
        assert!(!idx.candidates("panic").contains(&note));
    }

    #[test]
    fn wildcard_matcher_unit() {
        assert!(wildcard_match(b"*", b"anything"));
        assert!(wildcard_match(b"", b""));
        assert!(!wildcard_match(b"", b"x"));
        assert!(wildcard_match(b"a*b*c", b"aXXbYYc"));
        assert!(!wildcard_match(b"a*b*c", b"aXXcYYb"));
        assert!(wildcard_match(b"?bc", b"abc"));
        assert!(!wildcard_match(b"?bc", b"bc"));
        assert!(wildcard_match(b"ab*", b"ab"));
        assert!(wildcard_match(b"*ab", b"ab"));
    }
}
