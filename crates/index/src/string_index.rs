//! The string equi-lookup index (paper §3).
//!
//! One B+tree over composite keys `(hash, node)` — the database idiom
//! for a multimap — plus a columnar hash annotation per arena slot.
//! The annotation array is what makes updates cheap: recombining an
//! ancestor reads its children's *stored* hashes, never their strings.

use xvi_btree::{BPlusTree, PagedVec, TreeStats};
use xvi_hash::HashValue;
use xvi_xml::NodeId;

use crate::stats::{CardinalityEstimate, EquiHistogram};

/// The hash B+tree and per-node hash annotations.
///
/// Both parts are paged with copy-on-write structural sharing, so
/// cloning the index (the service's snapshot publish path) is O(pages)
/// pointer bumps and a mutated clone copies only the touched pages.
///
/// The index also maintains an [`EquiHistogram`] incrementally (every
/// tree insert/remove is mirrored into it), so
/// [`StringIndex::estimate_equi`] answers without touching the
/// document.
#[derive(Debug, Default, Clone)]
pub struct StringIndex {
    /// `(hash raw, node arena index) → ()`.
    tree: BPlusTree<(u32, u32), ()>,
    /// Hash annotation per arena slot. Slots that are not indexed
    /// (freed nodes, comments, PIs) hold `None`.
    hashes: PagedVec<Option<HashValue>>,
    /// Cardinality statistics, maintained through every mutation.
    stats: EquiHistogram,
    /// During initial creation, annotations accumulate in the column
    /// only; the tree is bulk-loaded once at the end.
    bulk: bool,
}

impl StringIndex {
    /// Creates an empty index sized for `arena_size` slots.
    pub fn new(arena_size: usize) -> StringIndex {
        let mut hashes = PagedVec::new();
        hashes.resize(arena_size, None);
        StringIndex {
            tree: BPlusTree::new(),
            hashes,
            stats: EquiHistogram::default(),
            bulk: false,
        }
    }

    /// A clone that shares no pages with `self` (see
    /// [`BPlusTree::deep_clone`]).
    pub fn deep_clone(&self) -> StringIndex {
        StringIndex {
            tree: self.tree.deep_clone(),
            hashes: self.hashes.deep_clone(),
            stats: self.stats.deep_clone(),
            bulk: self.bulk,
        }
    }

    /// Enters bulk-creation mode: [`StringIndex::set`] fills only the
    /// annotation column until [`StringIndex::finish_bulk`].
    pub(crate) fn begin_bulk(&mut self) {
        debug_assert!(self.tree.is_empty(), "bulk mode is for initial creation");
        self.bulk = true;
    }

    /// Builds the hash B+tree from the annotation column in one
    /// sorted pass (the database bulk-load; see `xvi-btree`).
    pub(crate) fn finish_bulk(&mut self) {
        let mut entries: Vec<(u32, u32)> = self
            .hashes
            .iter()
            .enumerate()
            .filter_map(|(i, h)| h.map(|h| (h.raw(), i as u32)))
            .collect();
        entries.sort_unstable();
        self.stats
            .rebuild_from_sorted(entries.iter().map(|&(h, _)| h));
        self.tree = BPlusTree::from_sorted_iter(entries.into_iter().map(|k| (k, ())));
        self.bulk = false;
    }

    /// Persistence loader: installs `(node, hash)` annotations and
    /// bulk-loads the tree.
    pub(crate) fn load_entries(&mut self, entries: Vec<(u32, HashValue)>) {
        for &(node, hash) in &entries {
            *self.slot(NodeId::from_index(node as usize)) = Some(hash);
        }
        let mut keys: Vec<(u32, u32)> = entries
            .into_iter()
            .map(|(node, hash)| (hash.raw(), node))
            .collect();
        keys.sort_unstable();
        self.stats.rebuild_from_sorted(keys.iter().map(|&(h, _)| h));
        self.tree = BPlusTree::from_sorted_iter(keys.into_iter().map(|k| (k, ())));
    }

    /// The hash's multiplicity in the tree, capped at
    /// [`EquiHistogram::HEAVY_MIN`] (exact for tracked heavy hitters).
    fn multiplicity_capped(&self, raw: u32) -> u32 {
        if let Some(c) = self.stats.heavy_count(raw) {
            return c;
        }
        self.tree
            .range((raw, 0)..=(raw, u32::MAX))
            .take(EquiHistogram::HEAVY_MIN as usize)
            .count() as u32
    }

    /// Mirrors a tree insert into the histogram; call *before*
    /// `tree.insert`.
    fn note_tree_insert(&mut self, raw: u32) {
        let prior = self.multiplicity_capped(raw);
        self.stats.note_insert(raw, prior);
    }

    /// Mirrors a tree removal into the histogram; call *after*
    /// `tree.remove`.
    fn note_tree_remove(&mut self, raw: u32) {
        let remaining = match self.stats.heavy_count(raw) {
            Some(c) => c - 1,
            None => self.multiplicity_capped(raw),
        };
        self.stats.note_remove(raw, remaining);
    }

    fn slot(&mut self, node: NodeId) -> &mut Option<HashValue> {
        if node.index() >= self.hashes.len() {
            self.hashes.resize(node.index() + 1, None);
        }
        &mut self.hashes[node.index()]
    }

    /// The stored hash annotation of `node`, if it is indexed.
    pub fn hash_of(&self, node: NodeId) -> Option<HashValue> {
        self.hashes.get(node.index()).copied().flatten()
    }

    /// Inserts or replaces the hash annotation of `node`, keeping the
    /// B+tree in sync. No-op if the hash is unchanged.
    pub fn set(&mut self, node: NodeId, hash: HashValue) {
        if self.bulk {
            *self.slot(node) = Some(hash);
            return;
        }
        let old = *self.slot(node);
        if old == Some(hash) {
            return;
        }
        if let Some(h) = old {
            if self.tree.remove(&(h.raw(), node.index() as u32)).is_some() {
                self.note_tree_remove(h.raw());
            }
        }
        self.note_tree_insert(hash.raw());
        self.tree.insert((hash.raw(), node.index() as u32), ());
        *self.slot(node) = Some(hash);
    }

    /// Removes `node` from the index entirely (subtree deletion).
    pub fn remove(&mut self, node: NodeId) {
        if let Some(h) = self.slot(node).take() {
            if self.tree.remove(&(h.raw(), node.index() as u32)).is_some() {
                self.note_tree_remove(h.raw());
            }
        }
    }

    /// All candidate nodes whose string value hashes to `hash`.
    /// Candidates may contain false positives (hash collisions); the
    /// caller verifies against actual string values.
    pub fn candidates(&self, hash: HashValue) -> Vec<NodeId> {
        self.tree
            .range((hash.raw(), 0)..=(hash.raw(), u32::MAX))
            .map(|(&(_, n), ())| NodeId::from_index(n as usize))
            .collect()
    }

    /// Number of indexed nodes.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Approximate heap bytes: tree structure + annotation column.
    pub fn approx_bytes(&self) -> usize {
        self.tree.approx_bytes() + self.hashes.len() * std::mem::size_of::<Option<HashValue>>()
    }

    /// The maintained cardinality statistics.
    pub fn statistics(&self) -> &EquiHistogram {
        &self.stats
    }

    /// **Exact** candidate count of an equality probe for `hash`,
    /// answered in O(log n) node visits from the B+tree's interior
    /// monoid summaries (see [`BPlusTree::count_range`]) — never by
    /// scanning the matching leaf run. The count covers *candidates*
    /// (hash matches before string verification), the same population
    /// [`StringIndex::candidates`] returns.
    pub fn estimate_equi(&self, hash: HashValue) -> CardinalityEstimate {
        CardinalityEstimate::exact(
            self.tree
                .count_range((hash.raw(), 0)..=(hash.raw(), u32::MAX)),
        )
    }

    /// The pre-summary estimate for the same probe, answered from the
    /// maintained [`EquiHistogram`] — exact only for heavy hitters,
    /// bounded otherwise. Kept as a comparison baseline (and exercised
    /// by the `aggregates` benchmark); [`StringIndex::estimate_equi`]
    /// is strictly better.
    pub fn histogram_estimate_equi(&self, hash: HashValue) -> CardinalityEstimate {
        self.stats.estimate_equi(hash.raw())
    }

    /// Order-sensitive hash of the tree's full `(hash, node)` key
    /// sequence, maintained in the root's monoid summaries; equal
    /// hashes mean (with 64-bit confidence) identical indexed content.
    pub fn root_hash(&self) -> u64 {
        self.tree.subtree_hash()
    }

    /// Storage statistics of the hash B+tree (pages, shared pages,
    /// free slots).
    pub fn tree_stats(&self) -> TreeStats {
        self.tree.stats()
    }

    /// Cumulative COW page detaches of the hash B+tree (O(1)).
    pub fn pages_detached(&self) -> u64 {
        self.tree.pages_detached()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xvi_hash::hash_str;

    #[test]
    fn set_lookup_remove() {
        let mut idx = StringIndex::new(8);
        let n1 = NodeId::from_index(1);
        let n2 = NodeId::from_index(2);
        let h = hash_str("Arthur");
        idx.set(n1, h);
        idx.set(n2, h);
        assert_eq!(idx.candidates(h), vec![n1, n2]);
        assert_eq!(idx.hash_of(n1), Some(h));
        idx.remove(n1);
        assert_eq!(idx.candidates(h), vec![n2]);
        assert_eq!(idx.hash_of(n1), None);
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn replacing_a_hash_removes_the_old_entry() {
        let mut idx = StringIndex::new(4);
        let n = NodeId::from_index(1);
        let h1 = hash_str("Dent");
        let h2 = hash_str("Prefect");
        idx.set(n, h1);
        idx.set(n, h2);
        assert!(idx.candidates(h1).is_empty());
        assert_eq!(idx.candidates(h2), vec![n]);
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn unchanged_set_is_a_noop() {
        let mut idx = StringIndex::new(4);
        let n = NodeId::from_index(1);
        let h = hash_str("same");
        idx.set(n, h);
        idx.set(n, h);
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.candidates(h), vec![n]);
    }

    #[test]
    fn grows_beyond_initial_arena() {
        let mut idx = StringIndex::new(1);
        let n = NodeId::from_index(100);
        idx.set(n, hash_str("x"));
        assert_eq!(idx.hash_of(n), Some(hash_str("x")));
    }
}
