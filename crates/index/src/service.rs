//! A sharded, multi-document index service with group commit.
//!
//! [`TransactionalStore`](crate::TransactionalStore) demonstrates the
//! paper's §5.1 commutativity argument for a single document behind one
//! lock. This module scales that argument out: an [`IndexService`]
//! hosts many `(Document, IndexManager)` pairs across `N` shards
//! (hash of the document id picks the shard), and turns the
//! per-commit lock into a **group-commit pipeline**:
//!
//! * Committers **submit** their write batches to the owning shard's
//!   queue without blocking: [`IndexService::submit`] enqueues and
//!   returns a [`CommitTicket`] immediately, so one thread can keep
//!   hundreds of commits in flight across shards and reap completions
//!   in any order ([`CommitTicket::wait`] blocks,
//!   [`CommitTicket::try_poll`] does not;
//!   [`IndexService::commit`] is simply `submit(..).wait()`). The
//!   first waiter to find the pipeline idle becomes the **leader**; it
//!   drains the queue (up to [`ServiceConfig::max_group`] batches per
//!   round), coalesces all batches that target the same document, and
//!   repairs that document's ancestors **once** via the existing
//!   [`IndexManager::update_values`] path — exactly the amortisation
//!   the paper's associative combination function `C` makes sound:
//!   because commits commute, collapsing a queue of transactions into
//!   one batch per document yields the same indices as any serial
//!   order. Each ticket's completion slot is filled by the group
//!   leader with a [`CommitReceipt`] carrying the publish version and
//!   the applied-write count.
//! * Reads are **lock-free snapshots**. Every document's committed
//!   state lives in an [`Arc`]; a reader clones the `Arc` (one brief
//!   shard-lock acquisition) and then queries an immutable version
//!   with no lock held — commits landing concurrently never move the
//!   ground under a running query. The leader publishes adaptively:
//!   while snapshots of the current version are outstanding it uses
//!   copy-on-write (clone, apply the coalesced batch, swap), and when
//!   none are it updates the version in place at the paper's
//!   O(writes + ancestors) cost — uncontended single-writer commits
//!   pay nothing for the snapshot machinery.
//! * Copy-on-write publishes are **structurally shared**. The document
//!   arena, every index B+tree and every annotation column live in
//!   paged copy-on-write storage ([`xvi_btree::PagedVec`]), so the
//!   "clone" half of a COW publish is O(pages) reference-count bumps
//!   and applying the coalesced batch copies only the pages the batch
//!   touches — publish cost is proportional to the *touched set*, not
//!   the document size, no matter how many snapshots pin old versions.
//!
//! The service therefore gives every reader a consistent prefix of the
//! commit history, lets writers on different shards (and different
//! documents within a shard's group round) proceed in parallel, and
//! preserves the paper's invariant that the final indices are
//! byte-identical to a serial replay.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};

use parking_lot::RwLock;

use xvi_obs::{Counter, LatencyHistogram, Obs, Stage, Trace, Unit};
use xvi_xml::{Document, NodeId, NodeKind};

use crate::config::IndexConfig;
use crate::error::IndexError;
use crate::lookup::{Lookup, QueryResult};
use crate::manager::IndexManager;
use crate::query::{Plan, QueryEngine};
use crate::stats::CardinalityEstimate;
use crate::txn::Transaction;
use crate::wal::{ShardWal, WalRecord};

/// A document's catalog identifier.
pub type DocId = String;

/// How (whether) an [`IndexService`] makes commits durable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum Durability {
    /// No persistence: commits live only in memory (the default, and
    /// the previous behaviour). [`IndexService::save_catalog`] remains
    /// available for explicit full-image saves.
    #[default]
    Ephemeral,
    /// Per-shard write-ahead logging under the given directory: the
    /// group-commit leader appends each coalesced batch as one framed,
    /// checksummed record and issues **one fsync per batch** before
    /// publishing, so the durable cost of a commit is O(batch delta),
    /// not O(catalog). [`IndexService::open`] recovers by loading the
    /// last checkpoint in the same directory (if any) and replaying
    /// each shard's log, tolerating a torn final record;
    /// [`IndexService::checkpoint`] bounds replay time by saving fresh
    /// images and truncating the logs.
    Wal(PathBuf),
}

/// Tuning knobs for an [`IndexService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Number of shards the document catalog is split over. Commits on
    /// different shards never contend with each other.
    pub shards: usize,
    /// Maximum number of queued transactions a group-commit leader
    /// drains per round. `1` degenerates to per-transaction commits;
    /// larger values amortise the copy-on-write publish across more
    /// transactions under contention.
    pub max_group: usize,
    /// Index configuration applied to every hosted document.
    pub index: IndexConfig,
    /// Durability mode: ephemeral (default) or per-shard write-ahead
    /// logging.
    pub durability: Durability,
    /// Capacity of each shard's commit queue as seen by the **bounded**
    /// submission path: [`IndexService::try_submit`] rejects with
    /// [`IndexError::Overloaded`] once this many transactions are
    /// already waiting on the target shard. The unbounded paths
    /// ([`IndexService::submit`] / [`IndexService::commit`]) ignore it.
    pub max_queue: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            shards: 8,
            max_group: 64,
            index: IndexConfig::default(),
            durability: Durability::Ephemeral,
            max_queue: 4096,
        }
    }
}

impl ServiceConfig {
    /// A config with the given shard count and defaults elsewhere.
    pub fn with_shards(shards: usize) -> ServiceConfig {
        ServiceConfig {
            shards,
            ..ServiceConfig::default()
        }
    }

    /// Sets the group-commit drain limit.
    pub fn with_max_group(mut self, max_group: usize) -> ServiceConfig {
        self.max_group = max_group;
        self
    }

    /// Sets the per-document index configuration.
    pub fn with_index(mut self, index: IndexConfig) -> ServiceConfig {
        self.index = index;
        self
    }

    /// Enables per-shard write-ahead logging under `dir` (see
    /// [`Durability::Wal`]).
    pub fn with_wal(mut self, dir: impl Into<PathBuf>) -> ServiceConfig {
        self.durability = Durability::Wal(dir.into());
        self
    }

    /// Sets the bounded-submission queue capacity per shard (see
    /// [`ServiceConfig::max_queue`]).
    pub fn with_max_queue(mut self, max_queue: usize) -> ServiceConfig {
        self.max_queue = max_queue;
        self
    }
}

/// One immutable published version of a document and its indices.
///
/// The document is held behind its own [`Arc`] so a copy-on-write
/// publish starts from a pointer bump and [`Arc::make_mut`] — which,
/// combined with the paged arenas inside [`Document`] and
/// [`IndexManager`], copies only the pages the batch touches.
#[derive(Debug)]
struct SharedVersion {
    doc: Arc<Document>,
    idx: IndexManager,
    /// Number of transactions committed into this version.
    version: u64,
}

/// A document slot in the catalog: the currently published version,
/// swapped atomically by the group-commit leader.
#[derive(Debug)]
struct DocHandle {
    id: String,
    published: RwLock<Arc<SharedVersion>>,
}

impl DocHandle {
    fn current(&self) -> Arc<SharedVersion> {
        Arc::clone(&self.published.read())
    }
}

/// A committed transaction waiting for its group-commit round.
struct Pending {
    handle: Arc<DocHandle>,
    writes: Vec<(NodeId, String)>,
    slot: Arc<CommitSlot>,
    trace: Option<PendingTrace>,
}

/// Trace context riding along with a queued transaction: the leader
/// records the queue wait and attributes the round's shared WAL /
/// fsync / publish timings to it.
struct PendingTrace {
    trace: Trace,
    /// Tracer-clock reading at enqueue time (queue wait starts here).
    enqueue_ns: u64,
    /// Whether the service started the trace itself (sampled inside
    /// [`IndexService::submit`]) and must therefore finish it after the
    /// slot is filled. Traces handed in by a caller (the serve
    /// frontend) stay open: the layer that started a trace finishes it
    /// once the end-to-end request completes.
    owned: bool,
}

/// What a completed commit reports back through its
/// [`CommitTicket`]: which published version made the transaction's
/// writes visible, and how many writes it applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitReceipt {
    /// The document version (count of committed transactions) whose
    /// publish included this transaction. Every snapshot taken at or
    /// after this version sees the writes.
    pub version: u64,
    /// Number of writes the transaction applied.
    pub applied: usize,
}

/// Mutex-guarded interior of a [`CommitSlot`]: the commit outcome plus
/// the waker of an `await`ing task, if any.
struct SlotState {
    result: Option<Result<CommitReceipt, IndexError>>,
    /// Registered by [`CommitTicket`]'s `Future::poll`; woken (outside
    /// the lock) by [`CommitSlot::fill`].
    waker: Option<std::task::Waker>,
}

/// Per-ticket completion slot, filled exactly once by the group
/// leader (or the unwind guards, if a leader panics mid-round).
struct CommitSlot {
    state: Mutex<SlotState>,
    cv: Condvar,
    /// Whether `fill` has run — checked by the unwind guards so a
    /// slot is filled exactly once even if a leader panics mid-round.
    filled: AtomicBool,
}

impl CommitSlot {
    fn new() -> CommitSlot {
        CommitSlot {
            state: Mutex::new(SlotState {
                result: None,
                waker: None,
            }),
            cv: Condvar::new(),
            filled: AtomicBool::new(false),
        }
    }

    fn completed(r: Result<CommitReceipt, IndexError>) -> Arc<CommitSlot> {
        let slot = CommitSlot::new();
        slot.state.lock().unwrap_or_else(|e| e.into_inner()).result = Some(r);
        slot.filled.store(true, Ordering::SeqCst);
        Arc::new(slot)
    }

    fn fill(&self, r: Result<CommitReceipt, IndexError>) {
        if self.filled.swap(true, Ordering::SeqCst) {
            return;
        }
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.result = Some(r);
        let waker = st.waker.take();
        self.cv.notify_all();
        drop(st);
        // Wake outside the lock: the woken task may poll immediately.
        if let Some(w) = waker {
            w.wake();
        }
    }

    /// The result, if the commit completed — the slot keeps it, so the
    /// probe can be repeated.
    fn get(&self) -> Option<Result<CommitReceipt, IndexError>> {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .result
            .clone()
    }

    fn wait_filled(&self) -> Result<CommitReceipt, IndexError> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(r) = st.result.as_ref() {
                return r.clone();
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// A commit in flight: the handle [`IndexService::submit`] returns
/// immediately, resolved by the shard's group-commit leader.
///
/// Waiting is **cooperative**: if no leader is active on the shard,
/// [`CommitTicket::wait`] takes over and drains the queue itself (this
/// is what makes a single thread's pipelined submits make progress);
/// otherwise it blocks on the completion slot until the active leader
/// publishes the round. [`CommitTicket::try_poll`] never blocks and
/// never drives the pipeline.
///
/// ```
/// use xvi_index::{Document, IndexService, ServiceConfig};
///
/// let service = IndexService::new(ServiceConfig::default());
/// service.insert_document("crew", Document::parse(
///     "<person><name>Arthur</name></person>").unwrap());
/// let node = service.read("crew", |doc, _| {
///     doc.descendants(doc.document_node())
///         .find(|&n| doc.direct_value(n).is_some()).unwrap()
/// }).unwrap();
///
/// // Keep several commits in flight, then reap them in any order.
/// let tickets: Vec<_> = (0..4).map(|i| {
///     let mut txn = service.begin();
///     txn.set_value(node, format!("v{i}"));
///     service.submit("crew", txn)
/// }).collect();
/// for t in tickets.into_iter().rev() {
///     let receipt = t.wait().unwrap();
///     assert_eq!(receipt.applied, 1);
/// }
/// assert_eq!(service.version_of("crew"), Some(4));
/// ```
#[must_use = "a ticket must be waited on (or polled) to observe the commit outcome"]
pub struct CommitTicket<'a> {
    service: &'a IndexService,
    /// Index of the shard whose pipeline resolves this ticket; `None`
    /// when the ticket was born completed (empty or rejected submit).
    shard: Option<usize>,
    slot: Arc<CommitSlot>,
}

impl std::fmt::Debug for CommitTicket<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CommitTicket")
            .field("completed", &self.slot.filled.load(Ordering::SeqCst))
            .finish()
    }
}

impl CommitTicket<'_> {
    /// Blocks until the commit is published (helping to drain the
    /// shard's queue if no leader is active) and returns its receipt.
    pub fn wait(self) -> Result<CommitReceipt, IndexError> {
        loop {
            if let Some(r) = self.slot.get() {
                return r;
            }
            let shard = &self.service.shards[self.shard.expect("unfilled tickets carry a shard")];
            if self.service.try_lead(shard) {
                self.service.run_leader(shard);
            } else {
                // An active leader owns the queue (and therefore this
                // ticket's pending entry); it fills the slot when the
                // round publishes.
                return self.slot.wait_filled();
            }
        }
    }

    /// Non-blocking completion probe: `Some(receipt)` once the commit
    /// round has published, `None` while it is still queued. Never
    /// performs pipeline work — progress is driven by `wait()` (on any
    /// ticket of the shard) or by concurrent committers.
    pub fn try_poll(&self) -> Option<Result<CommitReceipt, IndexError>> {
        self.slot.get()
    }

    /// Whether the commit has completed (equivalent to
    /// `try_poll().is_some()`).
    pub fn is_complete(&self) -> bool {
        self.slot.filled.load(Ordering::SeqCst)
    }
}

/// `CommitTicket` is a [`Future`](std::future::Future): `.await` (or a
/// manual `poll`) resolves to the same receipt `wait` returns.
///
/// Polling is **cooperative**, mirroring [`CommitTicket::wait`]: a
/// poll that finds the commit still queued registers its waker in the
/// completion slot and, if no leader is active on the shard, drains
/// the queue itself — so a lone awaiter always makes progress, even on
/// a single-threaded executor, and never deadlocks. When another
/// leader owns the round, the poll returns
/// [`Poll::Pending`](std::task::Poll::Pending) immediately and the
/// leader wakes the stored waker right after it publishes.
///
/// ```
/// use xvi_index::{Document, IndexService, ServiceConfig};
/// use std::future::Future;
/// use std::task::{Context, Poll, Waker};
///
/// let service = IndexService::new(ServiceConfig::default());
/// service.insert_document("crew", Document::parse(
///     "<person><name>Arthur</name></person>").unwrap());
/// let node = service.read("crew", |doc, _| {
///     doc.descendants(doc.document_node())
///         .find(|&n| doc.direct_value(n).is_some()).unwrap()
/// }).unwrap();
///
/// let mut txn = service.begin();
/// txn.set_value(node, "Ford");
/// let mut ticket = service.submit("crew", txn);
/// // Executor-free await: one poll is enough because the poll takes
/// // over shard leadership when nobody else is driving.
/// let mut cx = Context::from_waker(Waker::noop());
/// match std::pin::Pin::new(&mut ticket).poll(&mut cx) {
///     Poll::Ready(receipt) => assert_eq!(receipt.unwrap().applied, 1),
///     Poll::Pending => unreachable!("no other leader is active"),
/// }
/// ```
impl std::future::Future for CommitTicket<'_> {
    type Output = Result<CommitReceipt, IndexError>;

    fn poll(
        self: std::pin::Pin<&mut Self>,
        cx: &mut std::task::Context<'_>,
    ) -> std::task::Poll<Self::Output> {
        let this = self.get_mut();
        // Park the waker FIRST, before looking for an active leader:
        // `fill` runs under the same slot lock and wakes the stored
        // waker, so from this point on no publish can complete without
        // waking us. (Parking after the leader check would leave a
        // window — leader observed active, leader publishes and fills,
        // then we park a waker nobody will ever wake.)
        {
            let mut st = this.slot.state.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(r) = st.result.as_ref() {
                return std::task::Poll::Ready(r.clone());
            }
            st.waker = Some(cx.waker().clone());
        }
        // Cooperative progress: help drain the shard unless a leader
        // is already active (that leader fills the slot and wakes the
        // waker parked above).
        let shard = &this.service.shards[this.shard.expect("unfilled tickets carry a shard")];
        if this.service.try_lead(shard) {
            this.service.run_leader(shard);
            // Self-driving resolved the commit (fill consumed the
            // parked waker — a self-wake, which the contract allows);
            // report Ready directly rather than waiting to be polled
            // again.
            if let Some(r) = this.slot.get() {
                return std::task::Poll::Ready(r);
            }
        }
        std::task::Poll::Pending
    }
}

/// Group-commit queue of one shard.
struct Pipeline {
    state: Mutex<PipelineState>,
}

struct PipelineState {
    queue: VecDeque<Pending>,
    leader_active: bool,
}

impl Pipeline {
    fn new() -> Pipeline {
        Pipeline {
            state: Mutex::new(PipelineState {
                queue: VecDeque::new(),
                leader_active: false,
            }),
        }
    }
}

/// One shard: a slice of the document catalog plus its commit queue
/// and (in [`Durability::Wal`] mode) its write-ahead log.
///
/// Lock order, everywhere: the service's `ckpt` mutex → `wal` mutex →
/// `catalog` lock → a handle's `published` lock. The leader holds the
/// wal mutex from the record append through the publish, which gives
/// checkpointing its exactness guarantee: capturing `(catalog state,
/// wal.seq, commit count)` under the wal mutex observes either none or
/// all of every logged batch's effects.
struct Shard {
    catalog: RwLock<HashMap<String, Arc<DocHandle>>>,
    pipeline: Pipeline,
    wal: Option<Mutex<ShardWal>>,
    /// Transactions committed into this shard's documents. Kept
    /// per-shard (the leader increments it while holding the shard's
    /// wal mutex) so a checkpoint capture reads a count exactly
    /// consistent with the shard's images and WAL sequence; only the
    /// sum across shards is meaningful to callers.
    commits: AtomicU64,
}

impl Shard {
    fn new(wal: Option<ShardWal>) -> Shard {
        Shard {
            catalog: RwLock::new(HashMap::new()),
            pipeline: Pipeline::new(),
            wal: wal.map(Mutex::new),
            commits: AtomicU64::new(0),
        }
    }
}

/// A sharded, concurrent, multi-document index service (see the
/// module docs for the commit pipeline and snapshot semantics).
///
/// ```
/// use std::sync::Arc;
/// use xvi_index::{Document, IndexService, Lookup, ServiceConfig};
///
/// let service = Arc::new(IndexService::new(ServiceConfig::default()));
/// service.insert_document("crew", Document::parse(
///     "<person><name>Arthur</name><age>42</age></person>").unwrap());
///
/// let mut txn = service.begin();
/// // The lookup returns both <name> and its text node; updates target
/// // nodes with a directly stored value.
/// let node = service.read("crew", |doc, idx| {
///     *idx.query(doc, &Lookup::equi("Arthur")).unwrap()
///         .iter()
///         .find(|&&n| doc.direct_value(n).is_some())
///         .unwrap()
/// }).unwrap();
/// txn.set_value(node, "Ford");
/// let receipt = service.commit("crew", txn).unwrap();
/// assert_eq!((receipt.version, receipt.applied), (1, 1));
///
/// // <name> and its text node both have string value "Ford".
/// let snap = service.snapshot("crew").unwrap();
/// assert_eq!(snap.query(&Lookup::equi("Ford")).unwrap().len(), 2);
/// ```
pub struct IndexService {
    shards: Arc<Vec<Shard>>,
    config: ServiceConfig,
    /// Serializes whole checkpoint/save cycles (capture → write images
    /// and manifest → truncate logs). Without it, two interleaved
    /// checkpoints could truncate the logs past the manifest that ends
    /// up on disk, leaving acked commits unrecoverable. Lock order:
    /// this mutex strictly before any shard's wal mutex.
    ckpt: Mutex<()>,
    /// The observability hub every layer of this service reports into.
    obs: Arc<Obs>,
    metrics: ServiceMetrics,
}

/// Pre-registered handles for every hot-path series the service
/// updates — resolved once at construction so the commit and query
/// paths touch only relaxed atomics, never the registry lock.
struct ServiceMetrics {
    commits: Counter,
    batches: Counter,
    /// Transactions coalesced per group-commit batch (dimensionless).
    batch_size: Arc<LatencyHistogram>,
    wal_append: Arc<LatencyHistogram>,
    wal_fsync: Arc<LatencyHistogram>,
    publish: Arc<LatencyHistogram>,
    publish_inplace: Counter,
    publish_cow: Counter,
    cow_pages_detached: Counter,
    queries: Counter,
    query_latency: Arc<LatencyHistogram>,
    plan_index: Counter,
    plan_intersect: Counter,
    plan_scan: Counter,
    /// |estimate − actual| per probed XPath query, in permille of the
    /// larger of the two (dimensionless).
    estimate_drift: Arc<LatencyHistogram>,
}

impl ServiceMetrics {
    fn register(obs: &Obs) -> ServiceMetrics {
        let r = &obs.registry;
        ServiceMetrics {
            commits: r.counter(
                "xvi_service_commits_total",
                "Transactions committed through the group-commit pipeline",
                &[],
            ),
            batches: r.counter(
                "xvi_service_commit_batches_total",
                "Coalesced per-document group-commit batches published",
                &[],
            ),
            batch_size: r.histogram(
                "xvi_service_commit_batch_size",
                "Transactions coalesced per group-commit batch",
                &[],
                Unit::None,
            ),
            wal_append: r.histogram(
                "xvi_service_wal_append_seconds",
                "WAL record append latency per batch",
                &[],
                Unit::Seconds,
            ),
            wal_fsync: r.histogram(
                "xvi_service_wal_fsync_seconds",
                "WAL fsync latency per batch",
                &[],
                Unit::Seconds,
            ),
            publish: r.histogram(
                "xvi_service_publish_seconds",
                "Version publish latency per batch (apply + swap)",
                &[],
                Unit::Seconds,
            ),
            publish_inplace: r.counter(
                "xvi_service_publish_total",
                "Publishes by mode",
                &[("mode", "inplace")],
            ),
            publish_cow: r.counter(
                "xvi_service_publish_total",
                "Publishes by mode",
                &[("mode", "cow")],
            ),
            cow_pages_detached: r.counter(
                "xvi_service_cow_pages_detached_total",
                "Index arena pages copied (detached) by copy-on-write publishes",
                &[],
            ),
            queries: r.counter(
                "xvi_service_queries_total",
                "Lookups served from lock-free snapshots",
                &[],
            ),
            query_latency: r.histogram(
                "xvi_service_query_seconds",
                "Service-level query latency",
                &[],
                Unit::Seconds,
            ),
            plan_index: r.counter(
                "xvi_service_plans_total",
                "Chosen query plan shapes",
                &[("shape", "index")],
            ),
            plan_intersect: r.counter(
                "xvi_service_plans_total",
                "Chosen query plan shapes",
                &[("shape", "intersect")],
            ),
            plan_scan: r.counter(
                "xvi_service_plans_total",
                "Chosen query plan shapes",
                &[("shape", "scan")],
            ),
            estimate_drift: r.histogram(
                "xvi_service_estimate_drift_permille",
                "Planner estimate vs. actual probe cardinality drift (permille)",
                &[],
                Unit::None,
            ),
        }
    }
}

/// Registers the snapshot-time collector that pulls cheap-to-read but
/// pointless-to-mirror values out of the shards: queue depths, doc
/// counts, and the per-kind B+tree statistics (cache hit/miss
/// counters, page sharing, cumulative COW detaches) summed across
/// every published document. Holds only a [`Weak`] reference — the
/// service owns the registry, so a strong one would leak the cycle.
fn register_shard_collector(obs: &Obs, shards: &Arc<Vec<Shard>>) {
    let weak: Weak<Vec<Shard>> = Arc::downgrade(shards);
    obs.registry.register_collector(Box::new(move |sink| {
        let Some(shards) = weak.upgrade() else { return };
        let mut docs = 0u64;
        let mut by_kind: HashMap<String, xvi_btree::TreeStats> = HashMap::new();
        for (i, shard) in shards.iter().enumerate() {
            let depth = shard
                .pipeline
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .queue
                .len() as u64;
            let label = i.to_string();
            sink.gauge(
                "xvi_service_queue_depth",
                "Commit-queue depth per shard",
                &[("shard", label.as_str())],
                depth,
            );
            sink.counter(
                "xvi_service_shard_commits_total",
                "Transactions committed per shard",
                &[("shard", label.as_str())],
                shard.commits.load(Ordering::Relaxed),
            );
            let handles: Vec<Arc<DocHandle>> = shard.catalog.read().values().cloned().collect();
            docs += handles.len() as u64;
            for handle in handles {
                let version = handle.current();
                for (kind, stats) in version.idx.tree_stats_by_kind() {
                    if let Some(agg) = by_kind.get_mut(&kind) {
                        agg.len += stats.len;
                        agg.pages += stats.pages;
                        agg.shared_pages += stats.shared_pages;
                        agg.pages_detached += stats.pages_detached;
                        agg.cache_hits += stats.cache_hits;
                        agg.cache_partial_hits += stats.cache_partial_hits;
                        agg.cache_misses += stats.cache_misses;
                    } else {
                        by_kind.insert(kind, stats);
                    }
                }
            }
        }
        sink.gauge(
            "xvi_service_documents",
            "Documents registered in the catalog",
            &[],
            docs,
        );
        let mut kinds: Vec<_> = by_kind.into_iter().collect();
        kinds.sort_by(|a, b| a.0.cmp(&b.0));
        for (kind, s) in kinds {
            let labels = [("kind", kind.as_str())];
            sink.gauge(
                "xvi_btree_entries",
                "Entries stored per index kind (summed over documents)",
                &labels,
                s.len as u64,
            );
            sink.gauge(
                "xvi_btree_pages",
                "Arena pages per index kind",
                &labels,
                s.pages as u64,
            );
            sink.gauge(
                "xvi_btree_shared_pages",
                "Arena pages currently shared with other clones",
                &labels,
                s.shared_pages as u64,
            );
            sink.counter(
                "xvi_btree_pages_detached_total",
                "Cumulative COW page detaches per index kind",
                &labels,
                s.pages_detached,
            );
            sink.counter(
                "xvi_btree_cache_hits_total",
                "Branch-cache full hits per index kind",
                &labels,
                s.cache_hits,
            );
            sink.counter(
                "xvi_btree_cache_partial_hits_total",
                "Branch-cache partial hits per index kind",
                &labels,
                s.cache_partial_hits,
            );
            sink.counter(
                "xvi_btree_cache_misses_total",
                "Branch-cache misses per index kind",
                &labels,
                s.cache_misses,
            );
        }
    }));
}

impl std::fmt::Debug for IndexService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IndexService")
            .field("shards", &self.shards.len())
            .field("docs", &self.doc_count())
            .field("commits", &self.commit_count())
            .finish()
    }
}

impl IndexService {
    /// Creates an empty service. For [`Durability::Wal`] configs this
    /// delegates to [`IndexService::open`] (creating the directory and
    /// recovering any existing checkpoint + logs) and panics on I/O
    /// failure; call `open` directly to handle such failures.
    pub fn new(config: ServiceConfig) -> IndexService {
        IndexService::new_with_obs(config, Obs::new())
    }

    /// [`IndexService::new`] reporting into an existing observability
    /// hub (shared registry/tracer across layers, or an injected test
    /// clock via [`Obs::with_clock`]).
    pub fn new_with_obs(config: ServiceConfig, obs: Arc<Obs>) -> IndexService {
        match config.durability {
            Durability::Ephemeral => {
                let shards = config.shards.max(1);
                IndexService::build(config, (0..shards).map(|_| None).collect(), obs)
            }
            Durability::Wal(_) => IndexService::open_with_obs(config, obs)
                .expect("opening the WAL-backed service failed"),
        }
    }

    fn build(config: ServiceConfig, wals: Vec<Option<ShardWal>>, obs: Arc<Obs>) -> IndexService {
        debug_assert_eq!(wals.len(), config.shards.max(1));
        let shards: Arc<Vec<Shard>> = Arc::new(wals.into_iter().map(Shard::new).collect());
        register_shard_collector(&obs, &shards);
        let metrics = ServiceMetrics::register(&obs);
        IndexService {
            shards,
            config,
            ckpt: Mutex::new(()),
            obs,
            metrics,
        }
    }

    /// The observability hub: the metrics registry every layer of this
    /// service reports into, and the request tracer / flight recorder.
    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }

    /// Opens a service with recovery. For [`Durability::Ephemeral`]
    /// this is just an empty service. For [`Durability::Wal`] it
    /// restores the durable state from the log directory:
    ///
    /// 1. if a checkpoint (`catalog.xvi` + per-doc images) exists, it
    ///    is loaded — and its shard count, group limit and index
    ///    config **override** the passed config, since the logs are
    ///    sharded by the persisted shard count;
    /// 2. each shard's `wal<i>.log` is scanned, a torn final record
    ///    (crash mid-append) is truncated off, and every record newer
    ///    than the checkpoint's captured sequence is replayed.
    ///
    /// The result is byte-identical to a serial replay of the durable
    /// prefix of the commit history.
    pub fn open(config: ServiceConfig) -> io::Result<IndexService> {
        IndexService::open_with_obs(config, Obs::new())
    }

    /// [`IndexService::open`] reporting into an existing observability
    /// hub.
    pub fn open_with_obs(config: ServiceConfig, obs: Arc<Obs>) -> io::Result<IndexService> {
        let Durability::Wal(dir) = config.durability.clone() else {
            let shards = config.shards.max(1);
            return Ok(IndexService::build(
                config,
                (0..shards).map(|_| None).collect(),
                obs,
            ));
        };
        std::fs::create_dir_all(&dir)?;
        let checkpoint = if dir.join("catalog.xvi").exists() {
            Some(crate::persist::read_checkpoint(&dir)?)
        } else {
            None
        };
        let (config, seqs, docs, commits) = match checkpoint {
            Some(cp) => (
                ServiceConfig {
                    shards: cp.shards,
                    max_group: cp.max_group,
                    index: cp.index,
                    durability: Durability::Wal(dir.clone()),
                    // Not persisted: an admission-control knob, not a
                    // property of the on-disk layout.
                    max_queue: config.max_queue,
                },
                cp.seqs,
                cp.docs,
                cp.commits,
            ),
            None => {
                let shards = config.shards.max(1);
                (config, vec![0; shards], Vec::new(), 0)
            }
        };
        let shard_count = config.shards.max(1);
        if seqs.len() != shard_count {
            return Err(crate::persist::bad(format!(
                "checkpoint has {} shard sequence numbers for {shard_count} shards",
                seqs.len()
            )));
        }
        let mut wals = Vec::with_capacity(shard_count);
        let mut logs = Vec::with_capacity(shard_count);
        for shard in 0..shard_count {
            let (records, wal) = ShardWal::open(&dir, shard)?;
            wals.push(Some(wal));
            logs.push(records);
        }
        let service = IndexService::build(config, wals, obs);
        service.seed_commit_count(commits);
        for (id, version, doc, idx) in docs {
            service.install_version(id, doc, idx, version);
        }
        for (shard, records) in logs.into_iter().enumerate() {
            for (seq, record) in records {
                if seq > seqs[shard] {
                    service.replay_record(record)?;
                }
            }
        }
        Ok(service)
    }

    /// Applies one recovered WAL record directly to the catalog
    /// (without re-logging it — the record is already durable).
    fn replay_record(&self, record: WalRecord) -> io::Result<()> {
        match record {
            WalRecord::Insert { doc, xml } => {
                let parsed = Document::parse(&xml).map_err(|e| {
                    crate::persist::bad(format!("WAL document {doc:?} failed to parse: {e}"))
                })?;
                let idx = IndexManager::build(&parsed, self.config.index.clone());
                self.install_version(doc, parsed, idx, 0);
            }
            WalRecord::Remove { doc } => {
                self.shard_of(&doc).catalog.write().remove(&doc);
            }
            WalRecord::Commit {
                doc,
                committed,
                publish_version,
                writes,
            } => {
                let handle = self.handle(&doc).ok_or_else(|| {
                    crate::persist::bad(format!(
                        "WAL commit record targets unknown document {doc:?}"
                    ))
                })?;
                let mut published = handle.published.write();
                let version = Arc::get_mut(&mut published)
                    .expect("recovery is single-threaded: no snapshot pins this version");
                let writes = writes
                    .iter()
                    .map(|(n, v)| (NodeId::from_index(*n as usize), v.as_str()));
                version
                    .idx
                    .update_values(Arc::make_mut(&mut version.doc), writes)
                    .map_err(|e| {
                        crate::persist::bad(format!("WAL commit replay on {doc:?} failed: {e}"))
                    })?;
                version.version = publish_version;
                drop(published);
                self.shard_of(&doc)
                    .commits
                    .fetch_add(committed, Ordering::Relaxed);
            }
        }
        Ok(())
    }

    /// Seeds the restored commit total (the recovery/load entry
    /// point). Only the sum across shards is meaningful to callers, so
    /// the whole total lands on shard 0; records replayed afterwards
    /// add onto their own shards.
    pub(crate) fn seed_commit_count(&self, total: u64) {
        self.shards[0].commits.store(total, Ordering::Relaxed);
    }

    /// Serializes a whole checkpoint/save cycle; see the `ckpt` field.
    pub(crate) fn checkpoint_guard(&self) -> std::sync::MutexGuard<'_, ()> {
        self.ckpt.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Captures a consistent `(catalog snapshot, per-shard WAL
    /// sequence, commit total)` triple for checkpointing. Each shard's
    /// handles, sequence and commit counter are read under that
    /// shard's wal mutex — the same mutex the leader holds from record
    /// append through publish — so the captured images reflect
    /// **exactly** the records with `seq <= seqs[shard]`: never a
    /// logged-but-unpublished batch, never a published-but-unlogged
    /// one. (For ephemeral services the sequences are all zero.)
    pub(crate) fn capture_for_checkpoint(&self) -> (ServiceSnapshot, Vec<u64>, u64) {
        let mut docs: Vec<(String, Arc<SharedVersion>)> = Vec::new();
        let mut seqs = Vec::with_capacity(self.shards.len());
        let mut commits = 0u64;
        for shard in self.shards.iter() {
            let wal_guard = shard
                .wal
                .as_ref()
                .map(|w| w.lock().unwrap_or_else(|e| e.into_inner()));
            for handle in shard.catalog.read().values() {
                docs.push((handle.id.clone(), handle.current()));
            }
            seqs.push(wal_guard.as_ref().map_or(0, |w| w.seq));
            commits += shard.commits.load(Ordering::Relaxed);
        }
        docs.sort_by(|a, b| a.0.cmp(&b.0));
        (ServiceSnapshot { docs }, seqs, commits)
    }

    /// Checkpoints a [`Durability::Wal`] service: saves fresh per-doc
    /// images plus the manifest into the WAL directory (via the same
    /// crash-safe writer as [`IndexService::save_catalog`]), then
    /// truncates each shard's log up to the captured sequence number.
    /// Recovery time after a checkpoint is proportional to the commits
    /// since it, not to history length.
    ///
    /// Whole checkpoints are serialized against each other (and
    /// against [`IndexService::save_catalog`]): without that, a slow
    /// checkpoint could overwrite the manifest with images older than
    /// the log suffix a faster one already truncated, losing acked
    /// commits.
    ///
    /// Returns [`io::ErrorKind::Unsupported`] for ephemeral services.
    pub fn checkpoint(&self) -> io::Result<()> {
        let Durability::Wal(dir) = &self.config.durability else {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "checkpoint requires a WAL-backed service (Durability::Wal)",
            ));
        };
        let _serialize = self.checkpoint_guard();
        let (snap, seqs, commits) = self.capture_for_checkpoint();
        crate::persist::save_snapshot_to(dir, &snap, &seqs, commits, self.config())?;
        for (shard, &seq) in self.shards.iter().zip(&seqs) {
            let mut wal = shard
                .wal
                .as_ref()
                .expect("WAL-backed service has a log per shard")
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            wal.truncate_through(seq)?;
        }
        Ok(())
    }

    /// The active configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    fn shard_index(&self, doc_id: &str) -> usize {
        let mut h = DefaultHasher::new();
        doc_id.hash(&mut h);
        (h.finish() % self.shards.len() as u64) as usize
    }

    fn shard_of(&self, doc_id: &str) -> &Shard {
        &self.shards[self.shard_index(doc_id)]
    }

    fn handle(&self, doc_id: &str) -> Option<Arc<DocHandle>> {
        self.shard_of(doc_id).catalog.read().get(doc_id).cloned()
    }

    // ----- catalog ----------------------------------------------------------

    /// Builds indices for `doc` (outside any lock) and registers it
    /// under `id`, replacing any previous document with that id.
    ///
    /// On a [`Durability::Wal`] service the registration is logged and
    /// fsynced before it becomes visible; this infallible wrapper
    /// panics if that fails — use
    /// [`IndexService::try_insert_document`] to handle log I/O errors.
    pub fn insert_document(&self, id: impl Into<String>, doc: Document) {
        self.try_insert_document(id, doc)
            .expect("WAL append/fsync failed while registering the document")
    }

    /// Fallible [`IndexService::insert_document`]: an `Err` means the
    /// WAL append or fsync failed and the document was **not**
    /// registered.
    pub fn try_insert_document(&self, id: impl Into<String>, doc: Document) -> io::Result<()> {
        let id = id.into();
        let idx = IndexManager::build(&doc, self.config.index.clone());
        let shard = self.shard_of(&id);
        // Lock order: wal → catalog. The wal mutex is held through the
        // install so a concurrent checkpoint capture sees the logged
        // record and the catalog entry together or not at all.
        let wal_guard = shard
            .wal
            .as_ref()
            .map(|w| w.lock().unwrap_or_else(|e| e.into_inner()));
        if let Some(mut wal) = wal_guard {
            wal.append_insert(&id, &xvi_xml::serialize::to_string(&doc))?;
            wal.sync()?;
            self.install_version(id, doc, idx, 0);
        } else {
            self.install_version(id, doc, idx, 0);
        }
        Ok(())
    }

    /// Registers a prebuilt `(document, index, version)` triple — the
    /// catalog loader's entry point, which must restore versions
    /// instead of resetting them.
    pub(crate) fn install_version(
        &self,
        id: String,
        doc: Document,
        idx: IndexManager,
        version: u64,
    ) {
        let handle = Arc::new(DocHandle {
            id: id.clone(),
            published: RwLock::new(Arc::new(SharedVersion {
                doc: Arc::new(doc),
                idx,
                version,
            })),
        });
        self.shard_of(&id).catalog.write().insert(id, handle);
    }

    /// Removes a document, returning its final state. Panics if the
    /// removal could not be logged on a [`Durability::Wal`] service;
    /// use [`IndexService::try_remove_document`] to handle that.
    pub fn remove_document(&self, id: &str) -> Option<(Document, IndexManager)> {
        self.try_remove_document(id)
            .expect("WAL append/fsync failed while removing the document")
    }

    /// Fallible [`IndexService::remove_document`]: an `Err` means the
    /// WAL append or fsync failed and the document is still
    /// registered.
    pub fn try_remove_document(&self, id: &str) -> io::Result<Option<(Document, IndexManager)>> {
        let shard = self.shard_of(id);
        // Lock order: wal → catalog (see `Shard`).
        let mut wal_guard = shard
            .wal
            .as_ref()
            .map(|w| w.lock().unwrap_or_else(|e| e.into_inner()));
        let mut catalog = shard.catalog.write();
        if !catalog.contains_key(id) {
            return Ok(None);
        }
        if let Some(wal) = wal_guard.as_mut() {
            wal.append_remove(id)?;
            wal.sync()?;
        }
        let handle = catalog.remove(id).expect("presence checked above");
        drop(catalog);
        drop(wal_guard);
        let version = handle.current();
        match Arc::try_unwrap(version) {
            Ok(v) => Ok(Some((Arc::unwrap_or_clone(v.doc), v.idx))),
            Err(shared) => Ok(Some(((*shared.doc).clone(), shared.idx.clone()))),
        }
    }

    /// Whether a document is registered under `id`.
    pub fn contains_document(&self, id: &str) -> bool {
        self.handle(id).is_some()
    }

    /// All registered document ids, sorted.
    pub fn doc_ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self
            .shards
            .iter()
            .flat_map(|s| s.catalog.read().keys().cloned().collect::<Vec<_>>())
            .collect();
        ids.sort();
        ids
    }

    /// Number of hosted documents.
    pub fn doc_count(&self) -> usize {
        self.shards.iter().map(|s| s.catalog.read().len()).sum()
    }

    // ----- reads ------------------------------------------------------------

    /// Snapshot of one document's committed state. The returned value
    /// is immutable and queried without holding any lock.
    pub fn snapshot(&self, doc_id: &str) -> Option<DocSnapshot> {
        Some(DocSnapshot {
            inner: self.handle(doc_id)?.current(),
        })
    }

    /// Runs a closure over a lock-free snapshot of one document.
    pub fn read<R>(
        &self,
        doc_id: &str,
        f: impl FnOnce(&Document, &IndexManager) -> R,
    ) -> Option<R> {
        let snap = self.snapshot(doc_id)?;
        Some(f(snap.document(), snap.index()))
    }

    /// Snapshot of the whole catalog (every document's current
    /// version, id-sorted), for cross-document fan-out queries.
    pub fn snapshot_all(&self) -> ServiceSnapshot {
        let mut docs: Vec<Arc<DocHandle>> = self
            .shards
            .iter()
            .flat_map(|s| s.catalog.read().values().cloned().collect::<Vec<_>>())
            .collect();
        docs.sort_by(|a, b| a.id.cmp(&b.id));
        ServiceSnapshot {
            docs: docs
                .into_iter()
                .map(|h| (h.id.clone(), h.current()))
                .collect(),
        }
    }

    /// Evaluates one typed [`Lookup`] against a lock-free snapshot of
    /// `doc_id`'s committed state — the service-level twin of
    /// [`IndexManager::query`].
    ///
    /// Every call lands in the query counter and latency histogram;
    /// when request tracing is enabled
    /// (`service.obs().tracer.set_sample_rate(..)`), sampled calls
    /// additionally record per-stage timings (plan, probe,
    /// verify-walk) and are offered to the flight recorder. Traced or
    /// not, results are identical — the taps only observe.
    pub fn query(&self, doc_id: &str, lookup: &Lookup) -> QueryResult {
        let trace = self
            .obs
            .tracer
            .maybe_start("query", || format!("doc={doc_id} lookup={lookup:?}"));
        let out = self.query_traced(doc_id, lookup, trace.as_ref());
        if let Some(t) = trace {
            self.obs.tracer.finish(t);
        }
        out
    }

    /// [`IndexService::query`] under an externally owned [`Trace`]
    /// (the serve frontend threads its request trace through here; it
    /// finishes the trace itself once the response is complete). Also
    /// the shared implementation of the untraced path — `trace: None`
    /// costs two clock reads for the latency histogram and nothing
    /// else.
    pub fn query_traced(
        &self,
        doc_id: &str,
        lookup: &Lookup,
        trace: Option<&Trace>,
    ) -> QueryResult {
        let clock = self.obs.tracer.clock();
        let t0 = clock.now_ns();
        let out = self.query_inner(doc_id, lookup, trace);
        self.metrics.queries.inc();
        self.metrics
            .query_latency
            .record_value(clock.now_ns().saturating_sub(t0));
        out
    }

    fn query_inner(&self, doc_id: &str, lookup: &Lookup, trace: Option<&Trace>) -> QueryResult {
        let snap = self
            .snapshot(doc_id)
            .ok_or_else(|| IndexError::UnknownDocument(doc_id.to_string()))?;
        match lookup {
            Lookup::XPath(query) => {
                // Plan at this level so the plan shape, the
                // `--explain`-style rendering, and the
                // estimate-vs-actual drift all land in the
                // observability layer; the chosen plan is exactly what
                // `IndexManager::query` would pick, so results are
                // identical to the untraced path.
                let tp = trace.map(|t| t.now_ns());
                let plan = QueryEngine::plan(snap.index(), query);
                if let (Some(t), Some(tp)) = (trace, tp) {
                    t.record_stage(Stage::Plan, tp);
                    t.annotate(&format!("plan: {plan}"));
                }
                let estimate = match &plan {
                    Plan::Index(p) => {
                        self.metrics.plan_index.inc();
                        Some(p.estimate.estimate)
                    }
                    Plan::Intersect(a, b) => {
                        self.metrics.plan_intersect.inc();
                        Some(a.estimate.estimate + b.estimate.estimate)
                    }
                    Plan::Scan => {
                        self.metrics.plan_scan.inc();
                        None
                    }
                };
                let mut probed = estimate.map(|_| 0usize);
                let nodes = QueryEngine::evaluate_with_plan_probed(
                    snap.document(),
                    snap.index(),
                    query,
                    &plan,
                    trace,
                    &mut probed,
                );
                if let (Some(est), Some(actual)) = (estimate, probed) {
                    let denom = est.max(actual).max(1) as u64;
                    let drift = est.abs_diff(actual) as u64 * 1000 / denom;
                    self.metrics.estimate_drift.record_value(drift);
                    if let Some(t) = trace {
                        t.annotate(&format!("probe estimate={est} actual={actual}"));
                    }
                }
                Ok(nodes)
            }
            _ => {
                let tp = trace.map(|t| t.now_ns());
                let out = snap.query(lookup);
                if let (Some(t), Some(tp)) = (trace, tp) {
                    t.record_stage(Stage::Probe, tp);
                }
                out
            }
        }
    }

    /// Estimates the candidate cardinality of `lookup` against
    /// `doc_id`'s committed state — the service-level twin of
    /// [`IndexManager::estimate`]: **exact** for tree-backed lookups
    /// (answered from the B+trees' monoid summaries), bounded for
    /// substring probes.
    pub fn estimate(
        &self,
        doc_id: &str,
        lookup: &Lookup,
    ) -> Result<CardinalityEstimate, IndexError> {
        self.snapshot(doc_id)
            .ok_or_else(|| IndexError::UnknownDocument(doc_id.to_string()))?
            .estimate(lookup)
    }

    /// Number of transactions committed into `doc_id`'s current
    /// version.
    pub fn version_of(&self, doc_id: &str) -> Option<u64> {
        Some(self.handle(doc_id)?.current().version)
    }

    /// Total committed transactions across all documents. On a
    /// [`Durability::Wal`] service the total survives restarts: the
    /// checkpoint manifest persists it and recovery seeds the counter
    /// from it before replaying post-checkpoint records.
    pub fn commit_count(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.commits.load(Ordering::Relaxed))
            .sum()
    }

    // ----- commits ----------------------------------------------------------

    /// Starts an empty transaction (a buffered write batch; see
    /// [`Transaction`]). Nothing is locked by an open transaction.
    pub fn begin(&self) -> Transaction {
        Transaction::default()
    }

    /// Enqueues a transaction on `doc_id`'s shard **without blocking**
    /// and returns a [`CommitTicket`] for the in-flight commit. The
    /// batch is applied by a later group-commit round; reap the
    /// outcome with [`CommitTicket::wait`] or [`CommitTicket::try_poll`],
    /// in any order relative to other tickets.
    ///
    /// A transaction either applies completely or not at all: if any
    /// buffered write targets a dead or non-value node, the whole
    /// transaction is rejected and the document is untouched. An empty
    /// transaction (or one against an unregistered document) returns
    /// an already-completed ticket.
    pub fn submit(&self, doc_id: &str, txn: Transaction) -> CommitTicket<'_> {
        self.enqueue(doc_id, txn, usize::MAX, None)
            .expect("unbounded submissions are never rejected")
    }

    /// Bounded [`IndexService::submit`]: the admission-control fast
    /// path. If the target shard already has
    /// [`ServiceConfig::max_queue`] transactions waiting, the
    /// submission is rejected **without enqueueing anything** and
    /// without blocking: the caller gets a typed
    /// [`IndexError::Overloaded`] carrying a suggested backoff derived
    /// from the queue depth, and the service's state is untouched — no
    /// unbounded queue growth, no silently dropped commit.
    ///
    /// Empty transactions and transactions against unknown documents
    /// behave exactly like [`IndexService::submit`] (an
    /// already-completed ticket), since they occupy no queue space.
    ///
    /// ```
    /// use xvi_index::{Document, IndexError, IndexService, ServiceConfig};
    ///
    /// let service = IndexService::new(
    ///     ServiceConfig::with_shards(1).with_max_queue(2));
    /// service.insert_document("crew", Document::parse(
    ///     "<person><name>Arthur</name></person>").unwrap());
    /// let node = service.read("crew", |doc, _| {
    ///     doc.descendants(doc.document_node())
    ///         .find(|&n| doc.direct_value(n).is_some()).unwrap()
    /// }).unwrap();
    ///
    /// let submit = |v: &str| {
    ///     let mut txn = service.begin();
    ///     txn.set_value(node, v);
    ///     service.try_submit("crew", txn)
    /// };
    /// // Nothing drives the pipeline yet, so the queue fills.
    /// let t1 = submit("a").unwrap();
    /// let t2 = submit("b").unwrap();
    /// assert!(matches!(
    ///     submit("c").unwrap_err(),
    ///     IndexError::Overloaded { .. }));
    /// // Draining the queue makes room again.
    /// t2.wait().unwrap();
    /// t1.wait().unwrap();
    /// assert!(submit("c").is_ok());
    /// ```
    pub fn try_submit(
        &self,
        doc_id: &str,
        txn: Transaction,
    ) -> Result<CommitTicket<'_>, IndexError> {
        self.enqueue(doc_id, txn, self.config.max_queue.max(1), None)
    }

    /// [`IndexService::try_submit`] under an externally owned
    /// [`Trace`]: the group-commit leader records the queue wait and
    /// attributes the round's WAL-append / fsync / publish timings to
    /// the trace, but the **caller** finishes it (after the ticket
    /// resolves), so the trace's total spans the caller's whole
    /// request, not just the pipeline's part.
    pub fn try_submit_traced(
        &self,
        doc_id: &str,
        txn: Transaction,
        trace: Option<Trace>,
    ) -> Result<CommitTicket<'_>, IndexError> {
        self.enqueue(doc_id, txn, self.config.max_queue.max(1), trace)
    }

    /// Shared enqueue path of [`IndexService::submit`] (unbounded) and
    /// [`IndexService::try_submit`] (bounded by `max_queue`). With no
    /// external trace, the tracer's sampler decides per submission
    /// whether to start a service-owned one.
    fn enqueue(
        &self,
        doc_id: &str,
        txn: Transaction,
        max_queue: usize,
        trace: Option<Trace>,
    ) -> Result<CommitTicket<'_>, IndexError> {
        let Some(handle) = self.handle(doc_id) else {
            return Ok(CommitTicket {
                service: self,
                shard: None,
                slot: CommitSlot::completed(Err(IndexError::UnknownDocument(doc_id.to_string()))),
            });
        };
        if txn.writes.is_empty() {
            let receipt = CommitReceipt {
                version: handle.current().version,
                applied: 0,
            };
            return Ok(CommitTicket {
                service: self,
                shard: None,
                slot: CommitSlot::completed(Ok(receipt)),
            });
        }
        let shard_idx = self.shard_index(doc_id);
        let slot = Arc::new(CommitSlot::new());
        let mut st = self.shards[shard_idx]
            .pipeline
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if st.queue.len() >= max_queue {
            let depth = st.queue.len();
            drop(st);
            return Err(IndexError::Overloaded {
                shard: shard_idx,
                retry_after: retry_after_for_depth(depth),
            });
        }
        let trace = match trace {
            Some(t) => Some(PendingTrace {
                enqueue_ns: t.now_ns(),
                trace: t,
                owned: false,
            }),
            None => self
                .obs
                .tracer
                .maybe_start("commit", || {
                    format!("doc={doc_id} writes={}", txn.writes.len())
                })
                .map(|t| PendingTrace {
                    enqueue_ns: t.now_ns(),
                    trace: t,
                    owned: true,
                }),
        };
        st.queue.push_back(Pending {
            handle,
            writes: txn.writes,
            slot: Arc::clone(&slot),
            trace,
        });
        drop(st);
        Ok(CommitTicket {
            service: self,
            shard: Some(shard_idx),
            slot,
        })
    }

    /// Commit-queue depth of the shard owning `doc_id` — what an
    /// admission controller compares against
    /// [`ServiceConfig::max_queue`].
    pub fn queue_depth(&self, doc_id: &str) -> usize {
        self.shards[self.shard_index(doc_id)]
            .pipeline
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .queue
            .len()
    }

    /// Commit-queue depth of every shard, index-aligned with the
    /// shard layout (for observability snapshots).
    pub fn queue_depths(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| {
                s.pipeline
                    .state
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .queue
                    .len()
            })
            .collect()
    }

    /// Commits a transaction against `doc_id` through the shard's
    /// group-commit pipeline, blocking until the batch is durably
    /// published: exactly [`IndexService::submit`] followed by
    /// [`CommitTicket::wait`].
    pub fn commit(&self, doc_id: &str, txn: Transaction) -> Result<CommitReceipt, IndexError> {
        self.submit(doc_id, txn).wait()
    }

    /// Claims shard leadership: `true` if the caller must now drain
    /// the queue via [`IndexService::run_leader`], `false` if the
    /// queue is empty or another leader is already active.
    fn try_lead(&self, shard: &Shard) -> bool {
        let mut st = shard
            .pipeline
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if st.leader_active || st.queue.is_empty() {
            false
        } else {
            st.leader_active = true;
            true
        }
    }

    /// Drains the shard's queue in group rounds until it is empty,
    /// then steps down. Called by the waiter that found the pipeline
    /// idle; all other waiters merely block on their slot.
    ///
    /// If the leader unwinds (a panic inside a round), the drop guard
    /// steps it down and fails everything still queued, so no
    /// committer blocks forever behind a dead leader and the next
    /// enqueuer can take over.
    fn run_leader(&self, shard: &Shard) {
        struct StepDown<'a> {
            pipeline: &'a Pipeline,
            clean_exit: bool,
        }
        impl Drop for StepDown<'_> {
            fn drop(&mut self) {
                if self.clean_exit {
                    return;
                }
                let mut st = self
                    .pipeline
                    .state
                    .lock()
                    .unwrap_or_else(|e| e.into_inner());
                st.leader_active = false;
                for p in st.queue.drain(..) {
                    p.slot.fill(Err(IndexError::CommitPipelinePoisoned));
                }
            }
        }

        let mut guard = StepDown {
            pipeline: &shard.pipeline,
            clean_exit: false,
        };
        let max_group = self.config.max_group.max(1);
        loop {
            let round: Vec<Pending> = {
                let mut st = shard
                    .pipeline
                    .state
                    .lock()
                    .unwrap_or_else(|e| e.into_inner());
                if st.queue.is_empty() {
                    st.leader_active = false;
                    guard.clean_exit = true;
                    return;
                }
                let n = st.queue.len().min(max_group);
                st.queue.drain(..n).collect()
            };
            self.apply_group(shard, round);
        }
    }

    /// Applies one group round: coalesces the batches per document,
    /// makes each coalesced batch durable (one WAL record + one fsync
    /// per batch, when a log is configured), repairs each affected
    /// document's ancestors once, publishes the new versions, and
    /// wakes every waiting committer.
    fn apply_group(&self, shard: &Shard, round: Vec<Pending>) {
        // If this round unwinds partway (a panic inside the apply),
        // fail every slot that was not yet filled so its committer
        // wakes up instead of blocking forever. `fill` is idempotent,
        // so slots completed before the panic keep their result.
        struct FailUnfilled {
            slots: Vec<Arc<CommitSlot>>,
        }
        impl Drop for FailUnfilled {
            fn drop(&mut self) {
                for slot in &self.slots {
                    slot.fill(Err(IndexError::CommitPipelinePoisoned));
                }
            }
        }
        let _round_guard = FailUnfilled {
            slots: round.iter().map(|p| Arc::clone(&p.slot)).collect(),
        };

        // Group by document, preserving enqueue order within each.
        let mut order: Vec<Arc<DocHandle>> = Vec::new();
        let mut by_doc: HashMap<String, Vec<Pending>> = HashMap::new();
        for p in round {
            let entry = by_doc.entry(p.handle.id.clone()).or_default();
            if entry.is_empty() {
                order.push(Arc::clone(&p.handle));
            }
            entry.push(p);
        }

        let clock = self.obs.tracer.clock();
        for handle in order {
            let group = by_doc.remove(&handle.id).expect("grouped above");
            let base = handle.current();
            let drain_ns = clock.now_ns();

            // Validate each transaction against the base version so a
            // bad batch is rejected wholesale instead of applying
            // halfway; surviving batches are coalesced into one
            // `update_values` pass (writes in enqueue order, so a
            // later transaction's write to the same node wins — the
            // serial-replay outcome).
            let mut results: Vec<(Arc<CommitSlot>, Result<CommitReceipt, IndexError>)> = Vec::new();
            let mut traces: Vec<PendingTrace> = Vec::new();
            let mut coalesced: Vec<(NodeId, String)> = Vec::new();
            let mut committed = 0u64;
            for p in group {
                if let Some(pt) = p.trace {
                    pt.trace.record_stage_dur(
                        Stage::QueueWait,
                        pt.enqueue_ns,
                        drain_ns.saturating_sub(pt.enqueue_ns),
                    );
                    traces.push(pt);
                }
                match validate(&base.doc, &p.writes) {
                    Ok(()) => {
                        let n = p.writes.len();
                        coalesced.extend(p.writes);
                        committed += 1;
                        results.push((
                            p.slot,
                            Ok(CommitReceipt {
                                // All transactions of this round become
                                // visible in the same publish; its version
                                // is patched in below once known.
                                version: 0,
                                applied: n,
                            }),
                        ));
                    }
                    Err(e) => results.push((p.slot, Err(e))),
                }
            }
            let publish_version = base.version + committed;
            // Release the leader's extra reference before the
            // uniqueness probe below.
            drop(base);

            if !coalesced.is_empty() {
                // Lock order: wal → catalog → published (see `Shard`).
                // The wal mutex stays held from the append through the
                // publish, so a checkpoint capture can never observe a
                // logged-but-unpublished (or published-but-unlogged)
                // batch.
                let mut wal_guard = shard
                    .wal
                    .as_ref()
                    .map(|w| w.lock().unwrap_or_else(|e| e.into_inner()));
                // Apply under the catalog read lock, after checking
                // the handle is still the catalog's entry for this id:
                // `insert_document` / `remove_document` take the
                // catalog *write* lock, so a concurrent replacement or
                // removal cannot orphan this apply — the commit either
                // lands in the live document or fails loudly.
                let catalog = shard.catalog.read();
                let still_current = catalog
                    .get(&handle.id)
                    .is_some_and(|h| Arc::ptr_eq(h, &handle));
                if still_current {
                    // Durability first: the coalesced batch goes to the
                    // shard's log as ONE framed record with ONE fsync
                    // before any reader can observe its effects — the
                    // durable cost of the round is O(batch delta). On
                    // failure nothing publishes: an unlogged commit
                    // must never become visible, so every transaction
                    // of the batch reports `Durability` instead.
                    let durable = match wal_guard.as_mut() {
                        Some(wal) => {
                            let t0 = clock.now_ns();
                            let appended = wal.append_commit(
                                &handle.id,
                                committed,
                                publish_version,
                                &coalesced,
                            );
                            let t1 = clock.now_ns();
                            self.metrics.wal_append.record_value(t1.saturating_sub(t0));
                            let synced = appended.and_then(|_| wal.sync());
                            let t2 = clock.now_ns();
                            self.metrics.wal_fsync.record_value(t2.saturating_sub(t1));
                            // One shared append + one fsync cover the
                            // whole batch; every trace in it carries
                            // the same timings.
                            for pt in &traces {
                                pt.trace.record_stage_dur(
                                    Stage::WalAppend,
                                    t0,
                                    t1.saturating_sub(t0),
                                );
                                pt.trace
                                    .record_stage_dur(Stage::Fsync, t1, t2.saturating_sub(t1));
                            }
                            synced
                        }
                        None => Ok(()),
                    };
                    if let Err(e) = durable {
                        drop(catalog);
                        drop(wal_guard);
                        for (_, r) in results.iter_mut() {
                            if r.is_ok() {
                                *r = Err(IndexError::Durability(e.to_string()));
                            }
                        }
                        for (slot, r) in results {
                            slot.fill(r);
                        }
                        for pt in traces {
                            if pt.owned {
                                self.obs.tracer.finish(pt.trace);
                            }
                        }
                        continue;
                    }
                    let publish_t0 = clock.now_ns();
                    let mut cow = false;
                    let pages_detached: u64;
                    let mut published = handle.published.write();
                    let writes = coalesced.iter().map(|(n, v)| (*n, v.as_str()));
                    if let Some(version) = Arc::get_mut(&mut published) {
                        // No snapshot is outstanding, so nobody can
                        // observe this version: update it in place at
                        // the paper's O(writes + ancestors) cost
                        // (readers briefly queue on the published
                        // lock, exactly like the pre-service
                        // TransactionalStore). `make_mut` on the inner
                        // document is in-place too unless an older
                        // version still shares it.
                        let before = version.idx.pages_detached();
                        version
                            .idx
                            .update_values(Arc::make_mut(&mut version.doc), writes)
                            .expect("writes were validated against this version");
                        version.version += committed;
                        pages_detached = version.idx.pages_detached() - before;
                    } else {
                        // Live snapshots exist: copy-on-write so they
                        // stay immutable, and swap in the successor.
                        // Both "clones" are O(pages) pointer bumps —
                        // the paged arenas underneath share every page
                        // with the pinned version, and `update_values`
                        // detaches only the pages the batch touches,
                        // so the publish costs O(touched set), not
                        // O(document).
                        cow = true;
                        let mut doc = Arc::clone(&published.doc);
                        let mut idx = published.idx.clone();
                        // The clone inherited the base's cumulative
                        // detach count, so the delta is exactly the
                        // pages this publish copied.
                        let before = idx.pages_detached();
                        idx.update_values(Arc::make_mut(&mut doc), writes)
                            .expect("writes were validated against this version");
                        pages_detached = idx.pages_detached() - before;
                        *published = Arc::new(SharedVersion {
                            version: published.version + committed,
                            doc,
                            idx,
                        });
                    }
                    drop(published);
                    drop(catalog);
                    // Still under the wal mutex: the count stays
                    // exactly consistent with the log sequence a
                    // concurrent checkpoint capture would read.
                    shard.commits.fetch_add(committed, Ordering::Relaxed);
                    let publish_dur = clock.now_ns().saturating_sub(publish_t0);
                    self.metrics.publish.record_value(publish_dur);
                    if cow {
                        self.metrics.publish_cow.inc();
                    } else {
                        self.metrics.publish_inplace.inc();
                    }
                    self.metrics.cow_pages_detached.add(pages_detached);
                    self.metrics.commits.add(committed);
                    self.metrics.batches.inc();
                    self.metrics.batch_size.record_value(committed);
                    for pt in &traces {
                        pt.trace
                            .record_stage_dur(Stage::Publish, publish_t0, publish_dur);
                        pt.trace.annotate(&format!(
                            "batch: txns={committed} writes={} publish={} pages_detached={pages_detached}",
                            coalesced.len(),
                            if cow { "cow" } else { "inplace" },
                        ));
                    }
                    for (_, r) in results.iter_mut() {
                        if let Ok(receipt) = r {
                            receipt.version = publish_version;
                        }
                    }
                } else {
                    drop(catalog);
                    for (_, r) in results.iter_mut() {
                        if r.is_ok() {
                            *r = Err(IndexError::DocumentReplaced(handle.id.clone()));
                        }
                    }
                }
            }

            // Wake the committers only after the publish, so a
            // returned `commit` is visible to every later snapshot.
            for (slot, r) in results {
                slot.fill(r);
            }
            // Service-owned traces end here (the commit is published
            // and acknowledged); caller-owned ones stay open until
            // the caller's request completes.
            for pt in traces {
                if pt.owned {
                    self.obs.tracer.finish(pt.trace);
                }
            }
        }
    }
}

/// Backoff suggestion for an [`IndexError::Overloaded`] rejection:
/// proportional to the rejected-at queue depth (a leader drains and
/// publishes a queued transaction in roughly tens of microseconds),
/// clamped so callers neither hot-spin on a barely-full queue nor
/// stall for seconds on a deep one.
fn retry_after_for_depth(depth: usize) -> std::time::Duration {
    const PER_QUEUED_US: u64 = 20;
    std::time::Duration::from_micros((depth as u64 * PER_QUEUED_US).clamp(100, 50_000))
}

/// Pre-checks a write batch against a document: every target must be a
/// live text or attribute node (the same conditions
/// [`IndexManager::update_values`] enforces, hoisted before any state
/// is touched).
fn validate(doc: &Document, writes: &[(NodeId, String)]) -> Result<(), IndexError> {
    for &(node, _) in writes {
        if !doc.is_live(node) {
            return Err(IndexError::DeadNode(node));
        }
        match doc.kind(node) {
            NodeKind::Text(_) | NodeKind::Attribute { .. } => {}
            _ => return Err(IndexError::NotAValueNode(node)),
        }
    }
    Ok(())
}

/// An immutable snapshot of one document's committed state.
///
/// Cheap to clone (an [`Arc`] bump); queries run without any lock and
/// are unaffected by concurrent commits.
#[derive(Debug, Clone)]
pub struct DocSnapshot {
    inner: Arc<SharedVersion>,
}

impl DocSnapshot {
    /// The snapshotted document.
    pub fn document(&self) -> &Document {
        &self.inner.doc
    }

    /// The snapshotted indices.
    pub fn index(&self) -> &IndexManager {
        &self.inner.idx
    }

    /// Number of transactions committed into this version.
    pub fn version(&self) -> u64 {
        self.inner.version
    }

    /// Evaluates one typed [`Lookup`] against this immutable version
    /// (no lock held, unaffected by concurrent commits).
    pub fn query(&self, lookup: &Lookup) -> QueryResult {
        self.inner.idx.query(&self.inner.doc, lookup)
    }

    /// Estimates the candidate cardinality of `lookup` against this
    /// version (see [`IndexManager::estimate`]): exact for tree-backed
    /// lookups, bounded for substring probes. Because the version is
    /// immutable, the answer cannot drift under concurrent commits.
    pub fn estimate(&self, lookup: &Lookup) -> Result<CardinalityEstimate, IndexError> {
        self.inner.idx.estimate(lookup)
    }
}

/// A catalog-wide snapshot supporting fan-out lookups across every
/// hosted document (id-sorted, deterministic result order).
#[derive(Debug, Clone)]
pub struct ServiceSnapshot {
    docs: Vec<(String, Arc<SharedVersion>)>,
}

impl ServiceSnapshot {
    /// Number of documents in the snapshot.
    pub fn doc_count(&self) -> usize {
        self.docs.len()
    }

    /// Iterates over `(id, snapshot)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, DocSnapshot)> + '_ {
        self.docs.iter().map(|(id, v)| {
            (
                id.as_str(),
                DocSnapshot {
                    inner: Arc::clone(v),
                },
            )
        })
    }

    /// Evaluates one typed [`Lookup`] fanned out across every document
    /// in the snapshot; returns `(doc id, node)` hits in id order (ids
    /// borrowed from the snapshot — no per-hit allocation; call
    /// `to_owned` on an id to keep it as a [`DocId`]).
    ///
    /// Documents whose configuration lacks the index family a lookup
    /// needs are skipped rather than failing the whole fan-out (e.g. a
    /// [`Lookup::Contains`] over a catalog without substring indices
    /// returns no hits for those documents) — so every lookup flavor,
    /// including typed-range, typed-eq and wildcard, is available
    /// across documents.
    pub fn query(&self, lookup: &Lookup) -> Vec<(&str, NodeId)> {
        self.docs
            .iter()
            .flat_map(|(id, v)| {
                v.idx
                    .query(&v.doc, lookup)
                    .unwrap_or_default()
                    .into_iter()
                    .map(move |n| (id.as_str(), n))
            })
            .collect()
    }

    /// Estimates the fan-out cardinality of `lookup` across every
    /// document in the snapshot: the component-wise sum of each
    /// document's [`IndexManager::estimate`]. Documents whose
    /// configuration lacks the needed index family contribute nothing,
    /// mirroring [`ServiceSnapshot::query`]'s skip semantics.
    pub fn estimate(&self, lookup: &Lookup) -> CardinalityEstimate {
        self.docs
            .iter()
            .filter_map(|(_, v)| v.idx.estimate(lookup).ok())
            .fold(CardinalityEstimate::empty(), CardinalityEstimate::sum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Barrier;
    use xvi_hash::hash_str;

    const DOC_A: &str = "<person><name>Arthur</name><age>42</age></person>";
    const DOC_B: &str = "<person><name>Ford</name><age>200</age></person>";

    fn text_node(doc: &Document, content: &str) -> NodeId {
        doc.descendants(doc.document_node())
            .find(|&n| matches!(doc.kind(n), NodeKind::Text(t) if t == content))
            .unwrap()
    }

    fn service_with_two_docs() -> IndexService {
        let service = IndexService::new(ServiceConfig::with_shards(4));
        service.insert_document("a", Document::parse(DOC_A).unwrap());
        service.insert_document("b", Document::parse(DOC_B).unwrap());
        service
    }

    #[test]
    fn catalog_round_trip() {
        let service = service_with_two_docs();
        assert_eq!(service.doc_count(), 2);
        assert_eq!(service.doc_ids(), vec!["a", "b"]);
        assert!(service.contains_document("a"));
        assert!(!service.contains_document("c"));
        let (doc, idx) = service.remove_document("b").unwrap();
        assert_eq!(idx.query(&doc, &Lookup::equi("Ford")).unwrap().len(), 2);
        assert_eq!(service.doc_count(), 1);
        assert!(service.remove_document("b").is_none());
    }

    #[test]
    fn commit_against_missing_doc_errors() {
        let service = service_with_two_docs();
        let txn = service.begin();
        let err = service.commit("nope", txn).unwrap_err();
        assert!(matches!(err, IndexError::UnknownDocument(id) if id == "nope"));
    }

    #[test]
    fn empty_commit_is_free() {
        let service = service_with_two_docs();
        assert_eq!(service.commit("a", service.begin()).unwrap().applied, 0);
        assert_eq!(service.commit_count(), 0);
        assert_eq!(service.version_of("a"), Some(0));
    }

    #[test]
    fn commit_updates_one_doc_only() {
        let service = service_with_two_docs();
        let node = service
            .read("a", |doc, _| text_node(doc, "Arthur"))
            .unwrap();
        let mut txn = service.begin();
        txn.set_value(node, "Tricia");
        assert_eq!(service.commit("a", txn).unwrap().applied, 1);
        assert_eq!(service.version_of("a"), Some(1));
        assert_eq!(service.version_of("b"), Some(0));
        service
            .read("a", |doc, idx| {
                assert_eq!(idx.query(doc, &Lookup::equi("Tricia")).unwrap().len(), 2);
                idx.verify_against(doc).unwrap();
            })
            .unwrap();
    }

    #[test]
    fn snapshots_are_immutable_under_commits() {
        let service = service_with_two_docs();
        let before = service.snapshot("a").unwrap();
        let node = service
            .read("a", |doc, _| text_node(doc, "Arthur"))
            .unwrap();
        let mut txn = service.begin();
        txn.set_value(node, "Zaphod");
        service.commit("a", txn).unwrap();
        // The old snapshot still sees the old value...
        assert_eq!(
            before
                .index()
                .query(before.document(), &Lookup::equi("Arthur"))
                .unwrap()
                .len(),
            2
        );
        assert_eq!(before.version(), 0);
        // ...while a fresh one sees the new state.
        let after = service.snapshot("a").unwrap();
        assert!(after
            .index()
            .query(after.document(), &Lookup::equi("Arthur"))
            .unwrap()
            .is_empty());
        assert_eq!(after.version(), 1);
    }

    #[test]
    fn atomic_rejection_of_bad_transactions() {
        let service = service_with_two_docs();
        let (good, root) = service
            .read("a", |doc, _| {
                (text_node(doc, "Arthur"), doc.root_element().unwrap())
            })
            .unwrap();
        let mut txn = service.begin();
        txn.set_value(good, "Marvin");
        txn.set_value(root, "not a value node");
        let err = service.commit("a", txn).unwrap_err();
        assert!(matches!(err, IndexError::NotAValueNode(_)));
        // The good write must not have leaked through.
        service
            .read("a", |doc, idx| {
                assert_eq!(idx.query(doc, &Lookup::equi("Arthur")).unwrap().len(), 2);
                idx.verify_against(doc).unwrap();
            })
            .unwrap();
        assert_eq!(service.commit_count(), 0);
    }

    #[test]
    fn fan_out_lookups_across_docs() {
        let service = service_with_two_docs();
        let snap = service.snapshot_all();
        assert_eq!(snap.doc_count(), 2);
        let ages = snap.query(&Lookup::range_f64(40.0..=200.0));
        assert!(ages.iter().any(|(id, _)| *id == "a"));
        assert!(ages.iter().any(|(id, _)| *id == "b"));
        let hits = snap.query(&Lookup::equi("Ford"));
        assert!(hits.iter().all(|(id, _)| *id == "b"));
        assert_eq!(hits.len(), 2);
        // No substring index configured: empty, not a panic.
        assert!(snap.query(&Lookup::contains("rthu")).is_empty());
    }

    #[test]
    fn substring_fan_out_when_configured() {
        let config =
            ServiceConfig::with_shards(2).with_index(IndexConfig::default().with_substring_index());
        let service = IndexService::new(config);
        service.insert_document("a", Document::parse(DOC_A).unwrap());
        let snap = service.snapshot_all();
        assert_eq!(snap.query(&Lookup::contains("rthu")).len(), 1);
    }

    /// Many threads, many documents, one service: the final state of
    /// every document must be byte-identical to a serial replay, and
    /// every commit must be counted exactly once.
    #[test]
    fn concurrent_commits_across_shards_converge() {
        let service = Arc::new(IndexService::new(ServiceConfig {
            shards: 4,
            max_group: 8,
            index: IndexConfig::default(),
            durability: Durability::Ephemeral,
            ..ServiceConfig::default()
        }));
        let n_docs = 6;
        for i in 0..n_docs {
            service.insert_document(format!("doc{i}"), Document::parse(DOC_A).unwrap());
        }
        // Node ids are stable across versions; resolve the target in
        // each document once, before any writer changes its value.
        let targets: Vec<NodeId> = (0..n_docs)
            .map(|i| {
                service
                    .read(&format!("doc{i}"), |doc, _| text_node(doc, "42"))
                    .unwrap()
            })
            .collect();
        let threads = 8;
        let commits_per_thread = 10;
        let barrier = Arc::new(Barrier::new(threads));
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let service = Arc::clone(&service);
                let barrier = Arc::clone(&barrier);
                let targets = targets.clone();
                std::thread::spawn(move || {
                    barrier.wait();
                    for c in 0..commits_per_thread {
                        let d = (t + c) % n_docs;
                        let id = format!("doc{d}");
                        let mut txn = service.begin();
                        // All writers converge on the same final value
                        // per node, so the final state is deterministic
                        // regardless of interleaving.
                        txn.set_value(targets[d], "54");
                        service.commit(&id, txn).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            service.commit_count(),
            (threads * commits_per_thread) as u64
        );
        let expected = hash_str("Arthur54");
        for i in 0..n_docs {
            service
                .read(&format!("doc{i}"), |doc, idx| {
                    let root = doc.root_element().unwrap();
                    assert_eq!(idx.hash_of(root), Some(expected));
                    idx.verify_against(doc).unwrap();
                })
                .unwrap();
        }
    }

    #[test]
    fn submit_returns_immediately_and_wait_reaps() {
        let service = service_with_two_docs();
        let node = service
            .read("a", |doc, _| text_node(doc, "Arthur"))
            .unwrap();
        let mut txn = service.begin();
        txn.set_value(node, "Tricia");
        let ticket = service.submit("a", txn);
        // Nothing has driven the pipeline yet: the commit is queued,
        // not published, and try_poll does not block or drive it.
        assert!(!ticket.is_complete());
        assert!(ticket.try_poll().is_none());
        assert_eq!(service.version_of("a"), Some(0));
        // wait() takes over leadership and drains the queue.
        let receipt = ticket.wait().unwrap();
        assert_eq!(
            receipt,
            CommitReceipt {
                version: 1,
                applied: 1
            }
        );
        assert_eq!(service.version_of("a"), Some(1));
    }

    #[test]
    fn tickets_reap_out_of_order() {
        let service = service_with_two_docs();
        let node = service
            .read("a", |doc, _| text_node(doc, "Arthur"))
            .unwrap();
        let tickets: Vec<CommitTicket> = (0..8)
            .map(|i| {
                let mut txn = service.begin();
                txn.set_value(node, format!("v{i}"));
                service.submit("a", txn)
            })
            .collect();
        // Waiting on the *last* ticket drains the whole queue; the
        // earlier tickets complete as a side effect and their receipts
        // stay available in any reap order.
        let mut tickets = tickets;
        let last = tickets.pop().unwrap();
        let receipt = last.wait().unwrap();
        assert_eq!(receipt.version, 8);
        for t in tickets.iter() {
            let r = t.try_poll().expect("drained by the last wait").unwrap();
            assert_eq!(r.applied, 1);
            assert_eq!(r.version, 8, "one group round published all eight");
        }
        for t in tickets.into_iter().rev() {
            t.wait().unwrap();
        }
        assert_eq!(service.commit_count(), 8);
        // Last submit wins on the shared node.
        service
            .read("a", |doc, idx| {
                assert_eq!(idx.query(doc, &Lookup::equi("v7")).unwrap().len(), 2);
                idx.verify_against(doc).unwrap();
            })
            .unwrap();
    }

    #[test]
    fn submit_against_missing_doc_returns_completed_error_ticket() {
        let service = service_with_two_docs();
        let ticket = service.submit("nope", service.begin());
        assert!(ticket.is_complete());
        assert!(matches!(
            ticket.wait().unwrap_err(),
            IndexError::UnknownDocument(id) if id == "nope"
        ));
    }

    #[test]
    fn empty_submit_completes_with_current_version() {
        let service = service_with_two_docs();
        let node = service
            .read("a", |doc, _| text_node(doc, "Arthur"))
            .unwrap();
        let mut txn = service.begin();
        txn.set_value(node, "Eddie");
        service.commit("a", txn).unwrap();
        let receipt = service.submit("a", service.begin()).wait().unwrap();
        assert_eq!(
            receipt,
            CommitReceipt {
                version: 1,
                applied: 0
            }
        );
        assert_eq!(service.commit_count(), 1);
    }

    #[test]
    fn rejected_submit_reports_through_its_ticket() {
        let service = service_with_two_docs();
        let root = service
            .read("a", |doc, _| doc.root_element().unwrap())
            .unwrap();
        let mut txn = service.begin();
        txn.set_value(root, "not a value node");
        let ticket = service.submit("a", txn);
        assert!(matches!(
            ticket.wait().unwrap_err(),
            IndexError::NotAValueNode(_)
        ));
        assert_eq!(service.commit_count(), 0);
    }

    /// Satellite regression: every lookup flavor — including the
    /// typed-range, typed-eq and wildcard lookups that the old
    /// per-flavor `ServiceSnapshot` surface silently lacked — must
    /// agree between per-document queries and the cross-document
    /// fan-out.
    #[test]
    fn cross_doc_query_agrees_with_per_doc_queries() {
        use xvi_fsm::XmlType;
        let config = ServiceConfig::with_shards(4).with_index(IndexConfig::all());
        let service = IndexService::new(config);
        service.insert_document("a", Document::parse(DOC_A).unwrap());
        service.insert_document("b", Document::parse(DOC_B).unwrap());
        let snap = service.snapshot_all();
        for lookup in [
            Lookup::equi("Ford"),
            Lookup::range_f64(40.0..=200.0),
            Lookup::typed_range(XmlType::Integer, 41.0..43.0),
            Lookup::typed_eq(XmlType::Integer, 200.0),
            Lookup::contains("rthu"),
            Lookup::wildcard("F?rd*"),
            Lookup::XPath(crate::QueryEngine::parse("//person[age >= 42]").unwrap()),
        ] {
            let fan_out = snap.query(&lookup);
            let mut per_doc: Vec<(&str, xvi_xml::NodeId)> = Vec::new();
            for (id, doc_snap) in snap.iter() {
                for n in doc_snap.query(&lookup).unwrap() {
                    per_doc.push((id, n));
                }
            }
            assert_eq!(fan_out, per_doc, "{lookup}");
            // And the live-service entry point agrees per document.
            for id in ["a", "b"] {
                assert_eq!(
                    service.query(id, &lookup).unwrap(),
                    snap.iter()
                        .find(|(i, _)| *i == id)
                        .map(|(_, s)| s.query(&lookup).unwrap())
                        .unwrap(),
                    "{id}: {lookup}"
                );
            }
        }
        assert!(matches!(
            service.query("nope", &Lookup::equi("x")).unwrap_err(),
            IndexError::UnknownDocument(_)
        ));
    }

    /// The copy-on-write publish must share pages with the pinned
    /// snapshot instead of deep-copying the document: after a
    /// one-write commit under an outstanding snapshot, the snapshot's
    /// document still shares almost all of its arena pages with the
    /// newly published version.
    #[test]
    fn cow_publish_shares_pages_with_pinned_snapshot() {
        let service = IndexService::new(ServiceConfig::with_shards(1));
        let mut xml = String::from("<r>");
        for i in 0..2_000 {
            xml.push_str(&format!("<v>{i}</v>"));
        }
        xml.push_str("</r>");
        service.insert_document("big", Document::parse(&xml).unwrap());
        let pinned = service.snapshot("big").unwrap();
        assert_eq!(pinned.document().shared_pages(), 0);
        let node = service
            .read("big", |doc, _| text_node(doc, "1234"))
            .unwrap();
        let mut txn = service.begin();
        txn.set_value(node, "replaced");
        service.commit("big", txn).unwrap();
        // COW happened (the pinned snapshot is intact) ...
        assert_eq!(pinned.version(), 0);
        assert_eq!(
            pinned.query(&Lookup::equi("1234")).unwrap().len(),
            2,
            "pinned snapshot still sees the old value"
        );
        // ... and it shared pages: the pinned document's arena overlaps
        // the published successor's almost entirely (only the pages
        // holding the text node and its ancestors were detached).
        let shared = pinned.document().shared_pages();
        let total = pinned.document().stats().total_nodes / xvi_btree::PAGE_SIZE;
        assert!(
            shared > total / 2,
            "expected most of ~{total} pages shared, got {shared}"
        );
        let after = service.snapshot("big").unwrap();
        assert!(after.query(&Lookup::equi("1234")).unwrap().is_empty());
    }

    /// Executor-free `Future` smoke: polling a queued ticket takes
    /// over leadership and resolves in one poll; completed tickets
    /// resolve immediately and repeatedly.
    #[test]
    fn ticket_future_resolves_via_cooperative_poll() {
        use std::future::Future;
        use std::pin::Pin;
        use std::task::{Context, Poll, Waker};

        let service = service_with_two_docs();
        let node = service
            .read("a", |doc, _| text_node(doc, "Arthur"))
            .unwrap();
        let mut txn = service.begin();
        txn.set_value(node, "Tricia");
        let mut ticket = service.submit("a", txn);
        assert!(!ticket.is_complete());
        let mut cx = Context::from_waker(Waker::noop());
        match Pin::new(&mut ticket).poll(&mut cx) {
            Poll::Ready(r) => {
                let receipt = r.unwrap();
                assert_eq!((receipt.version, receipt.applied), (1, 1));
            }
            Poll::Pending => panic!("lone poll must drive the pipeline"),
        }
        // Re-polling a resolved ticket stays Ready.
        assert!(matches!(
            Pin::new(&mut ticket).poll(&mut cx),
            Poll::Ready(Ok(_))
        ));
        // Born-completed tickets (unknown doc) resolve immediately.
        let mut dead = service.submit("nope", service.begin());
        assert!(matches!(
            Pin::new(&mut dead).poll(&mut cx),
            Poll::Ready(Err(IndexError::UnknownDocument(_)))
        ));
    }

    /// The waker parked by a `Pending` poll must be woken by the
    /// leader that publishes the commit. An active leader is simulated
    /// by flipping the shard's `leader_active` flag, which forces the
    /// first poll down the Pending path deterministically.
    #[test]
    fn parked_waker_is_woken_by_the_publishing_leader() {
        use std::future::Future;
        use std::pin::Pin;
        use std::sync::atomic::AtomicUsize;
        use std::task::{Context, Poll, Wake, Waker};

        struct CountingWake(AtomicUsize);
        impl Wake for CountingWake {
            fn wake(self: Arc<Self>) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }

        let service = IndexService::new(ServiceConfig::with_shards(1));
        service.insert_document("a", Document::parse(DOC_A).unwrap());
        let node = service
            .read("a", |doc, _| text_node(doc, "Arthur"))
            .unwrap();
        let mut txn = service.begin();
        txn.set_value(node, "Random");
        let mut ticket = service.submit("a", txn);

        // Pretend another thread is mid-round on the shard.
        service.shards[0]
            .pipeline
            .state
            .lock()
            .unwrap()
            .leader_active = true;
        let wake_count = Arc::new(CountingWake(AtomicUsize::new(0)));
        let waker = Waker::from(Arc::clone(&wake_count));
        let mut cx = Context::from_waker(&waker);
        assert!(
            Pin::new(&mut ticket).poll(&mut cx).is_pending(),
            "an active leader owns the round: poll must park the waker"
        );
        assert_eq!(wake_count.0.load(Ordering::SeqCst), 0);
        service.shards[0]
            .pipeline
            .state
            .lock()
            .unwrap()
            .leader_active = false;

        // A second committer's blocking wait drains the queue and must
        // wake the parked waker when it fills the first slot.
        let mut txn2 = service.begin();
        txn2.set_value(node, "Frankie");
        service.commit("a", txn2).unwrap();
        assert_eq!(wake_count.0.load(Ordering::SeqCst), 1);
        match Pin::new(&mut ticket).poll(&mut cx) {
            Poll::Ready(r) => assert_eq!(r.unwrap().applied, 1),
            Poll::Pending => panic!("commit published: ticket must be ready"),
        }
        assert_eq!(service.version_of("a"), Some(2));
    }

    /// A WAL fsync failure must fail the commit with a typed
    /// `Durability` error, publish nothing, poison the shard's log so
    /// later commits cannot append after potential garbage, and stay
    /// invisible after recovery (the failed record must not be
    /// resurrected as durable).
    #[test]
    fn wal_fsync_failure_fails_the_commit_and_poisons_the_shard() {
        let dir = std::env::temp_dir().join(format!("xvi-svc-walfault-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let wal_config = || ServiceConfig::with_shards(1).with_wal(&dir);
        {
            let service = IndexService::new(wal_config());
            service.insert_document("a", Document::parse(DOC_A).unwrap());
            let node = service
                .read("a", |doc, _| text_node(doc, "Arthur"))
                .unwrap();
            service.shards[0]
                .wal
                .as_ref()
                .unwrap()
                .lock()
                .unwrap()
                .fail_next_sync = true;
            let mut txn = service.begin();
            txn.set_value(node, "lost");
            let err = service.commit("a", txn).unwrap_err();
            assert!(matches!(err, IndexError::Durability(_)), "{err:?}");
            // Nothing published: the unlogged commit never became visible.
            assert_eq!(service.version_of("a"), Some(0));
            assert_eq!(service.commit_count(), 0);
            // The shard's log is poisoned: later commits fail too
            // instead of appending records after potential garbage.
            let mut txn = service.begin();
            txn.set_value(node, "also-lost");
            assert!(matches!(
                service.commit("a", txn).unwrap_err(),
                IndexError::Durability(_)
            ));
        }
        // Recovery reopens the log: the failed commit is gone and the
        // service accepts new commits again.
        let recovered = IndexService::open(wal_config()).unwrap();
        assert_eq!(recovered.version_of("a"), Some(0));
        let node = recovered
            .read("a", |doc, idx| {
                assert_eq!(idx.query(doc, &Lookup::equi("Arthur")).unwrap().len(), 2);
                text_node(doc, "Arthur")
            })
            .unwrap();
        let mut txn = recovered.begin();
        txn.set_value(node, "works");
        assert_eq!(recovered.commit("a", txn).unwrap().version, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Bounded submissions: a full shard queue yields a typed
    /// `Overloaded` rejection with a depth-derived backoff, nothing is
    /// silently dropped, and draining the queue restores admission.
    #[test]
    fn try_submit_rejects_on_full_queue_and_recovers() {
        let service = IndexService::new(ServiceConfig::with_shards(1).with_max_queue(3));
        service.insert_document("a", Document::parse(DOC_A).unwrap());
        let node = service
            .read("a", |doc, _| text_node(doc, "Arthur"))
            .unwrap();
        let submit = |v: String| {
            let mut txn = service.begin();
            txn.set_value(node, v);
            service.try_submit("a", txn)
        };
        // Nothing drives the pipeline, so the queue fills deterministically.
        let tickets: Vec<_> = (0..3).map(|i| submit(format!("v{i}")).unwrap()).collect();
        assert_eq!(service.queue_depth("a"), 3);
        assert_eq!(service.queue_depths(), vec![3]);
        match submit("overflow".into()).unwrap_err() {
            IndexError::Overloaded { shard, retry_after } => {
                assert_eq!(shard, 0);
                assert!(
                    retry_after >= std::time::Duration::from_micros(60),
                    "{retry_after:?}"
                );
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        // The rejection dropped nothing: every admitted commit lands.
        for t in tickets.into_iter().rev() {
            t.wait().unwrap();
        }
        assert_eq!(service.commit_count(), 3);
        assert_eq!(service.queue_depth("a"), 0);
        // Room again after the drain.
        submit("again".into()).unwrap().wait().unwrap();
        assert_eq!(service.commit_count(), 4);
        // Empty transactions occupy no queue space, so they are always
        // admitted (completed tickets), even at capacity.
        let _fill: Vec<_> = (0..3).map(|i| submit(format!("w{i}")).unwrap()).collect();
        let empty = service.try_submit("a", service.begin()).unwrap();
        assert!(empty.is_complete());
        for t in _fill.into_iter() {
            t.wait().unwrap();
        }
    }

    #[test]
    fn group_commit_of_one_still_works() {
        let service = IndexService::new(ServiceConfig {
            shards: 1,
            max_group: 1,
            index: IndexConfig::default(),
            durability: Durability::Ephemeral,
            ..ServiceConfig::default()
        });
        service.insert_document("a", Document::parse(DOC_A).unwrap());
        // Node ids are stable across versions (values are replaced in
        // place), so one lookup serves all three commits.
        let node = service.read("a", |doc, _| text_node(doc, "42")).unwrap();
        for val in ["1", "2", "3"] {
            let mut txn = service.begin();
            txn.set_value(node, val);
            assert_eq!(service.commit("a", txn).unwrap().applied, 1);
        }
        assert_eq!(service.version_of("a"), Some(3));
        service
            .read("a", |doc, idx| {
                // Both <person> and the document node concatenate to
                // "Arthur3".
                assert_eq!(idx.query(doc, &Lookup::equi("Arthur3")).unwrap().len(), 2);
                idx.verify_against(doc).unwrap();
            })
            .unwrap();
    }
}
