//! A sharded, multi-document index service with group commit.
//!
//! [`TransactionalStore`](crate::TransactionalStore) demonstrates the
//! paper's §5.1 commutativity argument for a single document behind one
//! lock. This module scales that argument out: an [`IndexService`]
//! hosts many `(Document, IndexManager)` pairs across `N` shards
//! (hash of the document id picks the shard), and turns the
//! per-commit lock into a **group-commit pipeline**:
//!
//! * Committing threads enqueue their write batches on the owning
//!   shard's queue and wait. The first enqueuer becomes the **leader**;
//!   it drains the queue (up to [`ServiceConfig::max_group`] batches
//!   per round), coalesces all batches that target the same document,
//!   and repairs that document's ancestors **once** via the existing
//!   [`IndexManager::update_values`] path — exactly the amortisation
//!   the paper's associative combination function `C` makes sound:
//!   because commits commute, collapsing a queue of transactions into
//!   one batch per document yields the same indices as any serial
//!   order.
//! * Reads are **lock-free snapshots**. Every document's committed
//!   state lives in an [`Arc`]; a reader clones the `Arc` (one brief
//!   shard-lock acquisition) and then queries an immutable version
//!   with no lock held — commits landing concurrently never move the
//!   ground under a running query. The leader publishes adaptively:
//!   while snapshots of the current version are outstanding it uses
//!   copy-on-write (clone, apply the coalesced batch, swap), and when
//!   none are it updates the version in place at the paper's
//!   O(writes + ancestors) cost — uncontended single-writer commits
//!   pay nothing for the snapshot machinery.
//!
//! The service therefore gives every reader a consistent prefix of the
//! commit history, lets writers on different shards (and different
//! documents within a shard's group round) proceed in parallel, and
//! preserves the paper's invariant that the final indices are
//! byte-identical to a serial replay.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::ops::RangeBounds;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use parking_lot::RwLock;

use xvi_xml::{Document, NodeId, NodeKind};

use crate::config::IndexConfig;
use crate::error::IndexError;
use crate::manager::IndexManager;
use crate::txn::Transaction;

/// Tuning knobs for an [`IndexService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Number of shards the document catalog is split over. Commits on
    /// different shards never contend with each other.
    pub shards: usize,
    /// Maximum number of queued transactions a group-commit leader
    /// drains per round. `1` degenerates to per-transaction commits;
    /// larger values amortise the copy-on-write publish across more
    /// transactions under contention.
    pub max_group: usize,
    /// Index configuration applied to every hosted document.
    pub index: IndexConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            shards: 8,
            max_group: 64,
            index: IndexConfig::default(),
        }
    }
}

impl ServiceConfig {
    /// A config with the given shard count and defaults elsewhere.
    pub fn with_shards(shards: usize) -> ServiceConfig {
        ServiceConfig {
            shards,
            ..ServiceConfig::default()
        }
    }

    /// Sets the group-commit drain limit.
    pub fn with_max_group(mut self, max_group: usize) -> ServiceConfig {
        self.max_group = max_group;
        self
    }

    /// Sets the per-document index configuration.
    pub fn with_index(mut self, index: IndexConfig) -> ServiceConfig {
        self.index = index;
        self
    }
}

/// One immutable published version of a document and its indices.
#[derive(Debug)]
struct DocVersion {
    doc: Document,
    idx: IndexManager,
    /// Number of transactions committed into this version.
    version: u64,
}

/// A document slot in the catalog: the currently published version,
/// swapped atomically by the group-commit leader.
#[derive(Debug)]
struct DocHandle {
    id: String,
    published: RwLock<Arc<DocVersion>>,
}

impl DocHandle {
    fn current(&self) -> Arc<DocVersion> {
        Arc::clone(&self.published.read())
    }
}

/// A committed transaction waiting for its group-commit round.
struct Pending {
    handle: Arc<DocHandle>,
    writes: Vec<(NodeId, String)>,
    slot: Arc<CommitSlot>,
}

/// Where a waiting committer picks up its result.
struct CommitSlot {
    result: Mutex<Option<Result<usize, IndexError>>>,
    cv: Condvar,
    /// Whether `fill` has run — checked by the unwind guards so a
    /// slot is filled exactly once even if a leader panics mid-round.
    filled: AtomicBool,
}

impl CommitSlot {
    fn new() -> CommitSlot {
        CommitSlot {
            result: Mutex::new(None),
            cv: Condvar::new(),
            filled: AtomicBool::new(false),
        }
    }

    fn fill(&self, r: Result<usize, IndexError>) {
        if self.filled.swap(true, Ordering::SeqCst) {
            return;
        }
        let mut slot = self.result.lock().unwrap_or_else(|e| e.into_inner());
        *slot = Some(r);
        self.cv.notify_one();
    }

    fn wait(&self) -> Result<usize, IndexError> {
        let mut slot = self.result.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(r) = slot.take() {
                return r;
            }
            slot = self.cv.wait(slot).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Group-commit queue of one shard.
struct Pipeline {
    state: Mutex<PipelineState>,
}

struct PipelineState {
    queue: VecDeque<Pending>,
    leader_active: bool,
}

impl Pipeline {
    fn new() -> Pipeline {
        Pipeline {
            state: Mutex::new(PipelineState {
                queue: VecDeque::new(),
                leader_active: false,
            }),
        }
    }
}

/// One shard: a slice of the document catalog plus its commit queue.
struct Shard {
    catalog: RwLock<HashMap<String, Arc<DocHandle>>>,
    pipeline: Pipeline,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            catalog: RwLock::new(HashMap::new()),
            pipeline: Pipeline::new(),
        }
    }
}

/// A sharded, concurrent, multi-document index service (see the
/// module docs for the commit pipeline and snapshot semantics).
///
/// ```
/// use std::sync::Arc;
/// use xvi_index::{IndexService, ServiceConfig, Document};
///
/// let service = Arc::new(IndexService::new(ServiceConfig::default()));
/// service.insert_document("crew", Document::parse(
///     "<person><name>Arthur</name><age>42</age></person>").unwrap());
///
/// let mut txn = service.begin();
/// // The lookup returns both <name> and its text node; updates target
/// // nodes with a directly stored value.
/// let node = service.read("crew", |doc, idx| {
///     *idx.equi_lookup(doc, "Arthur")
///         .iter()
///         .find(|&&n| doc.direct_value(n).is_some())
///         .unwrap()
/// }).unwrap();
/// txn.set_value(node, "Ford");
/// service.commit("crew", txn).unwrap();
///
/// let snap = service.snapshot("crew").unwrap();
/// // <name> and its text node both have string value "Ford".
/// assert_eq!(snap.index().equi_lookup(snap.document(), "Ford").len(), 2);
/// ```
pub struct IndexService {
    shards: Vec<Shard>,
    config: ServiceConfig,
    commits: AtomicU64,
}

impl std::fmt::Debug for IndexService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IndexService")
            .field("shards", &self.shards.len())
            .field("docs", &self.doc_count())
            .field("commits", &self.commit_count())
            .finish()
    }
}

impl IndexService {
    /// Creates an empty service.
    pub fn new(config: ServiceConfig) -> IndexService {
        let shards = config.shards.max(1);
        IndexService {
            shards: (0..shards).map(|_| Shard::new()).collect(),
            config,
            commits: AtomicU64::new(0),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    fn shard_of(&self, doc_id: &str) -> &Shard {
        let mut h = DefaultHasher::new();
        doc_id.hash(&mut h);
        &self.shards[(h.finish() % self.shards.len() as u64) as usize]
    }

    fn handle(&self, doc_id: &str) -> Option<Arc<DocHandle>> {
        self.shard_of(doc_id).catalog.read().get(doc_id).cloned()
    }

    // ----- catalog ----------------------------------------------------------

    /// Builds indices for `doc` (outside any lock) and registers it
    /// under `id`, replacing any previous document with that id.
    pub fn insert_document(&self, id: impl Into<String>, doc: Document) {
        let id = id.into();
        let idx = IndexManager::build(&doc, self.config.index.clone());
        let handle = Arc::new(DocHandle {
            id: id.clone(),
            published: RwLock::new(Arc::new(DocVersion {
                doc,
                idx,
                version: 0,
            })),
        });
        self.shard_of(&id).catalog.write().insert(id, handle);
    }

    /// Removes a document, returning its final state.
    pub fn remove_document(&self, id: &str) -> Option<(Document, IndexManager)> {
        let handle = self.shard_of(id).catalog.write().remove(id)?;
        let version = handle.current();
        match Arc::try_unwrap(version) {
            Ok(v) => Some((v.doc, v.idx)),
            Err(shared) => Some((shared.doc.clone(), shared.idx.clone())),
        }
    }

    /// Whether a document is registered under `id`.
    pub fn contains_document(&self, id: &str) -> bool {
        self.handle(id).is_some()
    }

    /// All registered document ids, sorted.
    pub fn doc_ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self
            .shards
            .iter()
            .flat_map(|s| s.catalog.read().keys().cloned().collect::<Vec<_>>())
            .collect();
        ids.sort();
        ids
    }

    /// Number of hosted documents.
    pub fn doc_count(&self) -> usize {
        self.shards.iter().map(|s| s.catalog.read().len()).sum()
    }

    // ----- reads ------------------------------------------------------------

    /// Snapshot of one document's committed state. The returned value
    /// is immutable and queried without holding any lock.
    pub fn snapshot(&self, doc_id: &str) -> Option<DocSnapshot> {
        Some(DocSnapshot {
            inner: self.handle(doc_id)?.current(),
        })
    }

    /// Runs a closure over a lock-free snapshot of one document.
    pub fn read<R>(
        &self,
        doc_id: &str,
        f: impl FnOnce(&Document, &IndexManager) -> R,
    ) -> Option<R> {
        let snap = self.snapshot(doc_id)?;
        Some(f(snap.document(), snap.index()))
    }

    /// Snapshot of the whole catalog (every document's current
    /// version, id-sorted), for cross-document fan-out queries.
    pub fn snapshot_all(&self) -> ServiceSnapshot {
        let mut docs: Vec<Arc<DocHandle>> = self
            .shards
            .iter()
            .flat_map(|s| s.catalog.read().values().cloned().collect::<Vec<_>>())
            .collect();
        docs.sort_by(|a, b| a.id.cmp(&b.id));
        ServiceSnapshot {
            docs: docs
                .into_iter()
                .map(|h| (h.id.clone(), h.current()))
                .collect(),
        }
    }

    /// Number of transactions committed into `doc_id`'s current
    /// version.
    pub fn version_of(&self, doc_id: &str) -> Option<u64> {
        Some(self.handle(doc_id)?.current().version)
    }

    /// Total committed transactions across all documents.
    pub fn commit_count(&self) -> u64 {
        self.commits.load(Ordering::Relaxed)
    }

    // ----- commits ----------------------------------------------------------

    /// Starts an empty transaction (a buffered write batch; see
    /// [`Transaction`]). Nothing is locked by an open transaction.
    pub fn begin(&self) -> Transaction {
        Transaction::default()
    }

    /// Commits a transaction against `doc_id` through the shard's
    /// group-commit pipeline. Blocks until the batch is durably
    /// published; returns the number of applied writes.
    ///
    /// A transaction either applies completely or not at all: if any
    /// buffered write targets a dead or non-value node, the whole
    /// transaction is rejected and the document is untouched.
    pub fn commit(&self, doc_id: &str, txn: Transaction) -> Result<usize, IndexError> {
        let handle = self
            .handle(doc_id)
            .ok_or_else(|| IndexError::UnknownDocument(doc_id.to_string()))?;
        if txn.writes.is_empty() {
            return Ok(0);
        }
        let shard = self.shard_of(doc_id);
        let slot = Arc::new(CommitSlot::new());
        let became_leader = {
            let mut st = shard
                .pipeline
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            st.queue.push_back(Pending {
                handle,
                writes: txn.writes,
                slot: Arc::clone(&slot),
            });
            if st.leader_active {
                false
            } else {
                st.leader_active = true;
                true
            }
        };
        if became_leader {
            self.run_leader(shard);
        }
        slot.wait()
    }

    /// Drains the shard's queue in group rounds until it is empty,
    /// then steps down. Called by the thread that found the pipeline
    /// idle; all other committers merely wait on their slot.
    ///
    /// If the leader unwinds (a panic inside a round), the drop guard
    /// steps it down and fails everything still queued, so no
    /// committer blocks forever behind a dead leader and the next
    /// enqueuer can take over.
    fn run_leader(&self, shard: &Shard) {
        struct StepDown<'a> {
            pipeline: &'a Pipeline,
            clean_exit: bool,
        }
        impl Drop for StepDown<'_> {
            fn drop(&mut self) {
                if self.clean_exit {
                    return;
                }
                let mut st = self
                    .pipeline
                    .state
                    .lock()
                    .unwrap_or_else(|e| e.into_inner());
                st.leader_active = false;
                for p in st.queue.drain(..) {
                    p.slot.fill(Err(IndexError::CommitPipelinePoisoned));
                }
            }
        }

        let mut guard = StepDown {
            pipeline: &shard.pipeline,
            clean_exit: false,
        };
        let max_group = self.config.max_group.max(1);
        loop {
            let round: Vec<Pending> = {
                let mut st = shard
                    .pipeline
                    .state
                    .lock()
                    .unwrap_or_else(|e| e.into_inner());
                if st.queue.is_empty() {
                    st.leader_active = false;
                    guard.clean_exit = true;
                    return;
                }
                let n = st.queue.len().min(max_group);
                st.queue.drain(..n).collect()
            };
            self.apply_group(round);
        }
    }

    /// Applies one group round: coalesces the batches per document,
    /// repairs each affected document's ancestors once, publishes the
    /// new versions, and wakes every waiting committer.
    fn apply_group(&self, round: Vec<Pending>) {
        // If this round unwinds partway (a panic inside the apply),
        // fail every slot that was not yet filled so its committer
        // wakes up instead of blocking forever. `fill` is idempotent,
        // so slots completed before the panic keep their result.
        struct FailUnfilled {
            slots: Vec<Arc<CommitSlot>>,
        }
        impl Drop for FailUnfilled {
            fn drop(&mut self) {
                for slot in &self.slots {
                    slot.fill(Err(IndexError::CommitPipelinePoisoned));
                }
            }
        }
        let _round_guard = FailUnfilled {
            slots: round.iter().map(|p| Arc::clone(&p.slot)).collect(),
        };

        // Group by document, preserving enqueue order within each.
        let mut order: Vec<Arc<DocHandle>> = Vec::new();
        let mut by_doc: HashMap<String, Vec<Pending>> = HashMap::new();
        for p in round {
            let entry = by_doc.entry(p.handle.id.clone()).or_default();
            if entry.is_empty() {
                order.push(Arc::clone(&p.handle));
            }
            entry.push(p);
        }

        for handle in order {
            let group = by_doc.remove(&handle.id).expect("grouped above");
            let base = handle.current();

            // Validate each transaction against the base version so a
            // bad batch is rejected wholesale instead of applying
            // halfway; surviving batches are coalesced into one
            // `update_values` pass (writes in enqueue order, so a
            // later transaction's write to the same node wins — the
            // serial-replay outcome).
            let mut results: Vec<(Arc<CommitSlot>, Result<usize, IndexError>)> = Vec::new();
            let mut coalesced: Vec<(NodeId, String)> = Vec::new();
            let mut committed = 0u64;
            for p in group {
                match validate(&base.doc, &p.writes) {
                    Ok(()) => {
                        let n = p.writes.len();
                        coalesced.extend(p.writes);
                        committed += 1;
                        results.push((p.slot, Ok(n)));
                    }
                    Err(e) => results.push((p.slot, Err(e))),
                }
            }
            // Release the leader's extra reference before the
            // uniqueness probe below.
            drop(base);

            if !coalesced.is_empty() {
                // Apply under the catalog read lock, after checking
                // the handle is still the catalog's entry for this id:
                // `insert_document` / `remove_document` take the
                // catalog *write* lock, so a concurrent replacement or
                // removal cannot orphan this apply — the commit either
                // lands in the live document or fails loudly.
                let catalog = self.shard_of(&handle.id).catalog.read();
                let still_current = catalog
                    .get(&handle.id)
                    .is_some_and(|h| Arc::ptr_eq(h, &handle));
                if still_current {
                    let mut published = handle.published.write();
                    let writes = coalesced.iter().map(|(n, v)| (*n, v.as_str()));
                    if let Some(version) = Arc::get_mut(&mut published) {
                        // No snapshot is outstanding, so nobody can
                        // observe this version: update it in place at
                        // the paper's O(writes + ancestors) cost
                        // (readers briefly queue on the published
                        // lock, exactly like the pre-service
                        // TransactionalStore).
                        version
                            .idx
                            .update_values(&mut version.doc, writes)
                            .expect("writes were validated against this version");
                        version.version += committed;
                    } else {
                        // Live snapshots exist: copy-on-write so they
                        // stay immutable, and swap in the successor.
                        let mut doc = published.doc.clone();
                        let mut idx = published.idx.clone();
                        idx.update_values(&mut doc, writes)
                            .expect("writes were validated against this version");
                        *published = Arc::new(DocVersion {
                            version: published.version + committed,
                            doc,
                            idx,
                        });
                    }
                    drop(published);
                    drop(catalog);
                    self.commits.fetch_add(committed, Ordering::Relaxed);
                } else {
                    drop(catalog);
                    for (_, r) in results.iter_mut() {
                        if r.is_ok() {
                            *r = Err(IndexError::DocumentReplaced(handle.id.clone()));
                        }
                    }
                }
            }

            // Wake the committers only after the publish, so a
            // returned `commit` is visible to every later snapshot.
            for (slot, r) in results {
                slot.fill(r);
            }
        }
    }
}

/// Pre-checks a write batch against a document: every target must be a
/// live text or attribute node (the same conditions
/// [`IndexManager::update_values`] enforces, hoisted before any state
/// is touched).
fn validate(doc: &Document, writes: &[(NodeId, String)]) -> Result<(), IndexError> {
    for &(node, _) in writes {
        if !doc.is_live(node) {
            return Err(IndexError::DeadNode(node));
        }
        match doc.kind(node) {
            NodeKind::Text(_) | NodeKind::Attribute { .. } => {}
            _ => return Err(IndexError::NotAValueNode(node)),
        }
    }
    Ok(())
}

/// An immutable snapshot of one document's committed state.
///
/// Cheap to clone (an [`Arc`] bump); queries run without any lock and
/// are unaffected by concurrent commits.
#[derive(Debug, Clone)]
pub struct DocSnapshot {
    inner: Arc<DocVersion>,
}

impl DocSnapshot {
    /// The snapshotted document.
    pub fn document(&self) -> &Document {
        &self.inner.doc
    }

    /// The snapshotted indices.
    pub fn index(&self) -> &IndexManager {
        &self.inner.idx
    }

    /// Number of transactions committed into this version.
    pub fn version(&self) -> u64 {
        self.inner.version
    }
}

/// A catalog-wide snapshot supporting fan-out lookups across every
/// hosted document (id-sorted, deterministic result order).
#[derive(Debug, Clone)]
pub struct ServiceSnapshot {
    docs: Vec<(String, Arc<DocVersion>)>,
}

impl ServiceSnapshot {
    /// Number of documents in the snapshot.
    pub fn doc_count(&self) -> usize {
        self.docs.len()
    }

    /// Iterates over `(id, snapshot)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, DocSnapshot)> + '_ {
        self.docs.iter().map(|(id, v)| {
            (
                id.as_str(),
                DocSnapshot {
                    inner: Arc::clone(v),
                },
            )
        })
    }

    /// Equality lookup fanned out across all documents; returns
    /// `(doc id, node)` hits.
    pub fn equi_lookup(&self, value: &str) -> Vec<(&str, NodeId)> {
        self.docs
            .iter()
            .flat_map(|(id, v)| {
                v.idx
                    .equi_lookup(&v.doc, value)
                    .into_iter()
                    .map(move |n| (id.as_str(), n))
            })
            .collect()
    }

    /// Double range lookup fanned out across all documents.
    pub fn range_lookup_f64<R: RangeBounds<f64> + Clone>(&self, bounds: R) -> Vec<(&str, NodeId)> {
        self.docs
            .iter()
            .flat_map(|(id, v)| {
                v.idx
                    .range_lookup_f64(bounds.clone())
                    .into_iter()
                    .map(move |n| (id.as_str(), n))
            })
            .collect()
    }

    /// Substring lookup fanned out across the documents that carry a
    /// substring index (others are skipped).
    pub fn contains_lookup(&self, needle: &str) -> Vec<(&str, NodeId)> {
        self.docs
            .iter()
            .filter(|(_, v)| v.idx.substring_index().is_some())
            .flat_map(|(id, v)| {
                v.idx
                    .contains_lookup(&v.doc, needle)
                    .into_iter()
                    .map(move |n| (id.as_str(), n))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Barrier;
    use xvi_hash::hash_str;

    const DOC_A: &str = "<person><name>Arthur</name><age>42</age></person>";
    const DOC_B: &str = "<person><name>Ford</name><age>200</age></person>";

    fn text_node(doc: &Document, content: &str) -> NodeId {
        doc.descendants(doc.document_node())
            .find(|&n| matches!(doc.kind(n), NodeKind::Text(t) if t == content))
            .unwrap()
    }

    fn service_with_two_docs() -> IndexService {
        let service = IndexService::new(ServiceConfig::with_shards(4));
        service.insert_document("a", Document::parse(DOC_A).unwrap());
        service.insert_document("b", Document::parse(DOC_B).unwrap());
        service
    }

    #[test]
    fn catalog_round_trip() {
        let service = service_with_two_docs();
        assert_eq!(service.doc_count(), 2);
        assert_eq!(service.doc_ids(), vec!["a", "b"]);
        assert!(service.contains_document("a"));
        assert!(!service.contains_document("c"));
        let (doc, idx) = service.remove_document("b").unwrap();
        assert_eq!(idx.equi_lookup(&doc, "Ford").len(), 2);
        assert_eq!(service.doc_count(), 1);
        assert!(service.remove_document("b").is_none());
    }

    #[test]
    fn commit_against_missing_doc_errors() {
        let service = service_with_two_docs();
        let txn = service.begin();
        let err = service.commit("nope", txn).unwrap_err();
        assert!(matches!(err, IndexError::UnknownDocument(id) if id == "nope"));
    }

    #[test]
    fn empty_commit_is_free() {
        let service = service_with_two_docs();
        assert_eq!(service.commit("a", service.begin()).unwrap(), 0);
        assert_eq!(service.commit_count(), 0);
        assert_eq!(service.version_of("a"), Some(0));
    }

    #[test]
    fn commit_updates_one_doc_only() {
        let service = service_with_two_docs();
        let node = service
            .read("a", |doc, _| text_node(doc, "Arthur"))
            .unwrap();
        let mut txn = service.begin();
        txn.set_value(node, "Tricia");
        assert_eq!(service.commit("a", txn).unwrap(), 1);
        assert_eq!(service.version_of("a"), Some(1));
        assert_eq!(service.version_of("b"), Some(0));
        service
            .read("a", |doc, idx| {
                assert_eq!(idx.equi_lookup(doc, "Tricia").len(), 2);
                idx.verify_against(doc).unwrap();
            })
            .unwrap();
    }

    #[test]
    fn snapshots_are_immutable_under_commits() {
        let service = service_with_two_docs();
        let before = service.snapshot("a").unwrap();
        let node = service
            .read("a", |doc, _| text_node(doc, "Arthur"))
            .unwrap();
        let mut txn = service.begin();
        txn.set_value(node, "Zaphod");
        service.commit("a", txn).unwrap();
        // The old snapshot still sees the old value...
        assert_eq!(
            before
                .index()
                .equi_lookup(before.document(), "Arthur")
                .len(),
            2
        );
        assert_eq!(before.version(), 0);
        // ...while a fresh one sees the new state.
        let after = service.snapshot("a").unwrap();
        assert!(after
            .index()
            .equi_lookup(after.document(), "Arthur")
            .is_empty());
        assert_eq!(after.version(), 1);
    }

    #[test]
    fn atomic_rejection_of_bad_transactions() {
        let service = service_with_two_docs();
        let (good, root) = service
            .read("a", |doc, _| {
                (text_node(doc, "Arthur"), doc.root_element().unwrap())
            })
            .unwrap();
        let mut txn = service.begin();
        txn.set_value(good, "Marvin");
        txn.set_value(root, "not a value node");
        let err = service.commit("a", txn).unwrap_err();
        assert!(matches!(err, IndexError::NotAValueNode(_)));
        // The good write must not have leaked through.
        service
            .read("a", |doc, idx| {
                assert_eq!(idx.equi_lookup(doc, "Arthur").len(), 2);
                idx.verify_against(doc).unwrap();
            })
            .unwrap();
        assert_eq!(service.commit_count(), 0);
    }

    #[test]
    fn fan_out_lookups_across_docs() {
        let service = service_with_two_docs();
        let snap = service.snapshot_all();
        assert_eq!(snap.doc_count(), 2);
        let ages = snap.range_lookup_f64(40.0..=200.0);
        assert!(ages.iter().any(|(id, _)| *id == "a"));
        assert!(ages.iter().any(|(id, _)| *id == "b"));
        let hits = snap.equi_lookup("Ford");
        assert!(hits.iter().all(|(id, _)| *id == "b"));
        assert_eq!(hits.len(), 2);
        // No substring index configured: empty, not a panic.
        assert!(snap.contains_lookup("rthu").is_empty());
    }

    #[test]
    fn substring_fan_out_when_configured() {
        let config =
            ServiceConfig::with_shards(2).with_index(IndexConfig::default().with_substring_index());
        let service = IndexService::new(config);
        service.insert_document("a", Document::parse(DOC_A).unwrap());
        let snap = service.snapshot_all();
        assert_eq!(snap.contains_lookup("rthu").len(), 1);
    }

    /// Many threads, many documents, one service: the final state of
    /// every document must be byte-identical to a serial replay, and
    /// every commit must be counted exactly once.
    #[test]
    fn concurrent_commits_across_shards_converge() {
        let service = Arc::new(IndexService::new(ServiceConfig {
            shards: 4,
            max_group: 8,
            index: IndexConfig::default(),
        }));
        let n_docs = 6;
        for i in 0..n_docs {
            service.insert_document(format!("doc{i}"), Document::parse(DOC_A).unwrap());
        }
        // Node ids are stable across versions; resolve the target in
        // each document once, before any writer changes its value.
        let targets: Vec<NodeId> = (0..n_docs)
            .map(|i| {
                service
                    .read(&format!("doc{i}"), |doc, _| text_node(doc, "42"))
                    .unwrap()
            })
            .collect();
        let threads = 8;
        let commits_per_thread = 10;
        let barrier = Arc::new(Barrier::new(threads));
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let service = Arc::clone(&service);
                let barrier = Arc::clone(&barrier);
                let targets = targets.clone();
                std::thread::spawn(move || {
                    barrier.wait();
                    for c in 0..commits_per_thread {
                        let d = (t + c) % n_docs;
                        let id = format!("doc{d}");
                        let mut txn = service.begin();
                        // All writers converge on the same final value
                        // per node, so the final state is deterministic
                        // regardless of interleaving.
                        txn.set_value(targets[d], "54");
                        service.commit(&id, txn).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            service.commit_count(),
            (threads * commits_per_thread) as u64
        );
        let expected = hash_str("Arthur54");
        for i in 0..n_docs {
            service
                .read(&format!("doc{i}"), |doc, idx| {
                    let root = doc.root_element().unwrap();
                    assert_eq!(idx.hash_of(root), Some(expected));
                    idx.verify_against(doc).unwrap();
                })
                .unwrap();
        }
    }

    #[test]
    fn group_commit_of_one_still_works() {
        let service = IndexService::new(ServiceConfig {
            shards: 1,
            max_group: 1,
            index: IndexConfig::default(),
        });
        service.insert_document("a", Document::parse(DOC_A).unwrap());
        // Node ids are stable across versions (values are replaced in
        // place), so one lookup serves all three commits.
        let node = service.read("a", |doc, _| text_node(doc, "42")).unwrap();
        for val in ["1", "2", "3"] {
            let mut txn = service.begin();
            txn.set_value(node, val);
            assert_eq!(service.commit("a", txn).unwrap(), 1);
        }
        assert_eq!(service.version_of("a"), Some(3));
        service
            .read("a", |doc, idx| {
                // Both <person> and the document node concatenate to
                // "Arthur3".
                assert_eq!(idx.equi_lookup(doc, "Arthur3").len(), 2);
                idx.verify_against(doc).unwrap();
            })
            .unwrap();
    }
}
