//! The typed range-lookup index (paper §4).
//!
//! Follows the paper's storage design literally: tuples of the form
//! `[value, state, node id]`, realised (per the paper's footnote on
//! space/computation trade-offs) as two clustered B+trees —
//!
//! * `value_tree`: `(value, node) → ()` over nodes whose state is
//!   *complete*, serving range lookups, and
//! * `node_tree`: `node → (state, value?)`, serving index maintenance
//!   ("retrieving the state of a node id").
//!
//! Rejected nodes store **nothing** — "the absence of a state signifies
//! the reject state" — which is why the double index stays tiny on
//! text-heavy documents (Figure 9, bottom right).

use std::ops::Bound;

use xvi_btree::{BPlusTree, TreeStats};
use xvi_fsm::{analyzer, StateId, TypedAnalyzer, XmlType};
use xvi_xml::NodeId;

use crate::lookup::Bounds;
use crate::stats::{CardinalityEstimate, ValueHistogram};
use crate::util::OrdF64;

/// One end-inclusive/exclusive bound pair over the composite
/// `(value, node)` key space of the value tree.
type CompositeBounds = (Bound<(OrdF64, u32)>, Bound<(OrdF64, u32)>);

/// Per-node entry in the node-keyed tree, packed to 12 bytes: the
/// paper stores "[value, state, node id]" tuples and stresses that a
/// state costs one byte; NaN (unrepresentable in the lexical space)
/// marks "no value".
#[derive(Debug, Clone, Copy)]
pub(crate) struct NodeEntry {
    pub state: StateId,
    /// The typed key; NaN iff the state is not complete.
    value_raw: f64,
}

impl NodeEntry {
    fn new(state: StateId, value: Option<OrdF64>) -> NodeEntry {
        NodeEntry {
            state,
            value_raw: value.map(|v| v.0).unwrap_or(f64::NAN),
        }
    }

    fn value(&self) -> Option<OrdF64> {
        (!self.value_raw.is_nan()).then_some(OrdF64(self.value_raw))
    }
}

/// A range-lookup index for one XML type.
///
/// Alongside the two trees, the index maintains an equi-depth
/// [`ValueHistogram`] over the stored keys, kept current through every
/// mutation and rebuilt from the value tree once enough drift
/// accumulates — the statistics behind
/// [`TypedIndex::estimate_range`].
#[derive(Debug, Clone)]
pub struct TypedIndex {
    ty: XmlType,
    value_tree: BPlusTree<(OrdF64, u32), ()>,
    node_tree: BPlusTree<u32, NodeEntry>,
    /// Cardinality statistics over the value tree's keys.
    hist: ValueHistogram,
    /// Staging area for bulk creation (one entry per node, unsorted).
    staging: Option<Vec<(u32, NodeEntry)>>,
}

impl TypedIndex {
    /// Creates an empty index for `ty`.
    pub fn new(ty: XmlType) -> TypedIndex {
        TypedIndex {
            ty,
            value_tree: BPlusTree::new(),
            node_tree: BPlusTree::new(),
            hist: ValueHistogram::default(),
            staging: None,
        }
    }

    /// Enters bulk-creation mode: [`TypedIndex::set`] stages entries
    /// until [`TypedIndex::finish_bulk`] sorts and bulk-loads both
    /// trees.
    pub(crate) fn begin_bulk(&mut self) {
        debug_assert!(
            self.node_tree.is_empty(),
            "bulk mode is for initial creation"
        );
        self.staging = Some(Vec::new());
    }

    /// Sorts the staged entries and bulk-loads the two B+trees.
    pub(crate) fn finish_bulk(&mut self) {
        let mut staged = self.staging.take().expect("begin_bulk first");
        staged.sort_unstable_by_key(|(n, _)| *n);
        let mut values: Vec<(OrdF64, u32)> = staged
            .iter()
            .filter_map(|(n, e)| e.value().map(|v| (v, *n)))
            .collect();
        values.sort_unstable();
        self.hist =
            ValueHistogram::from_sorted(&values.iter().map(|&(v, _)| v.0).collect::<Vec<f64>>());
        self.node_tree = BPlusTree::from_sorted_iter(staged);
        self.value_tree = BPlusTree::from_sorted_iter(values.into_iter().map(|k| (k, ())));
    }

    /// Persistence loader: installs `(node, state, value)` tuples
    /// (node-sorted input expected; sorted defensively) and bulk-loads
    /// both trees.
    pub(crate) fn load_entries(&mut self, mut entries: Vec<(u32, StateId, Option<f64>)>) {
        entries.sort_unstable_by_key(|&(n, _, _)| n);
        let mut values: Vec<(OrdF64, u32)> = entries
            .iter()
            .filter_map(|&(n, _, v)| v.map(|v| (OrdF64(v), n)))
            .collect();
        values.sort_unstable();
        self.hist =
            ValueHistogram::from_sorted(&values.iter().map(|&(v, _)| v.0).collect::<Vec<f64>>());
        self.node_tree = BPlusTree::from_sorted_iter(
            entries
                .into_iter()
                .map(|(n, st, v)| (n, NodeEntry::new(st, v.map(OrdF64)))),
        );
        self.value_tree = BPlusTree::from_sorted_iter(values.into_iter().map(|k| (k, ())));
    }

    /// The indexed type.
    pub fn xml_type(&self) -> XmlType {
        self.ty
    }

    /// A clone that shares no pages with `self` (see
    /// [`BPlusTree::deep_clone`]).
    pub fn deep_clone(&self) -> TypedIndex {
        TypedIndex {
            ty: self.ty,
            value_tree: self.value_tree.deep_clone(),
            node_tree: self.node_tree.deep_clone(),
            hist: self.hist.clone(),
            staging: self.staging.clone(),
        }
    }

    /// The shared analyzer (DFA + SCT) for this index's type.
    pub fn analyzer(&self) -> &'static TypedAnalyzer {
        analyzer(self.ty)
    }

    /// The stored state of `node` (`None` = reject / not stored).
    pub fn state_of(&self, node: NodeId) -> Option<StateId> {
        self.node_tree.get(&(node.index() as u32)).map(|e| e.state)
    }

    /// The stored typed key of `node`, if its state is complete.
    pub fn value_of(&self, node: NodeId) -> Option<f64> {
        self.node_tree
            .get(&(node.index() as u32))
            .and_then(|e| e.value())
            .map(|v| v.0)
    }

    /// Installs (or replaces) a node's state and value.
    pub(crate) fn set(&mut self, node: NodeId, state: Option<StateId>, value: Option<f64>) {
        let n = node.index() as u32;
        let entry = state.map(|s| NodeEntry::new(s, value.map(OrdF64)));
        if let Some(staging) = &mut self.staging {
            if let Some(e) = entry {
                staging.push((n, e));
            }
            return;
        }
        let old = match entry {
            Some(e) => self.node_tree.insert(n, e),
            None => self.node_tree.remove(&n),
        };
        let old_value = old.and_then(|e| e.value());
        let new_value = entry.and_then(|e| e.value());
        if old_value != new_value {
            if let Some(v) = old_value {
                if self.value_tree.remove(&(v, n)).is_some() {
                    let still_present = self.key_present(v);
                    self.hist.note_remove(v.0, still_present);
                }
            }
            if let Some(v) = new_value {
                let was_present = self.key_present(v);
                self.value_tree.insert((v, n), ());
                self.hist.note_insert(v.0, was_present);
            }
            if self.hist.needs_rebuild() {
                self.rebuild_histogram();
            }
        }
    }

    /// Whether any entry with key `v` exists in the value tree.
    fn key_present(&self, v: OrdF64) -> bool {
        self.value_tree
            .range((v, 0)..=(v, u32::MAX))
            .next()
            .is_some()
    }

    /// Re-derives the equi-depth histogram from the live value tree
    /// (drift-triggered; O(stored values), amortised over the drift).
    fn rebuild_histogram(&mut self) {
        let keys: Vec<f64> = self.value_tree.range(..).map(|(&(v, _), ())| v.0).collect();
        self.hist = ValueHistogram::from_sorted(&keys);
    }

    /// Removes `node` from the index entirely.
    pub(crate) fn remove(&mut self, node: NodeId) {
        self.set(node, None, None);
    }

    /// Maps an `f64` range onto the composite `(value, node)` key
    /// space: an included value covers all its node ids, an excluded
    /// value covers none of them. Shared by scans and exact counts so
    /// the two can never disagree on the key population.
    fn composite_bounds<R: std::ops::RangeBounds<f64>>(bounds: &R) -> CompositeBounds {
        let lo = match bounds.start_bound() {
            Bound::Unbounded => Bound::Unbounded,
            Bound::Included(&v) => Bound::Included((OrdF64(v), 0)),
            Bound::Excluded(&v) => Bound::Excluded((OrdF64(v), u32::MAX)),
        };
        let hi = match bounds.end_bound() {
            Bound::Unbounded => Bound::Unbounded,
            Bound::Included(&v) => Bound::Included((OrdF64(v), u32::MAX)),
            Bound::Excluded(&v) => Bound::Excluded((OrdF64(v), 0)),
        };
        (lo, hi)
    }

    /// Nodes whose typed value lies within the bounds, in value order.
    pub fn range<R: std::ops::RangeBounds<f64>>(&self, bounds: R) -> Vec<NodeId> {
        self.value_tree
            .range(Self::composite_bounds(&bounds))
            .map(|(&(_, n), ())| NodeId::from_index(n as usize))
            .collect()
    }

    /// Nodes whose typed value equals `key` exactly.
    pub fn eq_lookup(&self, key: f64) -> Vec<NodeId> {
        self.range(key..=key)
    }

    /// Number of nodes with a stored (non-reject) state.
    pub fn stored_states(&self) -> usize {
        self.node_tree.len()
    }

    /// Number of nodes with a complete, castable value.
    pub fn stored_values(&self) -> usize {
        self.value_tree.len()
    }

    /// Approximate heap bytes of both trees.
    pub fn approx_bytes(&self) -> usize {
        self.value_tree.approx_bytes() + self.node_tree.approx_bytes()
    }

    /// The maintained cardinality statistics.
    pub fn statistics(&self) -> &ValueHistogram {
        &self.hist
    }

    /// **Exact** entry count of a range probe, answered in O(log n)
    /// node visits from the value tree's interior monoid summaries
    /// (see [`BPlusTree::count_range`]) — the count equals
    /// `self.range(bounds).len()` without materialising the scan.
    pub fn estimate_range(&self, bounds: &Bounds) -> CardinalityEstimate {
        CardinalityEstimate::exact(self.value_tree.count_range(Self::composite_bounds(bounds)))
    }

    /// [`TypedIndex::estimate_range`] plus the number of tree nodes
    /// visited to answer it (≤ `2·depth + 1`) — the benchmark's probe
    /// accounting.
    pub fn count_range_probed(&self, bounds: &Bounds) -> (usize, usize) {
        self.value_tree
            .count_range_probed(Self::composite_bounds(bounds))
    }

    /// The pre-summary estimate for the same probe, answered from the
    /// maintained [`ValueHistogram`] — interior buckets exactly, the
    /// straddling buckets with guaranteed bounds. Kept as a comparison
    /// baseline (and exercised by the `aggregates` benchmark);
    /// [`TypedIndex::estimate_range`] is strictly better.
    pub fn histogram_estimate_range(&self, bounds: &Bounds) -> CardinalityEstimate {
        self.hist.estimate_range(bounds)
    }

    /// Order-sensitive hash of the value tree's full `(value, node)`
    /// key sequence, maintained in the root's monoid summaries; equal
    /// hashes mean (with 64-bit confidence) identical indexed values.
    pub fn root_hash(&self) -> u64 {
        self.value_tree.subtree_hash()
    }

    /// Storage statistics of the value tree.
    pub fn value_tree_stats(&self) -> TreeStats {
        self.value_tree.stats()
    }

    /// Storage statistics of the node tree.
    pub fn node_tree_stats(&self) -> TreeStats {
        self.node_tree.stats()
    }

    /// Cumulative COW page detaches across both trees (O(1)).
    pub fn pages_detached(&self) -> u64 {
        self.value_tree.pages_detached() + self.node_tree.pages_detached()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn set_and_range() {
        let mut idx = TypedIndex::new(XmlType::Double);
        let an = idx.analyzer();
        let s42 = an.state_of("42");
        idx.set(n(1), s42, Some(42.0));
        idx.set(n(2), an.state_of("7.5"), Some(7.5));
        idx.set(n(3), an.state_of("."), None); // potential, no value

        assert_eq!(idx.range(0.0..=50.0), vec![n(2), n(1)]);
        assert_eq!(idx.range(10.0..), vec![n(1)]);
        assert_eq!(idx.eq_lookup(42.0), vec![n(1)]);
        assert_eq!(idx.stored_states(), 3);
        assert_eq!(idx.stored_values(), 2);
        assert_eq!(idx.value_of(n(3)), None);
        assert!(idx.state_of(n(3)).is_some());
        assert_eq!(idx.state_of(n(99)), None);
    }

    #[test]
    fn exclusive_bounds() {
        let mut idx = TypedIndex::new(XmlType::Double);
        let an = idx.analyzer();
        for (i, v) in [1.0, 2.0, 3.0].iter().enumerate() {
            idx.set(n(i), an.state_of(&v.to_string()), Some(*v));
        }
        assert_eq!(idx.range(1.0..3.0), vec![n(0), n(1)]);
        use std::ops::Bound;
        let r: Vec<NodeId> = idx.range((Bound::Excluded(1.0), Bound::Excluded(3.0)));
        assert_eq!(r, vec![n(1)]);
    }

    #[test]
    fn reset_to_reject_removes_everything() {
        let mut idx = TypedIndex::new(XmlType::Double);
        let an = idx.analyzer();
        idx.set(n(1), an.state_of("5"), Some(5.0));
        idx.set(n(1), None, None);
        assert_eq!(idx.stored_states(), 0);
        assert_eq!(idx.stored_values(), 0);
        assert!(idx.eq_lookup(5.0).is_empty());
    }

    #[test]
    fn value_change_moves_tree_entry() {
        let mut idx = TypedIndex::new(XmlType::Double);
        let an = idx.analyzer();
        idx.set(n(1), an.state_of("5"), Some(5.0));
        idx.set(n(1), an.state_of("9"), Some(9.0));
        assert!(idx.eq_lookup(5.0).is_empty());
        assert_eq!(idx.eq_lookup(9.0), vec![n(1)]);
        assert_eq!(idx.stored_values(), 1);
    }

    #[test]
    fn negative_and_duplicate_values() {
        let mut idx = TypedIndex::new(XmlType::Double);
        let an = idx.analyzer();
        idx.set(n(1), an.state_of("-1"), Some(-1.0));
        idx.set(n(2), an.state_of("-1.0"), Some(-1.0));
        idx.set(n(3), an.state_of("0"), Some(0.0));
        assert_eq!(idx.eq_lookup(-1.0), vec![n(1), n(2)]);
        assert_eq!(idx.range(..0.0).len(), 2);
    }
}
